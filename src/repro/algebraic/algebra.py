"""Finitely generated trace algebras.

Paper, Sections 4.1-4.2: the models of an algebraic specification are
restricted to *finitely generated* algebras — "those in which every
element is the value of a variable-free term" — so every state is the
value of a trace ``u_n(..., u_1(..., initiate))`` and structural
induction on traces is a valid proof rule.

:class:`TraceAlgebra` realizes the initial such algebra for a
specification with finite parameter domains: states are trace terms,
queries are evaluated by the rewriting engine, and two traces denote
the same abstract state iff all *simple observations* agree on them
(the paper's observability condition).  :meth:`TraceAlgebra.explore`
performs the observational-state-space construction used by all
refinement checks.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator
from weakref import WeakValueDictionary

from repro.errors import SpecificationError
from repro.algebraic.rewriting import RewriteEngine, Value
from repro.algebraic.spec import AlgebraicSpec
from repro.obs.tracer import OBS_STATE as _OBS, span as _span
from repro.logic.terms import App, Term
from repro.parallel.executor import ParallelExecutor
from repro.parallel.partition import chunk_ranges
from repro.parallel.stats import (
    StatsSink,
    VerificationStats,
    WorkerStats,
    counter_delta,
    engine_counters,
)

__all__ = ["TraceAlgebra", "Snapshot", "StateGraph", "Transition"]


_EMPTY_RELATION: frozenset = frozenset()

#: Live interned snapshots, keyed by their entry tuples.  Exploration
#: revisits the same abstract state once per incoming edge; interning
#: makes the revisit a dictionary hit on a precomputed hash and makes
#: snapshot equality (the hottest comparison of every refinement
#: check) an identity test.
_SNAPSHOT_INTERN: WeakValueDictionary = WeakValueDictionary()


class Snapshot:
    """The observational content of a state: the value of every simple
    observation.

    Snapshots are immutable, hash-consed (structurally equal live
    snapshots are the same object, with the hash precomputed at
    construction) and carry lazily built lookup indices, so
    :meth:`value` and :meth:`relation` are dictionary reads instead of
    linear scans over the entries.

    Attributes:
        entries: sorted tuple of ``((query_name, params), value)``
            pairs, one per simple observation.
    """

    __slots__ = ("entries", "_hash", "_lookup", "_relations", "__weakref__")

    def __new__(
        cls,
        entries: tuple[tuple[tuple[str, tuple[str, ...]], Value], ...],
    ) -> "Snapshot":
        entries = tuple(entries)
        cached = _SNAPSHOT_INTERN.get(entries)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "entries", entries)
        object.__setattr__(self, "_hash", hash(entries))
        object.__setattr__(self, "_lookup", None)
        object.__setattr__(self, "_relations", None)
        _SNAPSHOT_INTERN[entries] = self
        return self

    def __setattr__(self, attr: str, value) -> None:
        raise AttributeError("Snapshot is immutable")

    def __delattr__(self, attr: str) -> None:
        raise AttributeError("Snapshot is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        # Interning makes identity decide for live snapshots; the
        # structural branch only runs on hash collisions.
        return self is other or (
            type(other) is Snapshot and self.entries == other.entries
        )

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    def __lt__(self, other) -> bool:
        if type(other) is not Snapshot:
            return NotImplemented
        return self.entries < other.entries

    def __le__(self, other) -> bool:
        if type(other) is not Snapshot:
            return NotImplemented
        return self.entries <= other.entries

    def __gt__(self, other) -> bool:
        if type(other) is not Snapshot:
            return NotImplemented
        return self.entries > other.entries

    def __ge__(self, other) -> bool:
        if type(other) is not Snapshot:
            return NotImplemented
        return self.entries >= other.entries

    def __reduce__(self):
        # Re-intern on unpickling (e.g. crossing worker processes).
        return (Snapshot, (self.entries,))

    def value(self, query: str, params: tuple[str, ...]) -> Value:
        """The recorded value of observation ``query(params)``."""
        lookup = self._lookup
        if lookup is None:
            lookup = dict(self.entries)
            object.__setattr__(self, "_lookup", lookup)
        return lookup[(query, params)]

    def relation(self, query: str) -> frozenset[tuple[str, ...]]:
        """The parameter tuples on which a Boolean query is True."""
        relations = self._relations
        if relations is None:
            grouped: dict[str, list[tuple[str, ...]]] = {}
            for (name, args), value in self.entries:
                if value is True:
                    grouped.setdefault(name, []).append(args)
            relations = {
                name: frozenset(args) for name, args in grouped.items()
            }
            object.__setattr__(self, "_relations", relations)
        return relations.get(query, _EMPTY_RELATION)

    def as_dict(self) -> dict[tuple[str, tuple[str, ...]], Value]:
        """The snapshot as a mutable dictionary."""
        return dict(self.entries)

    def __str__(self) -> str:
        positives = [
            f"{name}({', '.join(args)})={value}"
            for (name, args), value in self.entries
            if value is not False
        ]
        return "{" + ", ".join(positives) + "}"

    def __repr__(self) -> str:
        return f"Snapshot(entries={self.entries!r})"


@dataclass(frozen=True)
class Transition:
    """One edge of the observational state graph.

    Attributes:
        source: snapshot before the update.
        update: update function name.
        params: the update's parameter values.
        target: snapshot after the update.
    """

    source: Snapshot
    update: str
    params: tuple[str, ...]
    target: Snapshot


@dataclass
class StateGraph:
    """The observational state space reachable from ``initiate``.

    Attributes:
        initial: snapshot of the initial state.
        states: every reachable snapshot, mapped to a *witness trace*
            (a shortest trace denoting it).
        transitions: every (source, update, params, target) edge.
        truncated: True iff exploration stopped at ``max_states``
            before exhausting the space.
    """

    initial: Snapshot
    states: dict[Snapshot, Term]
    transitions: list[Transition] = field(default_factory=list)
    truncated: bool = False
    #: Delta-exploration artifact (packed serial path only): the
    #: values-keyed edge memo to persist for incremental
    #: re-exploration, and the delta statistics of this run.  Both are
    #: bookkeeping, not graph content: excluded from equality.
    artifact: dict | None = field(default=None, repr=False, compare=False)
    delta: dict | None = field(default=None, repr=False, compare=False)
    #: Source-indexed adjacency map, built lazily on the first
    #: :meth:`successors` call and rebuilt if transitions were added
    #: since (detected by length, sufficient for the append-only use).
    _adjacency: dict[Snapshot, list[Transition]] | None = field(
        default=None, repr=False, compare=False
    )
    _adjacency_size: int = field(default=-1, repr=False, compare=False)

    def successors(self, snapshot: Snapshot) -> Iterator[Transition]:
        """Yield the outgoing transitions of ``snapshot``.

        Uses a precomputed adjacency index instead of scanning the
        full transition list; within a source, transitions keep their
        order in :attr:`transitions` (for the breadth-first graphs
        built by :meth:`TraceAlgebra.explore` the outgoing edges of a
        state are contiguous there, so iterating states in discovery
        order and chaining their successors replays the transition
        list exactly).
        """
        if (
            self._adjacency is None
            or self._adjacency_size != len(self.transitions)
        ):
            index: dict[Snapshot, list[Transition]] = {}
            for transition in self.transitions:
                index.setdefault(transition.source, []).append(transition)
            self._adjacency = index
            self._adjacency_size = len(self.transitions)
        return iter(self._adjacency.get(snapshot, ()))

    def __len__(self) -> int:
        return len(self.states)


def _expand_chunk(algebra: "TraceAlgebra", traces: list[Term]):
    """Worker chunk: snapshot every successor of every trace.

    Returns one expansion list per trace, each entry ``(update,
    params, successor trace, successor snapshot)`` in
    ``update_instances`` order — the data the level merger replays.
    """
    before = engine_counters(algebra.engine)
    expansions = []
    items = 0
    for trace in traces:
        expansion = []
        for update, params, successor in algebra.successor_traces(trace):
            expansion.append(
                (update, params, successor, algebra.snapshot(successor))
            )
            items += 1
        expansions.append(expansion)
    after = engine_counters(algebra.engine)
    return expansions, counter_delta(before, after, items)


class TraceAlgebra:
    """The finitely generated algebra of an algebraic specification.

    Args:
        spec: the algebraic specification.
        initial: name of the initial-state constant (default
            ``"initiate"``).
        fuel: rewriting fuel per query evaluation (passed through to
            :class:`RewriteEngine`).
    """

    def __init__(
        self,
        spec: AlgebraicSpec,
        initial: str = "initiate",
        fuel: int | None = None,
        normalize: bool = False,
        packed: bool = True,
    ):
        self.spec = spec
        self.signature = spec.signature
        if fuel is None:
            self.engine = RewriteEngine(spec)
        else:
            self.engine = RewriteEngine(spec, fuel=fuel)
        self._initial_name = initial
        #: When True, every trace built by :meth:`apply` is normalized
        #: by the specification's U-equations (a no-op for
        #: specifications without them).
        self.normalize = normalize
        #: When True (the default), serial exploration may use the
        #: packed value-row explorer and snapshots evaluate through
        #: the engine's term arena; ``packed=False`` forces the
        #: original object path (the differential baseline).
        self.packed = packed
        self._observations = self._build_observations()
        #: Lazily built packed explorer (None until first use; False
        #: once the spec proved outside the packed fragment).
        self._packed_explorer = None

    # ------------------------------------------------------------------
    # traces
    # ------------------------------------------------------------------
    def initial_trace(self) -> App:
        """The ground trace term ``initiate``."""
        return self.signature.initial_term(self._initial_name)

    def apply(self, update: str, *params: str, trace: Term) -> App:
        """Build the trace ``update(params..., trace)`` from parameter
        *values* (domain strings)."""
        symbol = self.signature.update(update)
        args = [
            self.signature.value(sort, value)
            for sort, value in zip(symbol.arg_sorts[:-1], params)
        ]
        if len(params) != len(symbol.arg_sorts) - 1:
            raise SpecificationError(
                f"{update} expects {len(symbol.arg_sorts) - 1} "
                f"parameter(s), got {len(params)}"
            )
        term = App(symbol, (*args, trace))
        if self.normalize:
            return self.engine.normalize_state(term)
        return term

    def query(self, name: str, *params: str, trace: Term) -> Value:
        """Evaluate query ``name`` with parameter *values* on a trace."""
        symbol = self.signature.query(name)
        args = [
            self.signature.value(sort, value)
            for sort, value in zip(symbol.arg_sorts[:-1], params)
        ]
        if len(params) != len(symbol.arg_sorts) - 1:
            raise SpecificationError(
                f"{name} expects {len(symbol.arg_sorts) - 1} "
                f"parameter(s), got {len(params)}"
            )
        return self.engine.evaluate(App(symbol, (*args, trace)))

    def update_instances(self) -> Iterator[tuple[str, tuple[str, ...]]]:
        """Yield every (update name, parameter values) instance over
        the declared parameter domains."""
        for symbol in self.signature.updates:
            domains = [
                self.signature.domain(sort)
                for sort in symbol.arg_sorts[:-1]
            ]
            for params in itertools.product(*domains):
                yield symbol.name, params

    def successor_traces(
        self, trace: Term
    ) -> Iterator[tuple[str, tuple[str, ...], App]]:
        """Yield (update, params, new trace) for every update instance."""
        for update, params in self.update_instances():
            yield update, params, self.apply(update, *params, trace=trace)

    def traces(self, depth: int) -> Iterator[Term]:
        """Yield every ground trace with at most ``depth`` updates,
        breadth-first (the initial trace first).

        The count grows as (number of update instances)**depth; keep
        ``depth`` small or use :meth:`explore`, which deduplicates by
        observational equality.
        """
        frontier: deque[tuple[Term, int]] = deque([(self.initial_trace(), 0)])
        while frontier:
            trace, used = frontier.popleft()
            yield trace
            if used < depth:
                for _, _, successor in self.successor_traces(trace):
                    frontier.append((successor, used + 1))

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------
    def _build_observations(self) -> tuple[tuple[str, tuple[str, ...]], ...]:
        observations: list[tuple[str, tuple[str, ...]]] = []
        for symbol in self.signature.queries:
            domains = [
                self.signature.domain(sort)
                for sort in symbol.arg_sorts[:-1]
            ]
            for params in itertools.product(*domains):
                observations.append((symbol.name, params))
        return tuple(observations)

    @property
    def observations(self) -> tuple[tuple[str, tuple[str, ...]], ...]:
        """Every simple observation ``(query, parameter values)``
        instantiable over the declared domains (paper, Section 4.1)."""
        return self._observations

    def snapshot(self, trace: Term) -> Snapshot:
        """Evaluate every simple observation on ``trace``.

        By the observability condition, the snapshot identifies the
        abstract state the trace denotes.
        """
        if _OBS.enabled:
            _OBS.tracer.count("algebra.snapshots")
        if self.packed:
            values = self.engine.evaluate_cells(trace, self._observations)
            entries = tuple(sorted(zip(self._observations, values)))
        else:
            entries = tuple(
                sorted(
                    (
                        (name, params),
                        self.query(name, *params, trace=trace),
                    )
                    for name, params in self._observations
                )
            )
        return Snapshot(entries)

    def observationally_equal(self, left: Term, right: Term) -> bool:
        """True iff all simple observations agree on the two traces —
        the paper's criterion for ``s = s'``."""
        return self.snapshot(left) == self.snapshot(right)

    # ------------------------------------------------------------------
    # observational state space
    # ------------------------------------------------------------------
    def explore(
        self,
        max_states: int = 100_000,
        max_depth: int | None = None,
        workers: int = 1,
        stats: StatsSink | None = None,
        edge_cache: dict | None = None,
    ) -> StateGraph:
        """Breadth-first construction of the reachable observational
        state space (the set G of Section 4.4b, modulo observational
        equality).

        Args:
            max_states: stop (and mark the graph truncated) after this
                many distinct snapshots.
            max_depth: optionally bound the number of updates applied.
            edge_cache: a previously returned exploration artifact
                (``graph.artifact``); the serial packed explorer reuses
                its values-keyed transition memo for every update
                instance whose equations are unchanged, re-exploring
                only the affected frontier.  Ignored (full explore) on
                the object and parallel paths.
            workers: snapshot successor states on this many processes.
                The BFS is level-synchronous — every level's successor
                snapshots are computed in parallel, then merged by
                replaying the serial visit order — so the resulting
                graph (state order, transition order, witness traces,
                truncation) is identical for every worker count.
            stats: optional sink receiving one ``"explore"``
                :class:`~repro.parallel.stats.VerificationStats`
                record.

        Returns:
            The :class:`StateGraph` with one node per distinct
            snapshot, a witness trace per node, and every update edge
            between explored nodes.
        """
        started = time.perf_counter()
        with _span("explore", workers=workers) as obs_span:
            if workers <= 1:
                before = engine_counters(self.engine)
                packed = self._explore_packed(
                    max_states, max_depth, edge_cache
                )
                if packed is not None:
                    graph, items = packed
                else:
                    graph, items = self._explore_serial(
                        max_states, max_depth
                    )
                after = engine_counters(self.engine)
                delta = counter_delta(before, after, items)
                obs_span.record(delta)
                obs_span.count("explore.states", len(graph.states))
                obs_span.count(
                    "explore.transitions", len(graph.transitions)
                )
                if stats is not None:
                    record = WorkerStats(
                        worker=0,
                        wall_time=time.perf_counter() - started,
                        **delta,
                    )
                    stats.add(
                        VerificationStats.merge(
                            "explore",
                            1,
                            [record],
                            time.perf_counter() - started,
                        )
                    )
                return graph
            graph, worker_stats = self._explore_parallel(
                max_states, max_depth, workers
            )
            obs_span.count("explore.states", len(graph.states))
            obs_span.count("explore.transitions", len(graph.transitions))
            if stats is not None:
                stats.add(
                    VerificationStats.merge(
                        "explore",
                        workers,
                        worker_stats,
                        time.perf_counter() - started,
                    )
                )
            return graph

    def _explore_packed(
        self,
        max_states: int,
        max_depth: int | None,
        edge_cache: dict | None,
    ) -> tuple[StateGraph, int] | None:
        """Try the packed value-row explorer; ``None`` falls back to
        the object BFS (outside the packed fragment, coverage
        recording active, or a spec error the object path reports
        with its exact message)."""
        from repro.obs.coverage import COV_STATE as _COV_STATE
        from repro.algebraic.exploration import (
            PackedExplorer,
            PackedUnsupported,
        )

        if not self.packed or _COV_STATE.enabled:
            return None
        explorer = self._packed_explorer
        if explorer is False:
            return None
        if explorer is None:
            try:
                explorer = PackedExplorer(self)
            except PackedUnsupported:
                self._packed_explorer = False
                return None
            self._packed_explorer = explorer
        try:
            return explorer.explore(max_states, max_depth, edge_cache)
        except Exception:
            # The object path re-raises the underlying specification
            # error (incompleteness, non-termination, ...) with the
            # exact term-level message.
            return None

    def _explore_serial(
        self, max_states: int, max_depth: int | None
    ) -> tuple[StateGraph, int]:
        initial = self.initial_trace()
        initial_snapshot = self.snapshot(initial)
        items = 1
        states: dict[Snapshot, Term] = {initial_snapshot: initial}
        transitions: list[Transition] = []
        truncated = False
        frontier: deque[tuple[Snapshot, Term, int]] = deque(
            [(initial_snapshot, initial, 0)]
        )
        while frontier:
            source_snapshot, trace, depth = frontier.popleft()
            if max_depth is not None and depth >= max_depth:
                continue
            for update, params, successor in self.successor_traces(trace):
                target_snapshot = self.snapshot(successor)
                items += 1
                transitions.append(
                    Transition(
                        source_snapshot, update, params, target_snapshot
                    )
                )
                if target_snapshot not in states:
                    if len(states) >= max_states:
                        truncated = True
                        continue
                    states[target_snapshot] = successor
                    frontier.append(
                        (target_snapshot, successor, depth + 1)
                    )
        graph = StateGraph(initial_snapshot, states, transitions, truncated)
        return graph, items

    def _explore_parallel(
        self, max_states: int, max_depth: int | None, workers: int
    ) -> tuple[StateGraph, list[WorkerStats]]:
        # The serial BFS is strictly level-ordered (FIFO frontier,
        # depth grows by one per enqueue), so expanding a whole level
        # at once and merging in frontier order replays it exactly.
        initial = self.initial_trace()
        initial_snapshot = self.snapshot(initial)
        states: dict[Snapshot, Term] = {initial_snapshot: initial}
        transitions: list[Transition] = []
        truncated = False
        level: list[tuple[Snapshot, Term, int]] = [
            (initial_snapshot, initial, 0)
        ]
        depth_level = 0
        with ParallelExecutor(workers, context=self) as executor:
            while level:
                expandable = [
                    entry
                    for entry in level
                    if max_depth is None or entry[2] < max_depth
                ]
                if not expandable:
                    break
                chunks = [
                    [expandable[i][1] for i in chunk]
                    for chunk in chunk_ranges(len(expandable), workers)
                ]
                with _span(
                    "explore.level",
                    depth=depth_level,
                    frontier=len(expandable),
                ):
                    results = executor.map(_expand_chunk, chunks)
                depth_level += 1
                expansions = [exp for chunk in results for exp in chunk]
                next_level: list[tuple[Snapshot, Term, int]] = []
                for (source_snapshot, _, depth), expansion in zip(
                    expandable, expansions
                ):
                    for update, params, successor, target in expansion:
                        transitions.append(
                            Transition(
                                source_snapshot, update, params, target
                            )
                        )
                        if target not in states:
                            if len(states) >= max_states:
                                truncated = True
                                continue
                            states[target] = successor
                            next_level.append(
                                (target, successor, depth + 1)
                            )
                level = next_level
            worker_stats = list(executor.worker_stats)
        graph = StateGraph(initial_snapshot, states, transitions, truncated)
        return graph, worker_stats

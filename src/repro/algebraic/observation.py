"""Observability: identifying states by simple observations.

Paper, Section 4.1: "A term of the form q(t1,...,tn) where q is a
query function and t1,...,tn contain no occurrences of update functions
is called a *simple observation*.  We will construct the language L2 to
be sufficiently rich with queries so that states can be identified by
means of simple observations: if s and s' are state variables such
that for all simple observations f we have f(s) = f(s'), then s = s'."

In the finitely generated trace algebra this condition makes
observational equality the intended state equality.  For it to be a
*well-defined* equality on states it must be a **congruence**: updates
applied to observationally equal traces must yield observationally
equal traces, and that is a genuine, checkable property of a
specification — :func:`check_congruence` verifies it over the
reachable state space (plus one extra update layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebraic.algebra import Snapshot, TraceAlgebra
from repro.logic.terms import Term

__all__ = [
    "CongruenceViolation",
    "ObservabilityReport",
    "check_congruence",
    "observational_classes",
]


@dataclass(frozen=True)
class CongruenceViolation:
    """Two observationally equal traces driven apart by an update."""

    left: Term
    right: Term
    update: str
    params: tuple[str, ...]

    def __str__(self) -> str:
        return (
            f"traces {self.left} and {self.right} are observationally "
            f"equal but {self.update}({', '.join(self.params)}, .) "
            "separates them"
        )


@dataclass(frozen=True)
class ObservabilityReport:
    """Outcome of the congruence / observability check.

    Attributes:
        ok: True iff observational equality is a congruence on the
            explored fragment.
        classes: number of distinct observational classes found.
        traces_checked: number of traces examined.
        violations: witnesses of congruence failure, if any.
    """

    ok: bool
    classes: int
    traces_checked: int
    violations: tuple[CongruenceViolation, ...] = field(
        default_factory=tuple
    )

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        if self.ok:
            return (
                f"observational equality is a congruence on "
                f"{self.traces_checked} traces ({self.classes} classes)"
            )
        lines = ["observational equality is NOT a congruence:"]
        for violation in self.violations:
            lines.append(f"  {violation}")
        return "\n".join(lines)


def observational_classes(
    algebra: TraceAlgebra, depth: int
) -> dict[Snapshot, list[Term]]:
    """Group every trace of at most ``depth`` updates by snapshot."""
    classes: dict[Snapshot, list[Term]] = {}
    for trace in algebra.traces(depth):
        classes.setdefault(algebra.snapshot(trace), []).append(trace)
    return classes


def check_congruence(
    algebra: TraceAlgebra, depth: int = 3, max_pairs_per_class: int = 10
) -> ObservabilityReport:
    """Check that observational equality is a congruence.

    For every pair of observationally equal traces (up to
    ``max_pairs_per_class`` representatives per class, since classes
    can be large) and every update instance, the updated traces must
    again be observationally equal.

    Args:
        algebra: the trace algebra to examine.
        depth: trace enumeration depth.
        max_pairs_per_class: cap on representatives compared per
            observational class.
    """
    classes = observational_classes(algebra, depth)
    violations: list[CongruenceViolation] = []
    traces_checked = sum(len(members) for members in classes.values())
    for members in classes.values():
        representatives = members[:max_pairs_per_class]
        anchor = representatives[0]
        for other in representatives[1:]:
            for update, params in algebra.update_instances():
                left = algebra.apply(update, *params, trace=anchor)
                right = algebra.apply(update, *params, trace=other)
                if not algebra.observationally_equal(left, right):
                    violations.append(
                        CongruenceViolation(anchor, other, update, params)
                    )
    return ObservabilityReport(
        ok=not violations,
        classes=len(classes),
        traces_checked=traces_checked,
        violations=tuple(violations),
    )

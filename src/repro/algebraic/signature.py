"""Algebraic signatures for functions-level specifications.

Paper, Section 4.1: an algebraic specification is a first-order theory
``T = (L, A)`` where the sorts of L include a *Boolean* sort and a
designated *state* sort (the sort-of-interest); the remaining sorts are
*parameter sorts*.  Each parameter sort has its own function symbols
(generating ground *parameter names*) and an equality-test symbol of
sort ``<s, s, Boolean>``.  The Boolean sort has constants True/False
and the five connectives.  All other function symbols take the state
as their last domain sort and are *update functions* (target sort
``state``) or *query functions* (any other target sort).

:class:`AlgebraicSignature` packages these conventions on top of
:class:`repro.logic.Signature` and provides term builders so that
equations can be written compactly.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import SignatureError, SpecificationError
from repro.logic.signature import FunctionSymbol, Signature
from repro.logic.sorts import BOOLEAN, STATE, Sort
from repro.logic.terms import App, Term, Var

__all__ = ["AlgebraicSignature", "CONNECTIVES"]

#: Names of the Boolean connective function symbols, with arities.
CONNECTIVES = {
    "not": 1,
    "and": 2,
    "or": 2,
    "implies": 2,
    "iff": 2,
}


class AlgebraicSignature:
    """The language L2 of an algebraic (functions level) specification.

    The constructor pre-declares the Boolean sort with its constants
    ``True``/``False`` and connectives, and the state sort.  Parameter
    sorts, parameter names (values), queries and updates are declared
    through the ``add_*`` methods.

    Example:
        >>> sig = AlgebraicSignature("courses")
        >>> course = sig.add_parameter_sort("course")
        >>> sig.add_parameter_values(course, ["c1", "c2"])
        >>> sig.add_query("offered", [course])
        >>> sig.add_update("offer", [course])
        >>> sig.add_initial("initiate")
    """

    def __init__(self, name: str = "unnamed"):
        self.name = name
        self.logic = Signature(sorts=[BOOLEAN, STATE])
        self._true = self.logic.add_constant("True", BOOLEAN)
        self._false = self.logic.add_constant("False", BOOLEAN)
        for cname, arity in CONNECTIVES.items():
            self.logic.add_function(cname, [BOOLEAN] * arity, BOOLEAN)
        self._parameter_sorts: list[Sort] = []
        self._domains: dict[Sort, list[str]] = {}
        self._value_symbols: dict[tuple[Sort, str], FunctionSymbol] = {}
        self._queries: dict[str, FunctionSymbol] = {}
        self._updates: dict[str, FunctionSymbol] = {}
        self._initials: dict[str, FunctionSymbol] = {}
        self._interpreted: dict[str, Callable[..., object]] = {}

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------
    def add_parameter_sort(self, name: str) -> Sort:
        """Declare a parameter sort, with its equality-test symbol
        ``eq_<name>`` of sort ``<s, s, Boolean>`` (paper, Section 4.1).
        """
        sort = Sort(name)
        if sort in (BOOLEAN, STATE):
            raise SignatureError(f"{name} is a reserved sort")
        self.logic.add_sort(sort)
        self.logic.add_function(f"eq_{name}", [sort, sort], BOOLEAN)
        self._parameter_sorts.append(sort)
        self._domains[sort] = []
        return sort

    def add_parameter_value(self, sort: Sort, value: str) -> FunctionSymbol:
        """Declare one parameter name (a constant of ``sort``).

        The constant's evaluation result is its own name string, so
        carriers are sets of strings.
        """
        if sort not in self._domains:
            raise SignatureError(f"{sort} is not a parameter sort")
        symbol = self.logic.add_constant(value, sort)
        self._domains[sort].append(value)
        self._value_symbols[(sort, value)] = symbol
        return symbol

    def add_parameter_values(
        self, sort: Sort, values: Iterable[str]
    ) -> list[FunctionSymbol]:
        """Declare several parameter names at once."""
        return [self.add_parameter_value(sort, v) for v in values]

    def add_parameter_function(
        self,
        name: str,
        arg_sorts: Iterable[Sort],
        result_sort: Sort,
        interpretation: Callable[..., object],
    ) -> FunctionSymbol:
        """Declare an interpreted operation on parameter sorts.

        ``interpretation`` receives evaluated argument values (strings
        for parameter sorts, bools for Boolean) and must return a value
        of the result sort (a domain string, or a bool for Boolean).
        """
        arg_sorts = tuple(arg_sorts)
        for sort in arg_sorts:
            if sort == STATE:
                raise SignatureError(
                    "parameter functions may not involve the state sort"
                )
        symbol = self.logic.add_function(name, arg_sorts, result_sort)
        self._interpreted[name] = interpretation
        return symbol

    def add_query(
        self,
        name: str,
        param_sorts: Iterable[Sort],
        result_sort: Sort = BOOLEAN,
    ) -> FunctionSymbol:
        """Declare a query function ``name: <params..., state, result>``.

        The state sort is appended as the last domain sort following
        the paper's convention.
        """
        if result_sort == STATE:
            raise SignatureError(
                "a query function cannot return the state sort "
                "(that would make it an update)"
            )
        symbol = self.logic.add_function(
            name, (*param_sorts, STATE), result_sort
        )
        self._queries[name] = symbol
        return symbol

    def add_update(
        self, name: str, param_sorts: Iterable[Sort]
    ) -> FunctionSymbol:
        """Declare an update function ``name: <params..., state, state>``."""
        symbol = self.logic.add_function(
            name, (*param_sorts, STATE), STATE
        )
        self._updates[name] = symbol
        return symbol

    def add_initial(self, name: str = "initiate") -> FunctionSymbol:
        """Declare an initialization operation of sort ``<state>``.

        The paper's ``initiate`` is a constant of sort state; ground
        state terms (traces) are generated from the initial constants
        by the update functions.
        """
        symbol = self.logic.add_constant(name, STATE)
        self._initials[name] = symbol
        return symbol

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def parameter_sorts(self) -> tuple[Sort, ...]:
        """The declared parameter sorts."""
        return tuple(self._parameter_sorts)

    @property
    def queries(self) -> tuple[FunctionSymbol, ...]:
        """The declared query function symbols."""
        return tuple(self._queries.values())

    @property
    def updates(self) -> tuple[FunctionSymbol, ...]:
        """The declared update function symbols (excluding initials)."""
        return tuple(self._updates.values())

    @property
    def initials(self) -> tuple[FunctionSymbol, ...]:
        """The declared initial-state constants."""
        return tuple(self._initials.values())

    def query(self, name: str) -> FunctionSymbol:
        """Return the query function symbol called ``name``."""
        try:
            return self._queries[name]
        except KeyError:
            raise SignatureError(f"undeclared query {name!r}") from None

    def update(self, name: str) -> FunctionSymbol:
        """Return the update function symbol called ``name``."""
        try:
            return self._updates[name]
        except KeyError:
            raise SignatureError(f"undeclared update {name!r}") from None

    def initial(self, name: str = "initiate") -> FunctionSymbol:
        """Return the initial-state constant called ``name``."""
        try:
            return self._initials[name]
        except KeyError:
            raise SignatureError(f"undeclared initial {name!r}") from None

    def is_query(self, symbol: FunctionSymbol) -> bool:
        """True iff ``symbol`` is a declared query function."""
        return self._queries.get(symbol.name) == symbol

    def is_update(self, symbol: FunctionSymbol) -> bool:
        """True iff ``symbol`` is a declared update function."""
        return self._updates.get(symbol.name) == symbol

    def is_initial(self, symbol: FunctionSymbol) -> bool:
        """True iff ``symbol`` is a declared initial-state constant."""
        return self._initials.get(symbol.name) == symbol

    def is_connective(self, symbol: FunctionSymbol) -> bool:
        """True iff ``symbol`` is one of the Boolean connectives."""
        return symbol.name in CONNECTIVES and symbol.result_sort == BOOLEAN

    def is_equality_test(self, symbol: FunctionSymbol) -> bool:
        """True iff ``symbol`` is a parameter-sort equality test."""
        return (
            symbol.name.startswith("eq_")
            and symbol.result_sort == BOOLEAN
            and len(symbol.arg_sorts) == 2
            and symbol.arg_sorts[0] == symbol.arg_sorts[1]
        )

    def interpretation(self, name: str) -> Callable[..., object] | None:
        """The Python interpretation of an interpreted parameter
        function, or ``None``."""
        return self._interpreted.get(name)

    @property
    def interpreted_functions(self) -> tuple[str, ...]:
        """Names of the declared interpreted parameter functions (the
        relational compiler materializes each as a stored function
        table over its finite argument domains)."""
        return tuple(self._interpreted)

    def domain(self, sort: Sort) -> tuple[str, ...]:
        """The declared parameter names (values) of a parameter sort."""
        try:
            return tuple(self._domains[sort])
        except KeyError:
            raise SignatureError(
                f"{sort} is not a parameter sort of this signature"
            ) from None

    @property
    def domains(self) -> dict[Sort, tuple[str, ...]]:
        """All parameter domains, keyed by sort."""
        return {sort: tuple(vals) for sort, vals in self._domains.items()}

    # ------------------------------------------------------------------
    # term builders
    # ------------------------------------------------------------------
    def true(self) -> App:
        """The Boolean constant term ``True``."""
        return App(self._true, ())

    def false(self) -> App:
        """The Boolean constant term ``False``."""
        return App(self._false, ())

    def boolean(self, value: bool) -> App:
        """``True`` or ``False`` as a term."""
        return self.true() if value else self.false()

    def not_(self, term: Term) -> App:
        """Boolean negation term."""
        return App(self.logic.function("not"), (term,))

    def and_(self, lhs: Term, rhs: Term) -> App:
        """Boolean conjunction term."""
        return App(self.logic.function("and"), (lhs, rhs))

    def or_(self, lhs: Term, rhs: Term) -> App:
        """Boolean disjunction term."""
        return App(self.logic.function("or"), (lhs, rhs))

    def implies_(self, lhs: Term, rhs: Term) -> App:
        """Boolean implication term."""
        return App(self.logic.function("implies"), (lhs, rhs))

    def iff_(self, lhs: Term, rhs: Term) -> App:
        """Boolean biconditional term."""
        return App(self.logic.function("iff"), (lhs, rhs))

    def eq(self, lhs: Term, rhs: Term) -> App:
        """Equality-test term ``eq_<sort>(lhs, rhs)`` for a parameter
        sort."""
        if lhs.sort != rhs.sort:
            raise SpecificationError(
                f"cannot compare sort {lhs.sort} with {rhs.sort}"
            )
        return App(self.logic.function(f"eq_{lhs.sort.name}"), (lhs, rhs))

    def value(self, sort: Sort, value: str) -> App:
        """The constant term for parameter name ``value`` of ``sort``."""
        try:
            return App(self._value_symbols[(sort, value)], ())
        except KeyError:
            raise SignatureError(
                f"{value!r} is not a declared value of sort {sort}"
            ) from None

    def var(self, name: str, sort: Sort) -> Var:
        """A variable of a given sort."""
        return Var(name, sort)

    def state_var(self, name: str = "U") -> Var:
        """A variable of the state sort."""
        return Var(name, STATE)

    def apply_query(self, name: str, *args: Term) -> App:
        """Build the query application ``name(args...)`` (state last)."""
        return App(self.query(name), tuple(args))

    def apply_update(self, name: str, *args: Term) -> App:
        """Build the update application ``name(args...)`` (state last)."""
        return App(self.update(name), tuple(args))

    def initial_term(self, name: str = "initiate") -> App:
        """The ground trace term for an initial-state constant."""
        return App(self.initial(name), ())

    def __repr__(self) -> str:
        return (
            f"AlgebraicSignature({self.name!r}, "
            f"params={[s.name for s in self._parameter_sorts]}, "
            f"queries={sorted(self._queries)}, "
            f"updates={sorted(self._updates)})"
        )

"""Ground-closure compilation over observation cells.

Shared by the runtime store, the admission guards and the packed
state-space explorer.  The serving and exploration hot paths never
interpret terms or formulas at request time.
Everything the serving path evaluates — Q-equation conditions and
right-hand sides, structured-description preconditions, and the
information-level constraints routed through the interpretation I —
is compiled **once**, against a fully ground variable environment,
into plain Python closures over a single cell reader::

    get((query_name, param_values)) -> value

Each compilation also returns the static *read set*: the store cells
the closure can touch.  The guards use read sets to index constraint
instances by cell, which is what makes admission checking O(delta)
instead of O(constraints).

Only the canonical fragment the shipped applications use is compiled;
anything else raises :class:`UnsupportedTermError` and the caller
falls back to the rewrite engine (see
:meth:`repro.runtime.state.MaterializedState` and the packed
explorer :class:`repro.algebraic.exploration.PackedExplorer`).

This module lives in the algebraic layer so the explorer can compile
plans without importing the (heavy) serving runtime;
``repro.runtime.compiler`` re-exports it unchanged.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

from repro.errors import ReproError
from repro.algebraic.signature import AlgebraicSignature
from repro.logic import formulas as fm
from repro.logic.sorts import BOOLEAN, STATE, Sort
from repro.logic.terms import App, Term, Var

__all__ = [
    "Cell",
    "Getter",
    "UnsupportedTermError",
    "compile_ground_term",
    "compile_ground_formula",
]

#: A store cell: one simple observation ``(query name, param values)``.
Cell = tuple[str, tuple[str, ...]]

#: The single read interface compiled closures evaluate against.
Getter = Callable[[Cell], Hashable]

#: A domain oracle: parameter/carrier values of a sort, for unrolling
#: quantifiers at compile time.
DomainOf = Callable[[Sort], Iterable[str]]


class UnsupportedTermError(ReproError):
    """A term or formula falls outside the compilable canonical
    fragment; the caller should use the rewrite-engine fallback."""


def _const(value) -> Callable[[Getter], Hashable]:
    return lambda get: value


def _combine(name, lhs, lreads, rhs, rreads):
    """A binary Boolean combinator with short-circuit constant
    folding: a read-free side is evaluated once at compile time and
    the node collapses to a constant or to the other side."""
    if not lreads:
        value = bool(lhs(None))
        if name == "and":
            return (rhs, rreads) if value else (_const(False), set())
        if name == "or":
            return (_const(True), set()) if value else (rhs, rreads)
        if name == "implies":
            return (rhs, rreads) if value else (_const(True), set())
        if name == "iff":
            if value:
                return rhs, rreads
            return (lambda get: not rhs(get)), rreads
    if not rreads:
        value = bool(rhs(None))
        if name == "and":
            return (lhs, lreads) if value else (_const(False), set())
        if name == "or":
            return (_const(True), set()) if value else (lhs, lreads)
        if name == "implies":
            if value:
                return _const(True), set()
            return (lambda get: not lhs(get)), lreads
        if name == "iff":
            if value:
                return lhs, lreads
            return (lambda get: not lhs(get)), lreads
    reads = lreads | rreads
    if name == "and":
        return (lambda get: bool(lhs(get)) and bool(rhs(get))), reads
    if name == "or":
        return (lambda get: bool(lhs(get)) or bool(rhs(get))), reads
    if name == "implies":
        return (lambda get: (not lhs(get)) or bool(rhs(get))), reads
    if name == "iff":
        return (lambda get: bool(lhs(get)) == bool(rhs(get))), reads
    raise UnsupportedTermError(f"unknown connective {name!r}")


def _junction(closures: list, reads: set, conjunctive: bool):
    """``all``/``any`` over compiled branches, specialized for the
    small arities quantifier unrolling produces."""
    if not closures:
        return _const(conjunctive), set()
    if len(closures) == 1:
        return closures[0], reads
    if len(closures) == 2:
        first, second = closures
        if conjunctive:
            return (
                lambda get: first(get) and second(get)
            ), reads
        return (lambda get: first(get) or second(get)), reads
    branches = tuple(closures)
    if conjunctive:
        return (
            lambda get: all(part(get) for part in branches)
        ), reads
    return (lambda get: any(part(get) for part in branches)), reads


def compile_ground_term(
    term: Term,
    env: dict[Var, str],
    signature: AlgebraicSignature,
) -> tuple[Callable[[Getter], Hashable], frozenset[Cell]]:
    """Compile a ground-under-``env`` L2 term into a closure.

    Args:
        term: a term of parameter or Boolean sort.  Query applications
            must take a state *variable* as their last argument (the
            pre-update state); their parameter arguments must be
            read-free, so the touched cell is known statically.
        env: values for every non-state free variable of ``term``.
        signature: the algebraic signature interpreting the symbols.

    Returns:
        ``(closure, reads)`` — the evaluation closure over a cell
        reader and the set of cells it reads.  Read-free terms are
        constant-folded at compile time.

    Raises:
        UnsupportedTermError: outside the canonical fragment.
    """
    closure, reads = _compile_term(term, env, signature)
    if not reads:
        value = closure(None)  # pure and read-free: fold now
        return _const(value), frozenset()
    return closure, frozenset(reads)


def _compile_term(
    term: Term, env: dict[Var, str], signature: AlgebraicSignature
) -> tuple[Callable[[Getter], Hashable], set[Cell]]:
    if isinstance(term, Var):
        if term.sort == STATE:
            raise UnsupportedTermError(
                "a bare state variable is not a value term"
            )
        try:
            value = env[term]
        except KeyError:
            raise UnsupportedTermError(
                f"unbound variable {term} in runtime compilation"
            ) from None
        return _const(value), set()
    if not isinstance(term, App):
        raise UnsupportedTermError(f"not a compilable term: {term!r}")

    symbol = term.symbol
    name = symbol.name
    if symbol.result_sort == BOOLEAN and name in ("True", "False"):
        return _const(name == "True"), set()

    if signature.is_query(symbol):
        state_arg = term.args[-1]
        if not isinstance(state_arg, Var) or state_arg.sort != STATE:
            raise UnsupportedTermError(
                f"query {name} is not applied to the pre-state "
                "variable; the runtime only compiles single-state "
                "right-hand sides"
            )
        values = []
        for arg in term.args[:-1]:
            closure, reads = _compile_term(arg, env, signature)
            if reads:
                raise UnsupportedTermError(
                    f"query {name} has a state-dependent parameter "
                    "argument; its cell is not statically known"
                )
            values.append(closure(None))
        cell: Cell = (name, tuple(values))
        return (lambda get: get(cell)), {cell}

    if signature.is_connective(symbol):
        if name == "not":
            one, reads = _compile_term(term.args[0], env, signature)
            if not reads:
                return _const(not one(None)), set()
            return (lambda get: not one(get)), reads
        lhs, lreads = _compile_term(term.args[0], env, signature)
        rhs, rreads = _compile_term(term.args[1], env, signature)
        return _combine(name, lhs, lreads, rhs, rreads)

    if signature.is_equality_test(symbol):
        lhs, lreads = _compile_term(term.args[0], env, signature)
        rhs, rreads = _compile_term(term.args[1], env, signature)
        return (lambda get: lhs(get) == rhs(get)), lreads | rreads

    interp = signature.interpretation(name)
    if interp is not None:
        parts = [
            _compile_term(arg, env, signature) for arg in term.args
        ]
        closures = tuple(part[0] for part in parts)
        reads = set().union(*(part[1] for part in parts)) if parts else set()
        return (
            lambda get: interp(*[c(get) for c in closures])
        ), reads

    if symbol.is_constant and symbol.result_sort != STATE:
        return _const(name), set()

    raise UnsupportedTermError(
        f"cannot compile {term}: {name} is neither a connective, "
        "equality test, interpreted function, parameter name, nor "
        "query on the pre-state"
    )


#: Hook compiling an atom ``p(args)`` under an environment; used by
#: the guards to route db-predicate atoms through the interpretation I.
AtomHook = Callable[
    [fm.Atom, dict[Var, str]],
    tuple[Callable[[Getter], bool], frozenset[Cell]],
]


def _no_atoms(atom: fm.Atom, env: dict[Var, str]):
    raise UnsupportedTermError(
        f"predicate atom {atom} is not compilable here (no atom hook)"
    )


def _resolve_equals_side(
    term: Term, env: dict[Var, str]
) -> str | bool:
    """A ground first-order term as a carrier value: a bound variable
    or a constant symbol (the only shapes L1 axioms use)."""
    if isinstance(term, Var):
        try:
            return env[term]
        except KeyError:
            raise UnsupportedTermError(
                f"unbound variable {term} in equality"
            ) from None
    if isinstance(term, App) and not term.args:
        name = term.symbol.name
        if term.sort == BOOLEAN:
            return name == "True"
        return name
    raise UnsupportedTermError(
        f"equality over non-constant term {term}"
    )


def compile_ground_formula(
    formula: fm.Formula,
    env: dict[Var, str],
    domain_of: DomainOf,
    atom_hook: AtomHook | None = None,
    equals_hook: Callable[
        [fm.Equals, dict[Var, str]],
        tuple[Callable[[Getter], bool], frozenset[Cell]],
    ] | None = None,
) -> tuple[Callable[[Getter], bool], frozenset[Cell]]:
    """Compile a (single-state) formula into a Boolean closure.

    Quantifiers are unrolled over ``domain_of(var.sort)`` at compile
    time; atoms are delegated to ``atom_hook`` (the guards pass the
    interpretation-based one) and equalities to ``equals_hook`` when
    given (the store uses it for L2 ``fm.Equals`` over value terms —
    information-level equalities are over constants and fold away).

    Returns ``(closure, reads)``.
    """
    atom_hook = atom_hook or _no_atoms
    closure, reads = _compile_formula(
        formula, env, domain_of, atom_hook, equals_hook
    )
    if not reads:
        value = bool(closure(None))
        return _const(value), frozenset()
    return closure, frozenset(reads)


def _compile_formula(
    formula: fm.Formula,
    env: dict[Var, str],
    domain_of: DomainOf,
    atom_hook: AtomHook,
    equals_hook,
) -> tuple[Callable[[Getter], bool], set[Cell]]:
    if isinstance(formula, fm.TrueF):
        return _const(True), set()
    if isinstance(formula, fm.FalseF):
        return _const(False), set()
    if isinstance(formula, fm.Atom):
        closure, reads = atom_hook(formula, dict(env))
        return closure, set(reads)
    if isinstance(formula, fm.Equals):
        if equals_hook is not None:
            closure, reads = equals_hook(formula, dict(env))
            return closure, set(reads)
        value = _resolve_equals_side(
            formula.lhs, env
        ) == _resolve_equals_side(formula.rhs, env)
        return _const(value), set()
    if isinstance(formula, fm.Not):
        body, reads = _compile_formula(
            formula.body, env, domain_of, atom_hook, equals_hook
        )
        if not reads:
            return _const(not body(None)), set()
        return (lambda get: not body(get)), reads
    if isinstance(formula, (fm.And, fm.Or, fm.Implies, fm.Iff)):
        lhs, lreads = _compile_formula(
            formula.lhs, env, domain_of, atom_hook, equals_hook
        )
        rhs, rreads = _compile_formula(
            formula.rhs, env, domain_of, atom_hook, equals_hook
        )
        name = {
            fm.And: "and",
            fm.Or: "or",
            fm.Implies: "implies",
            fm.Iff: "iff",
        }[type(formula)]
        return _combine(name, lhs, lreads, rhs, rreads)
    if isinstance(formula, (fm.Forall, fm.Exists)):
        var = formula.var
        conjunctive = isinstance(formula, fm.Forall)
        parts = []
        reads: set[Cell] = set()
        for value in domain_of(var.sort):
            inner = dict(env)
            inner[var] = value
            closure, sub_reads = _compile_formula(
                formula.body, inner, domain_of, atom_hook, equals_hook
            )
            if not sub_reads:
                constant = bool(closure(None))
                if constant != conjunctive:
                    # one False conjunct / True disjunct decides it
                    return _const(constant), set()
                continue  # neutral element: drop the branch
            parts.append(closure)
            reads |= sub_reads
        return _junction(parts, reads, conjunctive)
    raise UnsupportedTermError(
        f"cannot compile formula construct {formula!r}"
    )

"""Conditional term rewriting: evaluating queries on trace states.

Paper, Section 4.2: the ground terms of sort state ("traces") are the
smallest set containing ``initiate`` and closed under symbolic
application of the update functions; the Q-equations are "a system of
mutually recursive equations defining the query functions", oriented
left-to-right as conditional rewrite rules

    q(p, u(p', U)) = "simpler expression"     (perhaps with a condition)

The :class:`RewriteEngine` evaluates any ground term of parameter or
Boolean sort by structural recursion on the trace:

* parameter names evaluate to themselves (their name string);
* Boolean connectives and equality tests evaluate by truth tables;
* interpreted parameter functions evaluate by their Python
  interpretation;
* a query application is matched against the equations indexed by
  (query, constructor); the first equation whose condition holds fires
  and its instantiated rhs is evaluated.

Evaluation is driven by a **compiled dispatch table**: the first time
a function symbol is evaluated the engine classifies it once
(connective, equality test, interpreted function, parameter name,
query) and stores a specialized closure; subsequent evaluations of the
same symbol go straight to the closure instead of re-walking the
classification chain.  Q-equations are likewise compiled, per
(query, constructor) pair, into positional matchers that bind each
pattern variable by direct argument indexing — the generic recursive
:func:`~repro.logic.substitution.match` only remains as a fallback for
non-canonical equation shapes.  Terms are hash-consed
(:mod:`repro.logic.terms`), so the memo cache is effectively keyed by
object identity: hashes are precomputed and key comparison is an
identity check.

Conditions may quantify over parameter sorts; quantifiers range over
the declared parameter names.  Evaluation is guarded by a *fuel*
budget: a circular equation system (violating sufficient completeness,
Section 4.4a) raises :class:`~repro.errors.NonTerminationError` rather
than looping, and a ground query term no equation covers raises
:class:`~repro.errors.IncompletenessError`.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.errors import (
    EvaluationError,
    IncompletenessError,
    NonTerminationError,
)
from repro.obs.coverage import COV_STATE as _COV
from repro.obs.tracer import OBS_STATE as _OBS
from repro.algebraic.equations import ConditionalEquation
from repro.algebraic.spec import AlgebraicSpec
from repro.logic import formulas as fm
from repro.logic.sorts import BOOLEAN, STATE
from repro.logic.arena import KIND_APP, TermArena
from repro.logic.substitution import (
    apply_to_formula,
    apply_to_term,
    match,
)
from repro.logic.terms import App, Term, Var

__all__ = ["RewriteEngine", "Value"]

#: Sentinel marking a (query, constructor) pair whose equations fall
#: outside the arena-compilable fragment; the arena loop materializes
#: the term and routes it through the object path instead.
_ARENA_FALLBACK = object()


class _ArenaUnsupported(Exception):
    """An equation part is outside the arena-native fragment."""

#: Evaluation results: parameter names are strings, Booleans are bools.
Value = Hashable

#: Default fuel: number of query evaluations allowed per top-level call.
DEFAULT_FUEL = 100_000


def _compile_matcher(
    equation: ConditionalEquation,
) -> Callable[[App], dict[Var, Term] | None]:
    """Compile an equation's lhs into a positional matcher.

    The canonical Q-equation shape ``q(a1,...,ak, u(b1,...,bm))`` with
    each ``ai``/``bj`` a variable or a constant admits matching by
    direct indexing: variables bind the argument at their position,
    constants require identity (terms are interned), and a repeated
    variable requires its positions to carry the same term.  The
    matcher assumes the target already agrees with the pattern on the
    query and constructor symbols — the dispatch index guarantees it.

    Returns ``None`` for non-canonical shapes (nested applications in
    parameter positions, a non-variable inner state, ...); the caller
    falls back to the generic recursive matcher.
    """
    lhs = equation.lhs
    if not isinstance(lhs, App):
        return None
    state_pat = lhs.args[-1] if lhs.args else None
    if not isinstance(state_pat, App):
        return None

    binds: list[tuple[bool, int, Var]] = []
    consts: list[tuple[bool, int, Term]] = []
    same: list[tuple[bool, int, bool, int]] = []
    seen: dict[Var, tuple[bool, int]] = {}

    def visit(pattern: Term, in_state: bool, index: int) -> bool:
        if isinstance(pattern, Var):
            # Sorts need no runtime check: the dispatch key fixes both
            # symbols, and symbol arities sort every position.
            if pattern in seen:
                prev = seen[pattern]
                same.append((prev[0], prev[1], in_state, index))
            else:
                seen[pattern] = (in_state, index)
                binds.append((in_state, index, pattern))
            return True
        if isinstance(pattern, App) and not pattern.args:
            consts.append((in_state, index, pattern))
            return True
        return False

    for i, arg in enumerate(lhs.args[:-1]):
        if not visit(arg, False, i):
            return None
    for j, arg in enumerate(state_pat.args):
        if not visit(arg, True, j):
            return None

    def matcher(term: App) -> dict[Var, Term] | None:
        args = term.args
        state_args = args[-1].args
        for in_state, index, expected in consts:
            actual = state_args[index] if in_state else args[index]
            if actual is not expected and actual != expected:
                return None
        for a_state, a_index, b_state, b_index in same:
            first = state_args[a_index] if a_state else args[a_index]
            second = state_args[b_index] if b_state else args[b_index]
            if first is not second and first != second:
                return None
        return {
            var: (state_args[index] if in_state else args[index])
            for in_state, index, var in binds
        }

    return matcher


def _generic_matcher(
    equation: ConditionalEquation,
) -> Callable[[App], dict[Var, Term] | None]:
    """Fallback: full recursive first-order matching against the lhs."""
    lhs = equation.lhs

    def matcher(term: App):
        return match(lhs, term)

    return matcher


class RewriteEngine:
    """Evaluator for ground terms over an algebraic specification.

    Args:
        spec: the algebraic specification (equations are used as
            conditional rewrite rules in declaration order).
        fuel: maximum number of query-application evaluations per
            top-level :meth:`evaluate` call before concluding
            non-termination.
        memoize: cache evaluation results keyed by ground term.  The
            cache is sound because evaluation is pure; it makes
            repeated observation of overlapping traces (the common
            case in reachability analysis) close to linear.  Terms are
            interned, so cache probes are identity probes with a
            precomputed hash.
    """

    def __init__(
        self,
        spec: AlgebraicSpec,
        fuel: int = DEFAULT_FUEL,
        memoize: bool = True,
        state_oracle=None,
    ):
        self.spec = spec
        self.signature = spec.signature
        self._fuel_limit = fuel
        self._memoize = memoize
        #: Optional hook (query_name, param_values, state_term) ->
        #: value or None, consulted before equation dispatch.  Used by
        #: the induction engine to evaluate queries on *abstract*
        #: states given by a snapshot rather than a concrete trace.
        self._state_oracle = state_oracle
        self._cache: dict[Term, Value] = {}
        #: Monotone counters surfaced by the verification statistics:
        #: memo-cache hits/misses, equation-firing (rewrite) steps, and
        #: reuses of a compiled dispatch entry.
        self.cache_hits = 0
        self.cache_misses = 0
        self.rewrite_steps = 0
        self.dispatch_hits = 0
        #: Compiled per-symbol evaluation closures, built on first use.
        self._dispatch: dict[str, Callable[[App, list[int]], Value]] = {}
        #: Compiled equation lists per (query, constructor) pair; each
        #: entry carries the equation's index in ``spec.equations`` so
        #: coverage recording can name what fired.
        self._equation_tables: dict[
            tuple[str, str],
            tuple[
                tuple[
                    Callable[[App], dict[Var, Term] | None],
                    fm.Formula | None,
                    Term,
                    int,
                ],
                ...,
            ],
        ] = {}
        #: Equation object -> index into ``spec.equations``, built on
        #: first compile (identity-keyed: ``equations_for`` returns
        #: the declaration objects themselves).
        self._equation_index: dict[int, int] | None = None
        #: Packed-term arena (built on the first batch evaluation) and
        #: its memo/dispatch tables: node id -> value, symbol id ->
        #: handler closure, (query, constructor) -> compiled
        #: integer-matcher table (or the object-path fallback marker).
        self._arena: TermArena | None = None
        self._acache: dict[int, Value] = {}
        self._ahandlers: dict = {}
        self._atables: dict = {}
        #: Compiled observation programs per observations tuple,
        #: keyed by id (the value keeps the tuple alive so ids are
        #: stable); one arena-program list and one object-term list.
        self._obs_programs: dict[int, tuple] = {}
        self._obs_terms: dict[int, tuple] = {}
        # Value constants per sort, prebuilt for quantifier expansion.
        self._domain_terms = {
            sort: tuple(
                self.signature.value(sort, v)
                for v in self.signature.domain(sort)
            )
            for sort in self.signature.parameter_sorts
        }

    # ------------------------------------------------------------------
    # pickling (context bundles for the executor backends)
    # ------------------------------------------------------------------
    #: Lazily compiled state: closures and memo tables built on first
    #: use.  None of it pickles (closures) and none of it belongs in a
    #: context bundle — a bundled engine is a *cold* engine, whatever
    #: the parent had warmed, so every executor backend prices its
    #: virtual workers from the same starting point.
    _COMPILED_SLOTS = (
        "_cache",
        "_dispatch",
        "_equation_tables",
        "_acache",
        "_ahandlers",
        "_atables",
        "_obs_programs",
        "_obs_terms",
    )

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        for slot in self._COMPILED_SLOTS:
            state[slot] = {}
        state["_equation_index"] = None
        state["_arena"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def evaluate(self, term: Term) -> Value:
        """Evaluate a ground term of parameter or Boolean sort.

        Raises:
            EvaluationError: if the term is not ground or has sort
                state.
            IncompletenessError: if no equation applies to some query
                application encountered.
            NonTerminationError: if the fuel budget is exhausted.
        """
        if _OBS.enabled:
            _OBS.tracer.count("rewrite.evaluate.calls")
        if _COV.enabled:
            # Top-level dispatch-cell census: the multiset of these
            # calls is exactly the workload, which the chunk
            # partitioner splits without overlap — so summed per-cell
            # counts are identical for every worker count.
            if (
                isinstance(term, App)
                and term.args
                and self.signature.is_query(term.symbol)
            ):
                state = term.args[-1]
                if isinstance(state, App):
                    _COV.recorder.record_dispatch(
                        term.symbol.name, state.symbol.name
                    )
        if term.sort == STATE:
            raise EvaluationError(
                "terms of sort state are symbolic traces; only query/"
                "parameter terms evaluate to values"
            )
        if not term.is_ground:
            raise EvaluationError(f"term is not ground: {term}")
        budget = [self._fuel_limit]
        try:
            return self._eval(term, budget)
        except RecursionError:
            raise NonTerminationError(
                f"recursion limit reached while evaluating {term}: the "
                "equation system appears circular"
            ) from None

    def holds(self, condition: fm.Formula) -> bool:
        """Decide a ground condition (wff with equality atoms).

        Quantifiers must range over parameter sorts; they are expanded
        over the declared parameter names.
        """
        budget = [self._fuel_limit]
        return self._holds(condition, budget)

    def query(self, name: str, *args: Term) -> Value:
        """Convenience: evaluate query ``name`` applied to ``args``
        (parameter terms followed by the trace)."""
        return self.evaluate(self.signature.apply_query(name, *args))

    def normalize_state(self, term: Term) -> Term:
        """Normalize a ground trace by the U-equations.

        Paper, Section 4.1: axioms of sort state are U-equations; read
        left-to-right they rewrite traces into "simpler" traces (e.g.
        an idempotence law ``offer(c, offer(c, U)) = offer(c, U)``).
        Normalization is innermost-first; an applied rule's result is
        re-normalized at the top, with the usual fuel guard.

        Specifications without U-equations get the term back
        unchanged (the common case, including the paper's example).
        """
        if term.sort != STATE:
            raise EvaluationError(
                f"normalize_state expects a state term, got {term.sort}"
            )
        if not self.spec.u_equations:
            return term
        if _OBS.enabled:
            _OBS.tracer.count("rewrite.normalize.calls")
        budget = [self._fuel_limit]
        return self._normalize(term, budget)

    def _normalize(self, term: Term, budget: list[int]) -> Term:
        if not isinstance(term, App):
            raise EvaluationError(f"not a ground trace: {term}")
        if self.signature.is_initial(term.symbol):
            return term
        budget[0] -= 1
        if budget[0] < 0:
            raise NonTerminationError(
                "fuel exhausted during state normalization: the "
                "U-equations appear non-terminating"
            )
        inner = self._normalize(term.args[-1], budget)
        current = App(term.symbol, (*term.args[:-1], inner))
        for equation in self.spec.u_equations_for(current.symbol.name):
            substitution = match(equation.lhs, current)
            if substitution is None:
                continue
            if equation.condition is not None:
                closed = substitution.apply_formula(equation.condition)
                if not self._holds(closed, budget):
                    continue
            rewritten = apply_to_term(substitution, equation.rhs)
            self.rewrite_steps += 1
            if _COV.enabled:
                _COV.recorder.record_u_fire(
                    current.symbol.name, self._index_of(equation)
                )
            if not isinstance(rewritten, App):
                raise EvaluationError(
                    f"U-equation {equation.describe()} produced a "
                    f"non-ground state {rewritten}"
                )
            if self.signature.is_initial(rewritten.symbol):
                return rewritten
            # The rewrite may expose new redexes: renormalize fully.
            return self._normalize(rewritten, budget)
        return current

    def evaluate_cells(
        self,
        trace: Term,
        observations: tuple[tuple[str, tuple[str, ...]], ...],
    ) -> list[Value]:
        """Batch-evaluate observation cells ``(query, params)`` on one
        ground trace through the packed term arena.

        Semantically identical to calling :meth:`evaluate` on
        ``q(params..., trace)`` per observation (same errors, same
        fuel budget per cell, same coverage dispatch cells and fired
        equations), but the hot loop runs on int node ids: the trace
        is packed once, each cell is one arena application, and
        dispatch/matching are integer comparisons.  Non-canonical
        fragments fall back to the object path per term.
        """
        if (
            self._state_oracle is not None
            or not isinstance(trace, App)
            or not trace.is_ground
        ):
            return self._evaluate_cells_objects(trace, observations)
        arena = self._arena
        if arena is None:
            arena = self._arena = TermArena()
        programs = self._obs_programs.get(id(observations))
        if programs is None:
            sig = self.signature
            compiled = []
            for name, params in observations:
                symbol = sig.query(name)
                arg_ids = tuple(
                    arena.intern(sig.value(sort, value))
                    for sort, value in zip(symbol.arg_sorts[:-1], params)
                )
                compiled.append((name, arena.symbol_id(symbol), arg_ids))
            programs = (observations, tuple(compiled))
            self._obs_programs[id(observations)] = programs
        trace_id = arena.intern(trace)
        constructor = trace.symbol.name
        obs_enabled = _OBS.enabled
        cov_enabled = _COV.enabled
        app = arena.app
        eval_idx = self._eval_idx
        fuel = self._fuel_limit
        values: list[Value] = []
        for name, qsid, arg_ids in programs[1]:
            if obs_enabled:
                _OBS.tracer.count("rewrite.evaluate.calls")
            if cov_enabled:
                _COV.recorder.record_dispatch(name, constructor)
            node = app(qsid, (*arg_ids, trace_id))
            budget = [fuel]
            try:
                values.append(eval_idx(node, budget))
            except RecursionError:
                raise NonTerminationError(
                    f"recursion limit reached while evaluating "
                    f"{arena.term(node)}: the equation system appears "
                    "circular"
                ) from None
        return values

    def _evaluate_cells_objects(
        self,
        trace: Term,
        observations: tuple[tuple[str, tuple[str, ...]], ...],
    ) -> list[Value]:
        """Object-path batch evaluation (oracle engines, non-ground or
        exotic traces): plain :meth:`evaluate` per observation."""
        terms = self._obs_terms.get(id(observations))
        if terms is None:
            sig = self.signature
            compiled = []
            for name, params in observations:
                symbol = sig.query(name)
                args = tuple(
                    sig.value(sort, value)
                    for sort, value in zip(symbol.arg_sorts[:-1], params)
                )
                compiled.append((symbol, args))
            terms = (observations, tuple(compiled))
            self._obs_terms[id(observations)] = terms
        return [
            self.evaluate(App(symbol, (*args, trace)))
            for symbol, args in terms[1]
        ]

    def clear_cache(self) -> None:
        """Drop all memoized results (object and arena memos).

        The compiled dispatch tables survive (they depend only on the
        specification); dropping the memos also releases the engine's
        strong references to cached ground terms — including the
        arena's object views — allowing retired terms to leave the
        intern table.
        """
        self._cache.clear()
        self._acache.clear()
        if self._arena is not None:
            self._arena.release_views()

    @property
    def cache_size(self) -> int:
        """Number of memoized ground-term results."""
        return len(self._cache)

    @property
    def dispatch_size(self) -> int:
        """Number of compiled dispatch entries (symbol closures plus
        per-(query, constructor) equation tables)."""
        return len(self._dispatch) + len(self._equation_tables)

    # ------------------------------------------------------------------
    # evaluation core
    # ------------------------------------------------------------------
    _MISSING = object()

    def _eval(self, term: Term, budget: list[int]) -> Value:
        if self._memoize:
            cached = self._cache.get(term, self._MISSING)
            if cached is not self._MISSING:
                self.cache_hits += 1
                return cached
            self.cache_misses += 1
        result = self._eval_uncached(term, budget)
        if self._memoize:
            self._cache[term] = result
        return result

    def _eval_uncached(self, term: Term, budget: list[int]) -> Value:
        if isinstance(term, Var):
            raise EvaluationError(f"unbound variable {term} in evaluation")
        if not isinstance(term, App):
            raise TypeError(f"not a term: {term!r}")
        handler = self._dispatch.get(term.symbol.name)
        if handler is None:
            handler = self._build_handler(term.symbol)
            self._dispatch[term.symbol.name] = handler
        else:
            self.dispatch_hits += 1
        return handler(term, budget)

    def _build_handler(
        self, symbol
    ) -> Callable[[App, list[int]], Value]:
        """Classify ``symbol`` once and return its evaluation closure.

        The classification order mirrors the paper's evaluation rules
        (and the engine's original dispatch chain): Boolean constants,
        connectives, equality tests, interpreted functions, parameter
        names, queries.
        """
        sig = self.signature
        name = symbol.name
        if symbol.result_sort == BOOLEAN and name in ("True", "False"):
            constant = name == "True"
            return lambda term, budget: constant

        if sig.is_connective(symbol):
            return self._connective_handler(name)

        if sig.is_equality_test(symbol):
            def equality(term: App, budget: list[int]) -> bool:
                return self._eval(term.args[0], budget) == self._eval(
                    term.args[1], budget
                )

            return equality

        interp = sig.interpretation(name)
        if interp is not None:
            def interpreted(term: App, budget: list[int]) -> Value:
                return interp(
                    *[self._eval(arg, budget) for arg in term.args]
                )

            return interpreted

        if symbol.is_constant and symbol.result_sort != STATE:
            # A parameter name evaluates to itself.
            return lambda term, budget: name

        if sig.is_query(symbol):
            return self._eval_query

        def unsupported(term: App, budget: list[int]) -> Value:
            raise EvaluationError(
                f"cannot evaluate {term}: {term.symbol.name} is neither "
                "a connective, equality test, interpreted function, "
                "parameter name, nor query"
            )

        return unsupported

    def _connective_handler(
        self, name: str
    ) -> Callable[[App, list[int]], bool]:
        eval_ = self._eval
        if name == "not":
            return lambda term, budget: not eval_(term.args[0], budget)
        # Short-circuit where the truth table allows it.
        if name == "and":
            return lambda term, budget: bool(
                eval_(term.args[0], budget)
            ) and bool(eval_(term.args[1], budget))
        if name == "or":
            return lambda term, budget: bool(
                eval_(term.args[0], budget)
            ) or bool(eval_(term.args[1], budget))
        if name == "implies":
            return lambda term, budget: (
                not eval_(term.args[0], budget)
            ) or bool(eval_(term.args[1], budget))
        if name == "iff":
            return lambda term, budget: bool(
                eval_(term.args[0], budget)
            ) == bool(eval_(term.args[1], budget))

        def unknown(term: App, budget: list[int]) -> bool:
            raise EvaluationError(f"unknown connective {name!r}")

        return unknown

    def _compiled_equations(self, query: str, constructor: str):
        """The compiled matcher table for a (query, constructor) pair."""
        key = (query, constructor)
        table = self._equation_tables.get(key)
        if table is None:
            compiled = []
            for equation in self.spec.equations_for(query, constructor):
                matcher = _compile_matcher(equation)
                if matcher is None:
                    matcher = _generic_matcher(equation)
                compiled.append(
                    (
                        matcher,
                        equation.condition,
                        equation.rhs,
                        self._index_of(equation),
                    )
                )
            table = tuple(compiled)
            self._equation_tables[key] = table
        else:
            self.dispatch_hits += 1
        return table

    def _index_of(self, equation: ConditionalEquation) -> int:
        """The equation's index within ``spec.equations``."""
        index = self._equation_index
        if index is None:
            index = {
                id(candidate): position
                for position, candidate in enumerate(self.spec.equations)
            }
            self._equation_index = index
        return index.get(id(equation), -1)

    def _eval_query(self, term: App, budget: list[int]) -> Value:
        budget[0] -= 1
        if budget[0] < 0:
            raise NonTerminationError(
                f"fuel exhausted while evaluating {term}: the equation "
                "system appears circular (sufficient completeness fails)"
            )
        state_arg = term.args[-1]
        if self._state_oracle is not None:
            params = tuple(
                self._eval(arg, budget) for arg in term.args[:-1]
            )
            resolved = self._state_oracle(
                term.symbol.name, params, state_arg
            )
            if resolved is not None:
                return resolved
        if not isinstance(state_arg, App):
            raise EvaluationError(
                f"query {term} applied to a non-ground state"
            )
        constructor = state_arg.symbol.name
        table = self._compiled_equations(term.symbol.name, constructor)
        for matcher, condition, rhs, eq_index in table:
            bindings = matcher(term)
            if bindings is None:
                continue
            if condition is not None:
                closed = apply_to_formula(bindings, condition)
                if not self._holds(closed, budget):
                    continue
            instantiated = apply_to_term(bindings, rhs)
            self.rewrite_steps += 1
            if _COV.enabled:
                # Fired-equation *sets* union-merge exactly: within an
                # engine the memo-missed terms are the needed terms,
                # and need distributes over workload unions.
                _COV.recorder.record_fire(
                    term.symbol.name, constructor, eq_index
                )
            return self._eval(instantiated, budget)
        raise IncompletenessError(
            f"no equation applies to {term} (query "
            f"{term.symbol.name!r} on constructor {constructor!r}): the "
            "specification is not sufficiently complete"
        )

    # ------------------------------------------------------------------
    # arena-native evaluation (int node ids instead of boxed terms)
    # ------------------------------------------------------------------
    def _eval_idx(self, node: int, budget: list[int]) -> Value:
        if self._memoize:
            cached = self._acache.get(node, self._MISSING)
            if cached is not self._MISSING:
                self.cache_hits += 1
                return cached
            self.cache_misses += 1
        sid = self._arena.sym_of(node)
        handler = self._ahandlers.get(sid)
        if handler is None:
            handler = self._build_arena_handler(sid)
            self._ahandlers[sid] = handler
        else:
            self.dispatch_hits += 1
        result = handler(node, budget)
        if self._memoize:
            self._acache[node] = result
        return result

    def _build_arena_handler(self, sid: int):
        """Classify an arena symbol once into an evaluation closure —
        the packed mirror of :meth:`_build_handler`."""
        arena = self._arena
        symbol = arena.symbol(sid)
        if isinstance(symbol, Var):
            def unbound(node: int, budget: list[int]) -> Value:
                raise EvaluationError(
                    f"unbound variable {arena.term(node)} in evaluation"
                )

            return unbound
        sig = self.signature
        name = symbol.name
        if symbol.result_sort == BOOLEAN and name in ("True", "False"):
            constant = name == "True"
            return lambda node, budget: constant

        if sig.is_connective(symbol):
            return self._arena_connective(name)

        if sig.is_equality_test(symbol):
            def equality(node: int, budget: list[int]) -> bool:
                left, right = arena.children(node)
                return self._eval_idx(left, budget) == self._eval_idx(
                    right, budget
                )

            return equality

        interp = sig.interpretation(name)
        if interp is not None:
            def interpreted(node: int, budget: list[int]) -> Value:
                return interp(
                    *[
                        self._eval_idx(child, budget)
                        for child in arena.children(node)
                    ]
                )

            return interpreted

        if symbol.is_constant and symbol.result_sort != STATE:
            return lambda node, budget: name

        if sig.is_query(symbol):
            def query_handler(node: int, budget: list[int]) -> Value:
                return self._eval_query_idx(name, node, budget)

            return query_handler

        def unsupported(node: int, budget: list[int]) -> Value:
            term = arena.term(node)
            raise EvaluationError(
                f"cannot evaluate {term}: {term.symbol.name} is neither "
                "a connective, equality test, interpreted function, "
                "parameter name, nor query"
            )

        return unsupported

    def _arena_connective(self, name: str):
        arena = self._arena
        eval_idx = self._eval_idx
        if name == "not":
            return lambda node, budget: not eval_idx(
                arena.children(node)[0], budget
            )
        if name == "and":
            def conj(node: int, budget: list[int]) -> bool:
                left, right = arena.children(node)
                return bool(eval_idx(left, budget)) and bool(
                    eval_idx(right, budget)
                )

            return conj
        if name == "or":
            def disj(node: int, budget: list[int]) -> bool:
                left, right = arena.children(node)
                return bool(eval_idx(left, budget)) or bool(
                    eval_idx(right, budget)
                )

            return disj
        if name == "implies":
            def impl(node: int, budget: list[int]) -> bool:
                left, right = arena.children(node)
                return (not eval_idx(left, budget)) or bool(
                    eval_idx(right, budget)
                )

            return impl
        if name == "iff":
            def iff(node: int, budget: list[int]) -> bool:
                left, right = arena.children(node)
                return bool(eval_idx(left, budget)) == bool(
                    eval_idx(right, budget)
                )

            return iff

        def unknown(node: int, budget: list[int]) -> bool:
            raise EvaluationError(f"unknown connective {name!r}")

        return unknown

    def _eval_query_idx(
        self, qname: str, node: int, budget: list[int]
    ) -> Value:
        budget[0] -= 1
        if budget[0] < 0:
            raise NonTerminationError(
                f"fuel exhausted while evaluating "
                f"{self._arena.term(node)}: the equation system appears "
                "circular (sufficient completeness fails)"
            )
        arena = self._arena
        children = arena.children(node)
        state = children[-1]
        if arena.kind(state) != KIND_APP:
            raise EvaluationError(
                f"query {arena.term(node)} applied to a non-ground state"
            )
        constructor = arena.symbol(arena.sym_of(state)).name
        table = self._arena_table(qname, constructor)
        if table is _ARENA_FALLBACK:
            return self._eval(arena.term(node), budget)
        args = children[:-1]
        state_args = arena.children(state)
        for matcher, condition, rhs, eq_index in table:
            bind = matcher(args, state_args)
            if bind is None:
                continue
            if condition is not None and not condition(bind, budget):
                continue
            self.rewrite_steps += 1
            if _COV.enabled:
                # Same union-invariance argument as the object path:
                # arena memo misses are exactly the needed nodes.
                _COV.recorder.record_fire(qname, constructor, eq_index)
            return rhs(bind, budget)
        raise IncompletenessError(
            f"no equation applies to {arena.term(node)} (query "
            f"{qname!r} on constructor {constructor!r}): the "
            "specification is not sufficiently complete"
        )

    def _arena_table(self, query: str, constructor: str):
        """The arena-compiled equation table for a (query, constructor)
        pair, or :data:`_ARENA_FALLBACK` when any of its equations is
        outside the integer-matchable fragment."""
        key = (query, constructor)
        table = self._atables.get(key)
        if table is not None:
            self.dispatch_hits += 1
            return table
        try:
            table = tuple(
                self._compile_arena_equation(equation)
                for equation in self.spec.equations_for(query, constructor)
            )
        except _ArenaUnsupported:
            table = _ARENA_FALLBACK
        self._atables[key] = table
        return table

    def _compile_arena_equation(self, equation: ConditionalEquation):
        """Compile one canonical equation into ``(matcher, condition,
        rhs, index)`` over packed node ids.

        The matcher binds pattern variables positionally into a flat
        ``bind`` tuple of node ids; condition and rhs are closed
        programs over ``(bind, budget)``.  Anything non-canonical
        raises :class:`_ArenaUnsupported` (whole-table fallback).
        """
        lhs = equation.lhs
        if not isinstance(lhs, App):
            raise _ArenaUnsupported
        state_pat = lhs.args[-1] if lhs.args else None
        if not isinstance(state_pat, App):
            raise _ArenaUnsupported

        arena = self._arena
        binds: list[tuple[bool, int]] = []
        consts: list[tuple[bool, int, int]] = []
        same: list[tuple[bool, int, bool, int]] = []
        slots: dict[Var, int] = {}

        def visit(pattern: Term, in_state: bool, index: int) -> None:
            if isinstance(pattern, Var):
                if pattern in slots:
                    prev_state, prev_index = binds[slots[pattern]]
                    same.append((prev_state, prev_index, in_state, index))
                else:
                    slots[pattern] = len(binds)
                    binds.append((in_state, index))
                return
            if isinstance(pattern, App) and not pattern.args:
                consts.append((in_state, index, arena.intern(pattern)))
                return
            raise _ArenaUnsupported

        for i, arg in enumerate(lhs.args[:-1]):
            visit(arg, False, i)
        for j, arg in enumerate(state_pat.args):
            visit(arg, True, j)

        consts_t = tuple(consts)
        same_t = tuple(same)
        binds_t = tuple(binds)

        def matcher(args, state_args):
            for in_state, index, expected in consts_t:
                actual = state_args[index] if in_state else args[index]
                if actual != expected:
                    return None
            for a_state, a_index, b_state, b_index in same_t:
                first = state_args[a_index] if a_state else args[a_index]
                second = state_args[b_index] if b_state else args[b_index]
                if first != second:
                    return None
            return tuple(
                state_args[index] if in_state else args[index]
                for in_state, index in binds_t
            )

        condition = None
        if equation.condition is not None:
            condition = self._compile_arena_formula(
                equation.condition, dict(slots), len(binds)
            )
        rhs = self._compile_arena_value(equation.rhs, slots, len(binds))
        return matcher, condition, rhs, self._index_of(equation)

    def _compile_arena_index(
        self, term: Term, slots: dict[Var, int]
    ):
        """A program producing the arena node id of ``term`` under a
        bind tuple: a bound variable reads its slot, a ground term is
        interned once at compile time."""
        if isinstance(term, Var):
            slot = slots.get(term)
            if slot is None:
                raise _ArenaUnsupported
            return lambda bind: bind[slot]
        if term.is_ground:
            node = self._arena.intern(term)
            return lambda bind: node
        raise _ArenaUnsupported

    def _compile_arena_value(
        self, term: Term, slots: dict[Var, int], depth: int
    ):
        """A value program ``(bind, budget) -> Value`` mirroring the
        object handlers over packed ids."""
        eval_idx = self._eval_idx
        if isinstance(term, Var):
            if term.sort == STATE:
                raise _ArenaUnsupported
            slot = slots.get(term)
            if slot is None:
                raise _ArenaUnsupported
            return lambda bind, budget: eval_idx(bind[slot], budget)
        if not isinstance(term, App):
            raise _ArenaUnsupported
        symbol = term.symbol
        sig = self.signature
        name = symbol.name
        if symbol.result_sort == BOOLEAN and name in ("True", "False"):
            constant = name == "True"
            return lambda bind, budget: constant
        if sig.is_connective(symbol):
            if name == "not":
                body = self._compile_arena_value(
                    term.args[0], slots, depth
                )
                return lambda bind, budget: not body(bind, budget)
            left = self._compile_arena_value(term.args[0], slots, depth)
            right = self._compile_arena_value(term.args[1], slots, depth)
            if name == "and":
                return lambda bind, budget: bool(
                    left(bind, budget)
                ) and bool(right(bind, budget))
            if name == "or":
                return lambda bind, budget: bool(
                    left(bind, budget)
                ) or bool(right(bind, budget))
            if name == "implies":
                return lambda bind, budget: (
                    not left(bind, budget)
                ) or bool(right(bind, budget))
            if name == "iff":
                return lambda bind, budget: bool(
                    left(bind, budget)
                ) == bool(right(bind, budget))
            raise _ArenaUnsupported
        if sig.is_equality_test(symbol):
            left = self._compile_arena_value(term.args[0], slots, depth)
            right = self._compile_arena_value(term.args[1], slots, depth)
            return lambda bind, budget: left(bind, budget) == right(
                bind, budget
            )
        interp = sig.interpretation(name)
        if interp is not None:
            parts = tuple(
                self._compile_arena_value(arg, slots, depth)
                for arg in term.args
            )
            return lambda bind, budget: interp(
                *[part(bind, budget) for part in parts]
            )
        if symbol.is_constant and symbol.result_sort != STATE:
            return lambda bind, budget: name
        if sig.is_query(symbol):
            arg_programs = tuple(
                self._compile_arena_index(arg, slots)
                for arg in term.args
            )
            qsid = self._arena.symbol_id(symbol)
            app = self._arena.app

            def query_value(bind, budget):
                return eval_idx(
                    app(
                        qsid,
                        tuple(
                            program(bind) for program in arg_programs
                        ),
                    ),
                    budget,
                )

            return query_value
        raise _ArenaUnsupported

    def _compile_arena_formula(
        self, formula: fm.Formula, slots: dict[Var, int], depth: int
    ):
        """A condition program ``(bind, budget) -> bool`` mirroring
        :meth:`_holds`; quantifiers unroll over pre-interned domain
        value nodes, extending the bind tuple by one slot."""
        if isinstance(formula, fm.TrueF):
            return lambda bind, budget: True
        if isinstance(formula, fm.FalseF):
            return lambda bind, budget: False
        if isinstance(formula, fm.Equals):
            left = self._compile_arena_value(formula.lhs, slots, depth)
            right = self._compile_arena_value(formula.rhs, slots, depth)
            return lambda bind, budget: left(bind, budget) == right(
                bind, budget
            )
        if isinstance(formula, fm.Not):
            body = self._compile_arena_formula(formula.body, slots, depth)
            return lambda bind, budget: not body(bind, budget)
        if isinstance(formula, (fm.And, fm.Or, fm.Implies, fm.Iff)):
            left = self._compile_arena_formula(formula.lhs, slots, depth)
            right = self._compile_arena_formula(formula.rhs, slots, depth)
            if isinstance(formula, fm.And):
                return lambda bind, budget: left(bind, budget) and right(
                    bind, budget
                )
            if isinstance(formula, fm.Or):
                return lambda bind, budget: left(bind, budget) or right(
                    bind, budget
                )
            if isinstance(formula, fm.Implies):
                return lambda bind, budget: (
                    not left(bind, budget)
                ) or right(bind, budget)
            return lambda bind, budget: left(bind, budget) == right(
                bind, budget
            )
        if isinstance(formula, (fm.Forall, fm.Exists)):
            var = formula.var
            try:
                domain = self._domain_terms[var.sort]
            except KeyError:
                raise _ArenaUnsupported from None
            arena = self._arena
            instances = tuple(arena.intern(value) for value in domain)
            inner = dict(slots)
            inner[var] = depth
            body = self._compile_arena_formula(
                formula.body, inner, depth + 1
            )
            if isinstance(formula, fm.Forall):
                return lambda bind, budget: all(
                    body((*bind, value), budget) for value in instances
                )
            return lambda bind, budget: any(
                body((*bind, value), budget) for value in instances
            )
        raise _ArenaUnsupported

    # ------------------------------------------------------------------
    # condition evaluation
    # ------------------------------------------------------------------
    def _holds(self, formula: fm.Formula, budget: list[int]) -> bool:
        if isinstance(formula, fm.TrueF):
            return True
        if isinstance(formula, fm.FalseF):
            return False
        if isinstance(formula, fm.Equals):
            return self._eval(formula.lhs, budget) == self._eval(
                formula.rhs, budget
            )
        if isinstance(formula, fm.Not):
            return not self._holds(formula.body, budget)
        if isinstance(formula, fm.And):
            return self._holds(formula.lhs, budget) and self._holds(
                formula.rhs, budget
            )
        if isinstance(formula, fm.Or):
            return self._holds(formula.lhs, budget) or self._holds(
                formula.rhs, budget
            )
        if isinstance(formula, fm.Implies):
            return (not self._holds(formula.lhs, budget)) or self._holds(
                formula.rhs, budget
            )
        if isinstance(formula, fm.Iff):
            return self._holds(formula.lhs, budget) == self._holds(
                formula.rhs, budget
            )
        if isinstance(formula, (fm.Forall, fm.Exists)):
            var = formula.var
            try:
                instances = self._domain_terms[var.sort]
            except KeyError:
                raise EvaluationError(
                    f"condition quantifies over non-parameter sort "
                    f"{var.sort}"
                ) from None
            results = (
                self._holds(
                    apply_to_formula({var: value}, formula.body),
                    budget,
                )
                for value in instances
            )
            if isinstance(formula, fm.Forall):
                return all(results)
            return any(results)
        raise EvaluationError(
            f"unsupported construct in condition: {formula!r}"
        )

"""Conditional term rewriting: evaluating queries on trace states.

Paper, Section 4.2: the ground terms of sort state ("traces") are the
smallest set containing ``initiate`` and closed under symbolic
application of the update functions; the Q-equations are "a system of
mutually recursive equations defining the query functions", oriented
left-to-right as conditional rewrite rules

    q(p, u(p', U)) = "simpler expression"     (perhaps with a condition)

The :class:`RewriteEngine` evaluates any ground term of parameter or
Boolean sort by structural recursion on the trace:

* parameter names evaluate to themselves (their name string);
* Boolean connectives and equality tests evaluate by truth tables;
* interpreted parameter functions evaluate by their Python
  interpretation;
* a query application is matched against the equations indexed by
  (query, constructor); the first equation whose condition holds fires
  and its instantiated rhs is evaluated.

Evaluation is driven by a **compiled dispatch table**: the first time
a function symbol is evaluated the engine classifies it once
(connective, equality test, interpreted function, parameter name,
query) and stores a specialized closure; subsequent evaluations of the
same symbol go straight to the closure instead of re-walking the
classification chain.  Q-equations are likewise compiled, per
(query, constructor) pair, into positional matchers that bind each
pattern variable by direct argument indexing — the generic recursive
:func:`~repro.logic.substitution.match` only remains as a fallback for
non-canonical equation shapes.  Terms are hash-consed
(:mod:`repro.logic.terms`), so the memo cache is effectively keyed by
object identity: hashes are precomputed and key comparison is an
identity check.

Conditions may quantify over parameter sorts; quantifiers range over
the declared parameter names.  Evaluation is guarded by a *fuel*
budget: a circular equation system (violating sufficient completeness,
Section 4.4a) raises :class:`~repro.errors.NonTerminationError` rather
than looping, and a ground query term no equation covers raises
:class:`~repro.errors.IncompletenessError`.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.errors import (
    EvaluationError,
    IncompletenessError,
    NonTerminationError,
)
from repro.obs.coverage import COV_STATE as _COV
from repro.obs.tracer import OBS_STATE as _OBS
from repro.algebraic.equations import ConditionalEquation
from repro.algebraic.spec import AlgebraicSpec
from repro.logic import formulas as fm
from repro.logic.sorts import BOOLEAN, STATE
from repro.logic.substitution import (
    apply_to_formula,
    apply_to_term,
    match,
)
from repro.logic.terms import App, Term, Var

__all__ = ["RewriteEngine", "Value"]

#: Evaluation results: parameter names are strings, Booleans are bools.
Value = Hashable

#: Default fuel: number of query evaluations allowed per top-level call.
DEFAULT_FUEL = 100_000


def _compile_matcher(
    equation: ConditionalEquation,
) -> Callable[[App], dict[Var, Term] | None]:
    """Compile an equation's lhs into a positional matcher.

    The canonical Q-equation shape ``q(a1,...,ak, u(b1,...,bm))`` with
    each ``ai``/``bj`` a variable or a constant admits matching by
    direct indexing: variables bind the argument at their position,
    constants require identity (terms are interned), and a repeated
    variable requires its positions to carry the same term.  The
    matcher assumes the target already agrees with the pattern on the
    query and constructor symbols — the dispatch index guarantees it.

    Returns ``None`` for non-canonical shapes (nested applications in
    parameter positions, a non-variable inner state, ...); the caller
    falls back to the generic recursive matcher.
    """
    lhs = equation.lhs
    if not isinstance(lhs, App):
        return None
    state_pat = lhs.args[-1] if lhs.args else None
    if not isinstance(state_pat, App):
        return None

    binds: list[tuple[bool, int, Var]] = []
    consts: list[tuple[bool, int, Term]] = []
    same: list[tuple[bool, int, bool, int]] = []
    seen: dict[Var, tuple[bool, int]] = {}

    def visit(pattern: Term, in_state: bool, index: int) -> bool:
        if isinstance(pattern, Var):
            # Sorts need no runtime check: the dispatch key fixes both
            # symbols, and symbol arities sort every position.
            if pattern in seen:
                prev = seen[pattern]
                same.append((prev[0], prev[1], in_state, index))
            else:
                seen[pattern] = (in_state, index)
                binds.append((in_state, index, pattern))
            return True
        if isinstance(pattern, App) and not pattern.args:
            consts.append((in_state, index, pattern))
            return True
        return False

    for i, arg in enumerate(lhs.args[:-1]):
        if not visit(arg, False, i):
            return None
    for j, arg in enumerate(state_pat.args):
        if not visit(arg, True, j):
            return None

    def matcher(term: App) -> dict[Var, Term] | None:
        args = term.args
        state_args = args[-1].args
        for in_state, index, expected in consts:
            actual = state_args[index] if in_state else args[index]
            if actual is not expected and actual != expected:
                return None
        for a_state, a_index, b_state, b_index in same:
            first = state_args[a_index] if a_state else args[a_index]
            second = state_args[b_index] if b_state else args[b_index]
            if first is not second and first != second:
                return None
        return {
            var: (state_args[index] if in_state else args[index])
            for in_state, index, var in binds
        }

    return matcher


def _generic_matcher(
    equation: ConditionalEquation,
) -> Callable[[App], dict[Var, Term] | None]:
    """Fallback: full recursive first-order matching against the lhs."""
    lhs = equation.lhs

    def matcher(term: App):
        return match(lhs, term)

    return matcher


class RewriteEngine:
    """Evaluator for ground terms over an algebraic specification.

    Args:
        spec: the algebraic specification (equations are used as
            conditional rewrite rules in declaration order).
        fuel: maximum number of query-application evaluations per
            top-level :meth:`evaluate` call before concluding
            non-termination.
        memoize: cache evaluation results keyed by ground term.  The
            cache is sound because evaluation is pure; it makes
            repeated observation of overlapping traces (the common
            case in reachability analysis) close to linear.  Terms are
            interned, so cache probes are identity probes with a
            precomputed hash.
    """

    def __init__(
        self,
        spec: AlgebraicSpec,
        fuel: int = DEFAULT_FUEL,
        memoize: bool = True,
        state_oracle=None,
    ):
        self.spec = spec
        self.signature = spec.signature
        self._fuel_limit = fuel
        self._memoize = memoize
        #: Optional hook (query_name, param_values, state_term) ->
        #: value or None, consulted before equation dispatch.  Used by
        #: the induction engine to evaluate queries on *abstract*
        #: states given by a snapshot rather than a concrete trace.
        self._state_oracle = state_oracle
        self._cache: dict[Term, Value] = {}
        #: Monotone counters surfaced by the verification statistics:
        #: memo-cache hits/misses, equation-firing (rewrite) steps, and
        #: reuses of a compiled dispatch entry.
        self.cache_hits = 0
        self.cache_misses = 0
        self.rewrite_steps = 0
        self.dispatch_hits = 0
        #: Compiled per-symbol evaluation closures, built on first use.
        self._dispatch: dict[str, Callable[[App, list[int]], Value]] = {}
        #: Compiled equation lists per (query, constructor) pair; each
        #: entry carries the equation's index in ``spec.equations`` so
        #: coverage recording can name what fired.
        self._equation_tables: dict[
            tuple[str, str],
            tuple[
                tuple[
                    Callable[[App], dict[Var, Term] | None],
                    fm.Formula | None,
                    Term,
                    int,
                ],
                ...,
            ],
        ] = {}
        #: Equation object -> index into ``spec.equations``, built on
        #: first compile (identity-keyed: ``equations_for`` returns
        #: the declaration objects themselves).
        self._equation_index: dict[int, int] | None = None
        # Value constants per sort, prebuilt for quantifier expansion.
        self._domain_terms = {
            sort: tuple(
                self.signature.value(sort, v)
                for v in self.signature.domain(sort)
            )
            for sort in self.signature.parameter_sorts
        }

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def evaluate(self, term: Term) -> Value:
        """Evaluate a ground term of parameter or Boolean sort.

        Raises:
            EvaluationError: if the term is not ground or has sort
                state.
            IncompletenessError: if no equation applies to some query
                application encountered.
            NonTerminationError: if the fuel budget is exhausted.
        """
        if _OBS.enabled:
            _OBS.tracer.count("rewrite.evaluate.calls")
        if _COV.enabled:
            # Top-level dispatch-cell census: the multiset of these
            # calls is exactly the workload, which the chunk
            # partitioner splits without overlap — so summed per-cell
            # counts are identical for every worker count.
            if (
                isinstance(term, App)
                and term.args
                and self.signature.is_query(term.symbol)
            ):
                state = term.args[-1]
                if isinstance(state, App):
                    _COV.recorder.record_dispatch(
                        term.symbol.name, state.symbol.name
                    )
        if term.sort == STATE:
            raise EvaluationError(
                "terms of sort state are symbolic traces; only query/"
                "parameter terms evaluate to values"
            )
        if not term.is_ground:
            raise EvaluationError(f"term is not ground: {term}")
        budget = [self._fuel_limit]
        try:
            return self._eval(term, budget)
        except RecursionError:
            raise NonTerminationError(
                f"recursion limit reached while evaluating {term}: the "
                "equation system appears circular"
            ) from None

    def holds(self, condition: fm.Formula) -> bool:
        """Decide a ground condition (wff with equality atoms).

        Quantifiers must range over parameter sorts; they are expanded
        over the declared parameter names.
        """
        budget = [self._fuel_limit]
        return self._holds(condition, budget)

    def query(self, name: str, *args: Term) -> Value:
        """Convenience: evaluate query ``name`` applied to ``args``
        (parameter terms followed by the trace)."""
        return self.evaluate(self.signature.apply_query(name, *args))

    def normalize_state(self, term: Term) -> Term:
        """Normalize a ground trace by the U-equations.

        Paper, Section 4.1: axioms of sort state are U-equations; read
        left-to-right they rewrite traces into "simpler" traces (e.g.
        an idempotence law ``offer(c, offer(c, U)) = offer(c, U)``).
        Normalization is innermost-first; an applied rule's result is
        re-normalized at the top, with the usual fuel guard.

        Specifications without U-equations get the term back
        unchanged (the common case, including the paper's example).
        """
        if term.sort != STATE:
            raise EvaluationError(
                f"normalize_state expects a state term, got {term.sort}"
            )
        if not self.spec.u_equations:
            return term
        if _OBS.enabled:
            _OBS.tracer.count("rewrite.normalize.calls")
        budget = [self._fuel_limit]
        return self._normalize(term, budget)

    def _normalize(self, term: Term, budget: list[int]) -> Term:
        if not isinstance(term, App):
            raise EvaluationError(f"not a ground trace: {term}")
        if self.signature.is_initial(term.symbol):
            return term
        budget[0] -= 1
        if budget[0] < 0:
            raise NonTerminationError(
                "fuel exhausted during state normalization: the "
                "U-equations appear non-terminating"
            )
        inner = self._normalize(term.args[-1], budget)
        current = App(term.symbol, (*term.args[:-1], inner))
        for equation in self.spec.u_equations_for(current.symbol.name):
            substitution = match(equation.lhs, current)
            if substitution is None:
                continue
            if equation.condition is not None:
                closed = substitution.apply_formula(equation.condition)
                if not self._holds(closed, budget):
                    continue
            rewritten = apply_to_term(substitution, equation.rhs)
            self.rewrite_steps += 1
            if _COV.enabled:
                _COV.recorder.record_u_fire(
                    current.symbol.name, self._index_of(equation)
                )
            if not isinstance(rewritten, App):
                raise EvaluationError(
                    f"U-equation {equation.describe()} produced a "
                    f"non-ground state {rewritten}"
                )
            if self.signature.is_initial(rewritten.symbol):
                return rewritten
            # The rewrite may expose new redexes: renormalize fully.
            return self._normalize(rewritten, budget)
        return current

    def clear_cache(self) -> None:
        """Drop all memoized results.

        The compiled dispatch tables survive (they depend only on the
        specification); dropping the memo also releases the engine's
        strong references to cached ground terms, allowing retired
        terms to leave the intern table.
        """
        self._cache.clear()

    @property
    def cache_size(self) -> int:
        """Number of memoized ground-term results."""
        return len(self._cache)

    @property
    def dispatch_size(self) -> int:
        """Number of compiled dispatch entries (symbol closures plus
        per-(query, constructor) equation tables)."""
        return len(self._dispatch) + len(self._equation_tables)

    # ------------------------------------------------------------------
    # evaluation core
    # ------------------------------------------------------------------
    _MISSING = object()

    def _eval(self, term: Term, budget: list[int]) -> Value:
        if self._memoize:
            cached = self._cache.get(term, self._MISSING)
            if cached is not self._MISSING:
                self.cache_hits += 1
                return cached
            self.cache_misses += 1
        result = self._eval_uncached(term, budget)
        if self._memoize:
            self._cache[term] = result
        return result

    def _eval_uncached(self, term: Term, budget: list[int]) -> Value:
        if isinstance(term, Var):
            raise EvaluationError(f"unbound variable {term} in evaluation")
        if not isinstance(term, App):
            raise TypeError(f"not a term: {term!r}")
        handler = self._dispatch.get(term.symbol.name)
        if handler is None:
            handler = self._build_handler(term.symbol)
            self._dispatch[term.symbol.name] = handler
        else:
            self.dispatch_hits += 1
        return handler(term, budget)

    def _build_handler(
        self, symbol
    ) -> Callable[[App, list[int]], Value]:
        """Classify ``symbol`` once and return its evaluation closure.

        The classification order mirrors the paper's evaluation rules
        (and the engine's original dispatch chain): Boolean constants,
        connectives, equality tests, interpreted functions, parameter
        names, queries.
        """
        sig = self.signature
        name = symbol.name
        if symbol.result_sort == BOOLEAN and name in ("True", "False"):
            constant = name == "True"
            return lambda term, budget: constant

        if sig.is_connective(symbol):
            return self._connective_handler(name)

        if sig.is_equality_test(symbol):
            def equality(term: App, budget: list[int]) -> bool:
                return self._eval(term.args[0], budget) == self._eval(
                    term.args[1], budget
                )

            return equality

        interp = sig.interpretation(name)
        if interp is not None:
            def interpreted(term: App, budget: list[int]) -> Value:
                return interp(
                    *[self._eval(arg, budget) for arg in term.args]
                )

            return interpreted

        if symbol.is_constant and symbol.result_sort != STATE:
            # A parameter name evaluates to itself.
            return lambda term, budget: name

        if sig.is_query(symbol):
            return self._eval_query

        def unsupported(term: App, budget: list[int]) -> Value:
            raise EvaluationError(
                f"cannot evaluate {term}: {term.symbol.name} is neither "
                "a connective, equality test, interpreted function, "
                "parameter name, nor query"
            )

        return unsupported

    def _connective_handler(
        self, name: str
    ) -> Callable[[App, list[int]], bool]:
        eval_ = self._eval
        if name == "not":
            return lambda term, budget: not eval_(term.args[0], budget)
        # Short-circuit where the truth table allows it.
        if name == "and":
            return lambda term, budget: bool(
                eval_(term.args[0], budget)
            ) and bool(eval_(term.args[1], budget))
        if name == "or":
            return lambda term, budget: bool(
                eval_(term.args[0], budget)
            ) or bool(eval_(term.args[1], budget))
        if name == "implies":
            return lambda term, budget: (
                not eval_(term.args[0], budget)
            ) or bool(eval_(term.args[1], budget))
        if name == "iff":
            return lambda term, budget: bool(
                eval_(term.args[0], budget)
            ) == bool(eval_(term.args[1], budget))

        def unknown(term: App, budget: list[int]) -> bool:
            raise EvaluationError(f"unknown connective {name!r}")

        return unknown

    def _compiled_equations(self, query: str, constructor: str):
        """The compiled matcher table for a (query, constructor) pair."""
        key = (query, constructor)
        table = self._equation_tables.get(key)
        if table is None:
            compiled = []
            for equation in self.spec.equations_for(query, constructor):
                matcher = _compile_matcher(equation)
                if matcher is None:
                    matcher = _generic_matcher(equation)
                compiled.append(
                    (
                        matcher,
                        equation.condition,
                        equation.rhs,
                        self._index_of(equation),
                    )
                )
            table = tuple(compiled)
            self._equation_tables[key] = table
        else:
            self.dispatch_hits += 1
        return table

    def _index_of(self, equation: ConditionalEquation) -> int:
        """The equation's index within ``spec.equations``."""
        index = self._equation_index
        if index is None:
            index = {
                id(candidate): position
                for position, candidate in enumerate(self.spec.equations)
            }
            self._equation_index = index
        return index.get(id(equation), -1)

    def _eval_query(self, term: App, budget: list[int]) -> Value:
        budget[0] -= 1
        if budget[0] < 0:
            raise NonTerminationError(
                f"fuel exhausted while evaluating {term}: the equation "
                "system appears circular (sufficient completeness fails)"
            )
        state_arg = term.args[-1]
        if self._state_oracle is not None:
            params = tuple(
                self._eval(arg, budget) for arg in term.args[:-1]
            )
            resolved = self._state_oracle(
                term.symbol.name, params, state_arg
            )
            if resolved is not None:
                return resolved
        if not isinstance(state_arg, App):
            raise EvaluationError(
                f"query {term} applied to a non-ground state"
            )
        constructor = state_arg.symbol.name
        table = self._compiled_equations(term.symbol.name, constructor)
        for matcher, condition, rhs, eq_index in table:
            bindings = matcher(term)
            if bindings is None:
                continue
            if condition is not None:
                closed = apply_to_formula(bindings, condition)
                if not self._holds(closed, budget):
                    continue
            instantiated = apply_to_term(bindings, rhs)
            self.rewrite_steps += 1
            if _COV.enabled:
                # Fired-equation *sets* union-merge exactly: within an
                # engine the memo-missed terms are the needed terms,
                # and need distributes over workload unions.
                _COV.recorder.record_fire(
                    term.symbol.name, constructor, eq_index
                )
            return self._eval(instantiated, budget)
        raise IncompletenessError(
            f"no equation applies to {term} (query "
            f"{term.symbol.name!r} on constructor {constructor!r}): the "
            "specification is not sufficiently complete"
        )

    # ------------------------------------------------------------------
    # condition evaluation
    # ------------------------------------------------------------------
    def _holds(self, formula: fm.Formula, budget: list[int]) -> bool:
        if isinstance(formula, fm.TrueF):
            return True
        if isinstance(formula, fm.FalseF):
            return False
        if isinstance(formula, fm.Equals):
            return self._eval(formula.lhs, budget) == self._eval(
                formula.rhs, budget
            )
        if isinstance(formula, fm.Not):
            return not self._holds(formula.body, budget)
        if isinstance(formula, fm.And):
            return self._holds(formula.lhs, budget) and self._holds(
                formula.rhs, budget
            )
        if isinstance(formula, fm.Or):
            return self._holds(formula.lhs, budget) or self._holds(
                formula.rhs, budget
            )
        if isinstance(formula, fm.Implies):
            return (not self._holds(formula.lhs, budget)) or self._holds(
                formula.rhs, budget
            )
        if isinstance(formula, fm.Iff):
            return self._holds(formula.lhs, budget) == self._holds(
                formula.rhs, budget
            )
        if isinstance(formula, (fm.Forall, fm.Exists)):
            var = formula.var
            try:
                instances = self._domain_terms[var.sort]
            except KeyError:
                raise EvaluationError(
                    f"condition quantifies over non-parameter sort "
                    f"{var.sort}"
                ) from None
            results = (
                self._holds(
                    apply_to_formula({var: value}, formula.body),
                    budget,
                )
                for value in instances
            )
            if isinstance(formula, fm.Forall):
                return all(results)
            return any(results)
        raise EvaluationError(
            f"unsupported construct in condition: {formula!r}"
        )

"""Sufficient completeness of algebraic specifications.

Paper, Section 4.1: "We call an algebraic specification T = (L, A)
sufficiently complete iff for every ground term of the form
q(t1,...,tn), where q is a query function, there exists a parameter
name p such that A ⊢ q(t1,...,tn) = p.  Intuitively, a sufficiently
complete algebraic specification is one enabling the evaluation of all
queries."

Section 4.4a reduces the check to "termination of this system of
[mutually] recursive definitions (...) the basic idea is checking the
absence of circularity".  This module implements both halves:

* **Structural termination** (:func:`check_termination`): every query
  application in a rhs or condition must apply to a state that is a
  *proper subterm* of the lhs state (in constructor-based equations,
  the matched inner state variable).  A query call whose state argument
  re-applies an update does not decrease and is reported; if such
  non-decreasing calls form a cycle in the query dependency graph
  (built with :mod:`networkx`), the system is circular — the exact
  hazard the paper describes with ``offered``/``takes`` reducing to
  each other.

* **Constructor/ condition coverage** (:func:`check_coverage`): for
  every query and every constructor there must be equations, and for
  every ground instance over the parameter domains at least one
  equation's condition must hold — checked exhaustively on all traces
  up to a depth bound (the empirical counterpart of case exhaustion).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

import networkx as nx

from repro.errors import (
    IncompletenessError,
    NonTerminationError,
    ReproError,
)
from repro.algebraic.algebra import TraceAlgebra
from repro.algebraic.equations import ConditionalEquation
from repro.algebraic.spec import AlgebraicSpec
from repro.logic.terms import App, Term, Var
from repro.obs.tracer import span as _span
from repro.parallel.executor import run_chunked
from repro.parallel.partition import chunk_ranges
from repro.parallel.stats import (
    StatsSink,
    VerificationStats,
    WorkerStats,
    counter_delta,
    engine_counters,
)

__all__ = [
    "TerminationReport",
    "CoverageReport",
    "CompletenessReport",
    "check_termination",
    "check_coverage",
    "check_sufficient_completeness",
]


@dataclass(frozen=True)
class TerminationReport:
    """Outcome of the structural termination analysis.

    Attributes:
        ok: True iff the analysis certifies termination.
        structural: True iff *every* query call in every rhs/condition
            strictly decreases the state (the simple certificate).
        non_decreasing_calls: equations containing query calls whose
            state argument does not decrease, with the offending call.
        cycles: cycles of non-decreasing dependencies between queries
            (each a list of query names) — actual circularity.
    """

    ok: bool
    structural: bool
    non_decreasing_calls: tuple[tuple[ConditionalEquation, Term], ...] = (
        field(default_factory=tuple)
    )
    cycles: tuple[tuple[str, ...], ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        if self.structural:
            return "terminating (all query calls structurally decrease)"
        if self.ok:
            return (
                "terminating (non-decreasing calls exist but form no "
                "dependency cycle)"
            )
        lines = ["possibly non-terminating; circular dependencies:"]
        for cycle in self.cycles:
            lines.append("  " + " -> ".join((*cycle, cycle[0])))
        return "\n".join(lines)


@dataclass(frozen=True)
class CoverageReport:
    """Outcome of the constructor/condition coverage check.

    Attributes:
        ok: True iff every query evaluated on every checked trace.
        missing_constructors: (query, constructor) pairs with no
            defining equation at all.
        uncovered: ground query terms on which no equation's condition
            held (conditions not exhaustive), as strings.
        traces_checked: number of traces exhaustively evaluated.
    """

    ok: bool
    missing_constructors: tuple[tuple[str, str], ...] = field(
        default_factory=tuple
    )
    uncovered: tuple[str, ...] = field(default_factory=tuple)
    traces_checked: int = 0

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        if self.ok:
            return (
                f"covered (all queries evaluate on {self.traces_checked} "
                "traces)"
            )
        lines = ["coverage gaps:"]
        for query, constructor in self.missing_constructors:
            lines.append(
                f"  no equation for query {query!r} on constructor "
                f"{constructor!r}"
            )
        for term in self.uncovered:
            lines.append(f"  no condition held for {term}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CompletenessReport:
    """Combined sufficient-completeness verdict (Section 4.4a)."""

    termination: TerminationReport
    coverage: CoverageReport

    @property
    def ok(self) -> bool:
        """True iff both termination and coverage hold."""
        return self.termination.ok and self.coverage.ok

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        verdict = (
            "sufficiently complete"
            if self.ok
            else "NOT sufficiently complete"
        )
        return (
            f"{verdict}\n  termination: {self.termination}\n"
            f"  coverage: {self.coverage}"
        )


def _query_calls(spec: AlgebraicSpec, term: Term) -> list[App]:
    """All query applications occurring in ``term``."""
    return [
        sub
        for sub in term.subterms()
        if isinstance(sub, App) and spec.signature.is_query(sub.symbol)
    ]


def _equation_query_calls(
    spec: AlgebraicSpec, equation: ConditionalEquation
) -> list[App]:
    calls = _query_calls(spec, equation.rhs)
    if equation.condition is not None:
        for term in equation.condition.terms():
            calls.extend(_query_calls(spec, term))
    return calls


def check_termination(spec: AlgebraicSpec) -> TerminationReport:
    """Certify termination of the Q-equation system, or exhibit the
    circularity.

    A call ``q'(..., S)`` inside the equation for ``q(..., u(..., U))``
    *decreases* iff S is the bare state variable U (or, more generally,
    contains no update application).  Decreasing calls always
    terminate by induction on trace length.  Non-decreasing calls are
    collected into a dependency graph; the system is certified iff that
    graph is acyclic (a cycle is the paper's circularity hazard).
    """
    graph = nx.DiGraph()
    for symbol in spec.signature.queries:
        graph.add_node(symbol.name)
    non_decreasing: list[tuple[ConditionalEquation, Term]] = []
    for equation in spec.q_equations:
        for call in _equation_query_calls(spec, equation):
            state_arg = call.args[-1]
            decreasing = isinstance(state_arg, Var) or not any(
                isinstance(sub, App)
                and (
                    spec.signature.is_update(sub.symbol)
                    or spec.signature.is_initial(sub.symbol)
                )
                for sub in state_arg.subterms()
            )
            if not decreasing:
                non_decreasing.append((equation, call))
                graph.add_edge(equation.head_query, call.symbol.name)
    cycles = tuple(
        tuple(cycle) for cycle in nx.simple_cycles(graph)
    )
    structural = not non_decreasing
    return TerminationReport(
        ok=not cycles,
        structural=structural,
        non_decreasing_calls=tuple(non_decreasing),
        cycles=cycles,
    )


#: The serial early-exit cap on recorded coverage gaps, replayed by
#: the parallel merger: workers collect at most this many gaps per
#: chunk, and the merge stops at the same global count as the serial
#: scan.
_UNCOVERED_CAP = 10


def _coverage_chunk(context, index_range):
    """Worker chunk: scan an index range of the trace enumeration.

    Returns one ordered list of gap messages per trace scanned.  The
    chunk stops once it holds :data:`_UNCOVERED_CAP` gaps — the merge
    can never need more than the cap from a single chunk, because
    earlier chunks only push the global cap earlier.
    """
    algebra, traces = context
    before = engine_counters(algebra.engine)
    per_trace: list[list[str]] = []
    local = 0
    items = 0
    for index in index_range:
        if local >= _UNCOVERED_CAP:
            break
        entries: list[str] = []
        for name, params in algebra.observations:
            items += 1
            try:
                algebra.query(name, *params, trace=traces[index])
            except (IncompletenessError, NonTerminationError) as exc:
                entries.append(str(exc))
                local += 1
                if local >= _UNCOVERED_CAP:
                    break
        per_trace.append(entries)
    after = engine_counters(algebra.engine)
    return per_trace, counter_delta(before, after, items)


def _missing_constructors(spec: AlgebraicSpec) -> list[tuple[str, str]]:
    signature = spec.signature
    missing: list[tuple[str, str]] = []
    constructors = [s.name for s in signature.updates] + [
        s.name for s in signature.initials
    ]
    for query in signature.queries:
        for constructor in constructors:
            if not spec.equations_for(query.name, constructor):
                missing.append((query.name, constructor))
    return missing


def check_coverage(
    spec: AlgebraicSpec,
    depth: int = 3,
    max_traces: int = 5_000,
    workers: int = 1,
    stats: StatsSink | None = None,
) -> CoverageReport:
    """Check that every query evaluates on every trace up to ``depth``.

    First reports (query, constructor) pairs with no defining equation
    (static gap); then exhaustively evaluates all simple observations
    on all traces up to the depth bound, recording terms on which no
    equation's condition held (dynamic gap).

    Args:
        workers: scan the trace enumeration on this many processes.
            The merge replays the serial trace order, including the
            early exit after ten recorded gaps, so the report is
            identical for every worker count.
        stats: optional sink receiving one ``"coverage"`` record.
    """
    started = time.perf_counter()
    missing = _missing_constructors(spec)
    algebra = TraceAlgebra(spec)

    if workers <= 1:
        before = engine_counters(algebra.engine)
        items = 0
        uncovered: list[str] = []
        traces_checked = 0
        report = None
        for trace in itertools.islice(algebra.traces(depth), max_traces):
            traces_checked += 1
            for name, params in algebra.observations:
                items += 1
                try:
                    algebra.query(name, *params, trace=trace)
                except (IncompletenessError, NonTerminationError) as exc:
                    uncovered.append(str(exc))
                    if len(uncovered) >= _UNCOVERED_CAP:
                        report = CoverageReport(
                            ok=False,
                            missing_constructors=tuple(missing),
                            uncovered=tuple(uncovered),
                            traces_checked=traces_checked,
                        )
                        break
            if report is not None:
                break
        if report is None:
            report = CoverageReport(
                ok=not missing and not uncovered,
                missing_constructors=tuple(missing),
                uncovered=tuple(uncovered),
                traces_checked=traces_checked,
            )
        if stats is not None:
            record = WorkerStats(
                worker=0,
                wall_time=time.perf_counter() - started,
                **counter_delta(
                    before, engine_counters(algebra.engine), items
                ),
            )
            stats.add(
                VerificationStats.merge(
                    "coverage", 1, [record], time.perf_counter() - started
                )
            )
        return report

    traces = list(itertools.islice(algebra.traces(depth), max_traces))
    chunked, per_worker = run_chunked(
        _coverage_chunk,
        (algebra, traces),
        chunk_ranges(len(traces), workers),
        workers,
    )
    # Replay the serial scan over the per-trace gap lists: the counter
    # semantics (a trace counts as checked once its scan starts, the
    # scan stops at the cap mid-trace) match the serial loop exactly.
    uncovered = []
    traces_checked = 0
    report = None
    for entries in itertools.chain.from_iterable(chunked):
        traces_checked += 1
        for entry in entries:
            uncovered.append(entry)
            if len(uncovered) >= _UNCOVERED_CAP:
                report = CoverageReport(
                    ok=False,
                    missing_constructors=tuple(missing),
                    uncovered=tuple(uncovered),
                    traces_checked=traces_checked,
                )
                break
        if report is not None:
            break
    if report is None:
        report = CoverageReport(
            ok=not missing and not uncovered,
            missing_constructors=tuple(missing),
            uncovered=tuple(uncovered),
            traces_checked=traces_checked,
        )
    if stats is not None:
        stats.add(
            VerificationStats.merge(
                "coverage",
                workers,
                per_worker,
                time.perf_counter() - started,
            )
        )
    return report


def check_sufficient_completeness(
    spec: AlgebraicSpec,
    depth: int = 3,
    max_traces: int = 5_000,
    workers: int = 1,
    stats: StatsSink | None = None,
) -> CompletenessReport:
    """Run both halves of the Section 4.4a check and combine them.

    Args:
        workers: parallelize the coverage scan (termination analysis
            is a cheap graph computation and stays serial).
        stats: optional sink receiving the coverage record.
    """
    with _span("completeness", workers=workers) as obs_span:
        with _span("completeness.termination"):
            termination = check_termination(spec)
        try:
            with _span("completeness.coverage", depth=depth):
                coverage = check_coverage(
                    spec,
                    depth=depth,
                    max_traces=max_traces,
                    workers=workers,
                    stats=stats,
                )
        except ReproError as exc:  # pragma: no cover - defensive
            coverage = CoverageReport(
                ok=False, uncovered=(str(exc),), traces_checked=0
            )
        obs_span.count(
            "completeness.traces_checked", coverage.traces_checked
        )
    return CompletenessReport(termination=termination, coverage=coverage)

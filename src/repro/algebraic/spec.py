"""Algebraic (functions level) specifications T2 = (L2, A2).

An :class:`AlgebraicSpec` pairs an :class:`AlgebraicSignature` with a
set of conditional equations and provides the indexing used by the
rewriting engine: equations grouped by (defined query, constructor of
the state argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import SpecificationError
from repro.algebraic.equations import ConditionalEquation
from repro.algebraic.signature import AlgebraicSignature
from repro.logic.sorts import STATE
from repro.logic.terms import App

__all__ = ["AlgebraicSpec"]


@dataclass(frozen=True)
class AlgebraicSpec:
    """A functions-level specification ``T2 = (L2, A2)``.

    Attributes:
        signature: the algebraic language L2.
        equations: the axiom set A2 (conditional equations).
        name: optional human-readable application name.
    """

    signature: AlgebraicSignature
    equations: tuple[ConditionalEquation, ...] = field(
        default_factory=tuple
    )
    name: str = "unnamed application"

    def __post_init__(self) -> None:
        for equation in self.equations:
            self._validate(equation)

    def _validate(self, equation: ConditionalEquation) -> None:
        sig = self.signature
        if equation.is_u_equation:
            lhs = equation.lhs
            if not isinstance(lhs, App) or not sig.is_update(lhs.symbol):
                raise SpecificationError(
                    f"{equation.describe()}: the lhs of an U-equation "
                    "must be an update application"
                )
            return
        if equation.is_q_equation:
            lhs = equation.lhs
            if not isinstance(lhs, App) or not sig.is_query(lhs.symbol):
                raise SpecificationError(
                    f"{equation.describe()}: the lhs of a Q-equation must "
                    "be a query application"
                )
            state_arg = equation.state_argument
            if not isinstance(state_arg, App) or not (
                sig.is_update(state_arg.symbol)
                or sig.is_initial(state_arg.symbol)
            ):
                raise SpecificationError(
                    f"{equation.describe()}: the state argument of the lhs "
                    "must be an update or initiate application "
                    "(constructor discipline)"
                )
            for arg in lhs.args[:-1]:
                if arg.sort == STATE:
                    raise SpecificationError(
                        f"{equation.describe()}: only the last lhs "
                        "argument may have sort state"
                    )

    @property
    def q_equations(self) -> tuple[ConditionalEquation, ...]:
        """The Q-equations (non-state sorted)."""
        return tuple(e for e in self.equations if e.is_q_equation)

    @property
    def u_equations(self) -> tuple[ConditionalEquation, ...]:
        """The U-equations (state sorted)."""
        return tuple(e for e in self.equations if e.is_u_equation)

    @cached_property
    def _index(
        self,
    ) -> dict[tuple[str, str], tuple[ConditionalEquation, ...]]:
        index: dict[tuple[str, str], list[ConditionalEquation]] = {}
        for equation in self.q_equations:
            key = (equation.head_query, equation.constructor)
            index.setdefault(key, []).append(equation)
        return {key: tuple(eqs) for key, eqs in index.items()}

    def equations_for(
        self, query: str, constructor: str
    ) -> tuple[ConditionalEquation, ...]:
        """Q-equations defining ``query`` on states built by
        ``constructor`` (an update or initiate name), in declaration
        order."""
        return self._index.get((query, constructor), ())

    @cached_property
    def _u_index(self) -> dict[str, tuple[ConditionalEquation, ...]]:
        index: dict[str, list[ConditionalEquation]] = {}
        for equation in self.u_equations:
            lhs = equation.lhs
            assert isinstance(lhs, App)
            index.setdefault(lhs.symbol.name, []).append(equation)
        return {key: tuple(eqs) for key, eqs in index.items()}

    def u_equations_for(
        self, constructor: str
    ) -> tuple[ConditionalEquation, ...]:
        """U-equations whose lhs is headed by the given update, in
        declaration order (used as trace-normalization rules)."""
        return self._u_index.get(constructor, ())

    def with_equations(
        self, extra: list[ConditionalEquation]
    ) -> "AlgebraicSpec":
        """Return a spec with additional equations appended."""
        return AlgebraicSpec(
            self.signature, self.equations + tuple(extra), self.name
        )

    def __str__(self) -> str:
        lines = [f"Algebraic specification: {self.name}"]
        for equation in self.equations:
            lines.append(f"  {equation}")
        return "\n".join(lines)

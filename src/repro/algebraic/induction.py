"""Structural induction over abstract states.

Paper, Section 4.1: finitely generated algebras let us "employ the
principle of structural induction (on terms) as a proof rule", and the
Section 4.4b proof applies it in a particular shape: to show every
reachable state is valid, "it suffices to show that V contains
initiate and is closed under all other update functions" — closure of
the *predicate*, quantified over arbitrary states satisfying it, not
merely over states already reached.

This module mechanizes exactly that proof rule.  Because every
Q-equation's right-hand side and condition refer to queries **at the
predecessor state only**, the successor snapshot is a function of the
current snapshot alone — so updates act on *abstract* states (snapshot
vectors), whether or not any trace realizes them.  An invariant
``P`` is proved by:

* **base**: the initial snapshot satisfies P;
* **step**: for every abstract snapshot satisfying P (enumerated over
  the full observation-value space) and every update instance, the
  abstract successor satisfies P.

A successful check is a genuine induction proof of "P holds in every
reachable state" — stronger evidence than reachability enumeration,
because the step is verified on all P-states, including unreachable
ones (if the step fails only on unreachable states, the invariant is
simply not inductive and must be strengthened, the classic
invariant-strengthening situation)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import SpecificationError
from repro.algebraic.algebra import Snapshot, TraceAlgebra
from repro.algebraic.rewriting import RewriteEngine
from repro.algebraic.spec import AlgebraicSpec
from repro.logic.sorts import BOOLEAN, STATE
from repro.logic.terms import App, Term, Var

__all__ = [
    "AbstractState",
    "abstract_successor",
    "all_snapshots",
    "make_abstract_engine",
    "InductionReport",
    "prove_invariant",
]


@dataclass(frozen=True)
class AbstractState(Term):
    """A state-sorted term standing for "any state with this
    snapshot"; resolved by the rewrite engine's state oracle."""

    snapshot: Snapshot

    @property
    def sort(self):
        """The sort of the term."""
        return STATE

    def free_vars(self) -> frozenset[Var]:
        """The set of variables occurring in the term."""
        return frozenset()

    def subterms(self) -> Iterator[Term]:
        """Yield the term itself and every subterm, pre-order."""
        yield self

    def depth(self) -> int:
        """Height of the term tree."""
        return 1

    def size(self) -> int:
        """Total number of nodes in the term tree."""
        return 1

    def __str__(self) -> str:
        return f"<abstract {self.snapshot}>"


def _oracle(query: str, params: tuple, state_term: Term):
    if isinstance(state_term, AbstractState):
        return state_term.snapshot.value(query, tuple(params))
    return None


def make_abstract_engine(spec: AlgebraicSpec) -> RewriteEngine:
    """A rewrite engine that can evaluate queries on
    :class:`AbstractState` terms (snapshot-valued states)."""
    return RewriteEngine(spec, state_oracle=_oracle)


_engine = make_abstract_engine


def abstract_successor(
    spec: AlgebraicSpec,
    snapshot: Snapshot,
    update: str,
    params: tuple[str, ...],
    engine: RewriteEngine | None = None,
) -> Snapshot:
    """The snapshot after applying ``update(params)`` to *any* state
    whose snapshot is ``snapshot``.

    Well-defined because Q-equation right-hand sides and conditions
    only query the predecessor state (the structural-decrease property
    checked by :func:`repro.algebraic.completeness.check_termination`).
    """
    engine = engine or _engine(spec)
    signature = spec.signature
    symbol = signature.update(update)
    args = [
        signature.value(sort, value)
        for sort, value in zip(symbol.arg_sorts[:-1], params)
    ]
    successor_term = App(symbol, (*args, AbstractState(snapshot)))
    entries = []
    for query_symbol in signature.queries:
        domains = [
            signature.domain(sort)
            for sort in query_symbol.arg_sorts[:-1]
        ]
        for values in itertools.product(*domains):
            value_terms = [
                signature.value(sort, value)
                for sort, value in zip(
                    query_symbol.arg_sorts[:-1], values
                )
            ]
            observation = App(
                query_symbol, (*value_terms, successor_term)
            )
            entries.append(
                (
                    (query_symbol.name, values),
                    engine.evaluate(observation),
                )
            )
    return Snapshot(tuple(sorted(entries)))


def all_snapshots(spec: AlgebraicSpec) -> Iterator[Snapshot]:
    """Every abstract snapshot over the observation-value space.

    Boolean observations range over {False, True}; observations of a
    parameter result sort range over that sort's domain.  The count is
    exponential in the number of observations — intended for the small
    carriers of bounded verification.
    """
    signature = spec.signature
    keys: list[tuple[str, tuple[str, ...]]] = []
    spaces: list[tuple] = []
    for query_symbol in signature.queries:
        domains = [
            signature.domain(sort)
            for sort in query_symbol.arg_sorts[:-1]
        ]
        for values in itertools.product(*domains):
            keys.append((query_symbol.name, values))
            if query_symbol.result_sort == BOOLEAN:
                spaces.append((False, True))
            else:
                spaces.append(
                    tuple(signature.domain(query_symbol.result_sort))
                )
    for combination in itertools.product(*spaces):
        yield Snapshot(tuple(sorted(zip(keys, combination))))


@dataclass(frozen=True)
class InductionReport:
    """Outcome of an inductive invariant proof attempt.

    Attributes:
        ok: True iff base and step both hold — the invariant is
            *proved* for all reachable states.
        base_ok: the initial snapshot satisfies the invariant.
        step_ok: the invariant is closed under every update on every
            abstract P-state.
        states_examined: number of abstract P-states the step checked.
        counterexamples: (snapshot, update, params, successor) step
            failures (the snapshot may be unreachable; then the
            invariant is not inductive and needs strengthening).
    """

    ok: bool
    base_ok: bool
    step_ok: bool
    states_examined: int
    counterexamples: tuple[
        tuple[Snapshot, str, tuple[str, ...], Snapshot], ...
    ] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        if self.ok:
            return (
                "invariant PROVED by structural induction "
                f"(step checked on {self.states_examined} abstract "
                "states)"
            )
        lines = ["induction FAILED:"]
        if not self.base_ok:
            lines.append("  base: the initial state violates the invariant")
        for snapshot, update, params, successor in (
            self.counterexamples[:5]
        ):
            lines.append(
                f"  step: {update}({', '.join(params)}) maps P-state "
                f"{snapshot} to non-P-state {successor}"
            )
        return "\n".join(lines)


def prove_invariant(
    spec: AlgebraicSpec,
    invariant: Callable[[Snapshot], bool],
    max_abstract_states: int = 1_000_000,
) -> InductionReport:
    """Prove ``invariant`` for all reachable states by structural
    induction on traces (the Section 4.4b proof rule).

    Args:
        spec: the algebraic specification (must be structurally
            terminating, so successors are snapshot-determined).
        invariant: predicate on snapshots.
        max_abstract_states: safety bound on the abstract state space.

    Raises:
        SpecificationError: if the abstract space exceeds the bound.
    """
    algebra = TraceAlgebra(spec)
    engine = _engine(spec)
    base_snapshot = algebra.snapshot(algebra.initial_trace())
    base_ok = bool(invariant(base_snapshot))

    counterexamples = []
    examined = 0
    updates = list(algebra.update_instances())
    for index, snapshot in enumerate(all_snapshots(spec)):
        if index >= max_abstract_states:
            raise SpecificationError(
                "abstract state space exceeds max_abstract_states; "
                "shrink the domains"
            )
        if not invariant(snapshot):
            continue
        examined += 1
        for update, params in updates:
            successor = abstract_successor(
                spec, snapshot, update, params, engine
            )
            if not invariant(successor):
                counterexamples.append(
                    (snapshot, update, params, successor)
                )
                if len(counterexamples) >= 10:
                    return InductionReport(
                        False,
                        base_ok,
                        False,
                        examined,
                        tuple(counterexamples),
                    )
    step_ok = not counterexamples
    return InductionReport(
        ok=base_ok and step_ok,
        base_ok=base_ok,
        step_ok=step_ok,
        states_examined=examined,
        counterexamples=tuple(counterexamples),
    )

"""Structured descriptions and equation synthesis.

Paper, Section 4.2: "In order to obtain such equations we employ
*structured descriptions* giving, for each update function, intended
effects, preconditions for state change, possible side-effects, and
simple observations that are not affected.  In fact, we obtain
equations that are guaranteed, by construction, to be correct with
respect to the description."

:func:`synthesize_equations` mechanizes the construction:

* the **intended effects** and **side-effects** of an update ``u`` on a
  query ``q`` yield, per effect, either one unconditional equation
  (no precondition) or the guarded pair::

      pre  => q(a, u(p, U)) = value
      ~pre => q(a, u(p, U)) = q(a, U)

* the **not-affected** part yields a *frame equation* per query::

      <args differ from every effect instance> =>
          q(x, u(p, U)) = q(x, U)

The paper additionally simplifies some equations by appealing to the
static constraint (e.g. its equation 6 for ``cancel`` and equation 10
for ``enroll``).  The synthesized guarded pairs are observationally
equivalent to those hand-simplified forms — this is verified by the
E11 experiment (see EXPERIMENTS.md) — so synthesis skips the
constraint-specific simplification step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SpecificationError
from repro.algebraic.equations import ConditionalEquation
from repro.algebraic.signature import AlgebraicSignature
from repro.logic import formulas as fm
from repro.logic.sorts import BOOLEAN, STATE
from repro.logic.terms import App, Term, Var

__all__ = [
    "Effect",
    "StructuredDescription",
    "synthesize_equations",
    "initial_equations",
]

#: The canonical state variable used by descriptions.
STATE_VAR = Var("U", STATE)


@dataclass(frozen=True)
class Effect:
    """One effect of an update on a query.

    Attributes:
        query: name of the affected query function.
        args: the query's parameter arguments; each must be one of the
            update's formal parameters (the paper's descriptions always
            instantiate effects at the update's own parameters).
        value: the query's value after the update fires — a Python
            bool, or a Boolean term over queries applied to the state
            variable ``U`` (the pre-update state) and the parameters.
    """

    query: str
    args: tuple[Var, ...]
    value: Term | bool


@dataclass(frozen=True)
class StructuredDescription:
    """The paper's four-part semi-formal description of an update.

    Attributes:
        update: the update function's name.
        params: its formal parameter variables (state excluded).
        precondition: condition for state change, over queries at the
            state variable ``U``; ``None`` if the update always fires.
        effects: the intended effects.
        side_effects: additional effects (same shape; the distinction
            is documentary, following the paper's template).
        doc: free-text comment, e.g. the paper's ``/* course c is
            cancelled at state U ... */``.
    """

    update: str
    params: tuple[Var, ...]
    precondition: fm.Formula | None = None
    effects: tuple[Effect, ...] = field(default_factory=tuple)
    side_effects: tuple[Effect, ...] = field(default_factory=tuple)
    doc: str = ""

    @property
    def all_effects(self) -> tuple[Effect, ...]:
        """Intended effects followed by side-effects."""
        return self.effects + self.side_effects


def _as_term(signature: AlgebraicSignature, value: Term | bool) -> Term:
    if isinstance(value, bool):
        return signature.boolean(value)
    return value


def _fresh_vars(
    sorts: tuple, taken: set[str], base: str = "x"
) -> tuple[Var, ...]:
    out: list[Var] = []
    counter = 1
    for sort in sorts:
        name = f"{base}{counter}"
        while name in taken:
            counter += 1
            name = f"{base}{counter}"
        taken.add(name)
        out.append(Var(name, sort))
        counter += 1
    return tuple(out)


def _differs(
    signature: AlgebraicSignature,
    frame_args: tuple[Var, ...],
    effect_args: tuple[Var, ...],
) -> fm.Formula:
    """The guard "frame args differ from this effect instance":
    a disjunction of per-position disequalities."""
    disequalities: list[fm.Formula] = [
        fm.Not(fm.Equals(frame_arg, effect_arg))
        for frame_arg, effect_arg in zip(frame_args, effect_args)
    ]
    return fm.disjunction(disequalities)


def _validate(
    signature: AlgebraicSignature, description: StructuredDescription
) -> None:
    update = signature.update(description.update)
    expected = update.arg_sorts[:-1]
    if tuple(v.sort for v in description.params) != tuple(expected):
        raise SpecificationError(
            f"description of {description.update}: parameter sorts "
            f"{[str(v.sort) for v in description.params]} do not match "
            f"the declared update sorts {[str(s) for s in expected]}"
        )
    param_set = set(description.params)
    for effect in description.all_effects:
        query = signature.query(effect.query)
        if tuple(v.sort for v in effect.args) != tuple(
            query.arg_sorts[:-1]
        ):
            raise SpecificationError(
                f"effect on {effect.query} in description of "
                f"{description.update}: argument sorts do not match"
            )
        for var in effect.args:
            if var not in param_set:
                raise SpecificationError(
                    f"effect on {effect.query} in description of "
                    f"{description.update}: argument {var} is not a "
                    "parameter of the update"
                )


def synthesize_equations(
    signature: AlgebraicSignature,
    descriptions: list[StructuredDescription],
) -> list[ConditionalEquation]:
    """Synthesize the Q-equations for every update from its structured
    description, following the Section 4.2 method.

    Returns equations labelled ``synth:<query>:<update>:...``; combine
    with :func:`initial_equations` for a complete specification.

    Raises:
        SpecificationError: on an ill-formed description, or if two
            descriptions cover the same update.
    """
    seen_updates: set[str] = set()
    equations: list[ConditionalEquation] = []
    for description in descriptions:
        _validate(signature, description)
        if description.update in seen_updates:
            raise SpecificationError(
                f"duplicate description for update {description.update!r}"
            )
        seen_updates.add(description.update)
        equations.extend(_synthesize_one(signature, description))
    return equations


def _synthesize_one(
    signature: AlgebraicSignature, description: StructuredDescription
) -> list[ConditionalEquation]:
    update_state = App(
        signature.update(description.update),
        (*description.params, STATE_VAR),
    )
    equations: list[ConditionalEquation] = []

    effects_by_query: dict[str, list[Effect]] = {}
    for effect in description.all_effects:
        effects_by_query.setdefault(effect.query, []).append(effect)

    for query_symbol in signature.queries:
        query = query_symbol.name
        effects = effects_by_query.get(query, [])

        # Effect equations: fire when the precondition holds.
        for index, effect in enumerate(effects):
            lhs = App(query_symbol, (*effect.args, update_state))
            value = _as_term(signature, effect.value)
            unchanged = App(query_symbol, (*effect.args, STATE_VAR))
            tag = f"synth:{query}:{description.update}:effect{index}"
            if description.precondition is None:
                equations.append(
                    ConditionalEquation(lhs, value, None, tag)
                )
            else:
                equations.append(
                    ConditionalEquation(
                        lhs, value, description.precondition, tag
                    )
                )
                equations.append(
                    ConditionalEquation(
                        lhs,
                        unchanged,
                        fm.Not(description.precondition),
                        tag + ":otherwise",
                    )
                )

        # Frame equation: the not-affected part.
        taken = {v.name for v in description.params} | {STATE_VAR.name}
        frame_args = _fresh_vars(query_symbol.arg_sorts[:-1], taken)
        lhs = App(query_symbol, (*frame_args, update_state))
        rhs = App(query_symbol, (*frame_args, STATE_VAR))
        guards = [
            _differs(signature, frame_args, effect.args)
            for effect in effects
        ]
        condition: fm.Formula | None
        if not guards:
            condition = None
        else:
            condition = fm.conjunction(guards)
        equations.append(
            ConditionalEquation(
                lhs,
                rhs,
                condition,
                f"synth:{query}:{description.update}:frame",
            )
        )
    return equations


def initial_equations(
    signature: AlgebraicSignature,
    defaults: dict[str, Term | bool] | None = None,
    initial: str = "initiate",
) -> list[ConditionalEquation]:
    """Base equations ``q(x..., initiate) = default`` for every query.

    Boolean queries default to ``False`` (an empty database); queries
    of other sorts must be given a default in ``defaults``.
    """
    defaults = defaults or {}
    initial_term = signature.initial_term(initial)
    equations: list[ConditionalEquation] = []
    for query_symbol in signature.queries:
        if query_symbol.name in defaults:
            value = _as_term(signature, defaults[query_symbol.name])
        elif query_symbol.result_sort == BOOLEAN:
            value = signature.false()
        else:
            raise SpecificationError(
                f"query {query_symbol.name!r} has non-Boolean sort "
                f"{query_symbol.result_sort}; give it an initial value "
                "in `defaults`"
            )
        args = _fresh_vars(
            query_symbol.arg_sorts[:-1], {initial}, base="x"
        )
        lhs = App(query_symbol, (*args, initial_term))
        equations.append(
            ConditionalEquation(
                lhs, value, None, f"synth:{query_symbol.name}:{initial}"
            )
        )
    return equations

"""Functions level (paper, Section 4): algebraic specifications.

Abstract-data-type style specifications with a designated state sort,
query/update functions, conditional equations used as rewrite rules,
finitely generated trace algebras, sufficient-completeness checking,
and equation synthesis from structured descriptions.
"""

from repro.algebraic.algebra import (
    Snapshot,
    StateGraph,
    TraceAlgebra,
    Transition,
)
from repro.algebraic.completeness import (
    CompletenessReport,
    CoverageReport,
    TerminationReport,
    check_coverage,
    check_sufficient_completeness,
    check_termination,
)
from repro.algebraic.description import (
    STATE_VAR,
    Effect,
    StructuredDescription,
    initial_equations,
    synthesize_equations,
)
from repro.algebraic.equations import ConditionalEquation
from repro.algebraic.induction import (
    AbstractState,
    InductionReport,
    abstract_successor,
    all_snapshots,
    make_abstract_engine,
    prove_invariant,
)
from repro.algebraic.observation import (
    CongruenceViolation,
    ObservabilityReport,
    check_congruence,
    observational_classes,
)
from repro.algebraic.rewriting import RewriteEngine
from repro.algebraic.signature import AlgebraicSignature
from repro.algebraic.spec import AlgebraicSpec

__all__ = [
    "AlgebraicSignature",
    "AlgebraicSpec",
    "ConditionalEquation",
    "RewriteEngine",
    "TraceAlgebra",
    "Snapshot",
    "StateGraph",
    "Transition",
    "check_termination",
    "check_coverage",
    "check_sufficient_completeness",
    "TerminationReport",
    "CoverageReport",
    "CompletenessReport",
    "check_congruence",
    "observational_classes",
    "ObservabilityReport",
    "CongruenceViolation",
    "AbstractState",
    "InductionReport",
    "abstract_successor",
    "all_snapshots",
    "make_abstract_engine",
    "prove_invariant",
    "Effect",
    "StructuredDescription",
    "STATE_VAR",
    "synthesize_equations",
    "initial_equations",
]

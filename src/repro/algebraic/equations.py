"""Conditional equations — the axioms of algebraic specifications.

Paper, Section 4.1: "The type of axioms allowed in algebraic
specifications will be conditional equations, which are wffs of the
form ``P => t = t'`` where P is a wff and t and t' are terms of the
same sort s.  If s is state then we call the axiom an U-equation,
otherwise we call the axiom a Q-equation.  Often term t' is 'simpler'
than t and we can view an axiom as a conditional term-rewriting rule."
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.errors import SpecificationError
from repro.logic import formulas as fm
from repro.logic.sorts import STATE
from repro.logic.terms import App, Term, Var

__all__ = ["ConditionalEquation"]


@dataclass(frozen=True)
class ConditionalEquation:
    """A conditional equation ``condition => lhs = rhs``.

    Attributes:
        lhs: the left-hand term (the rewriting redex pattern).
        rhs: the right-hand term (the "simpler expression").
        condition: the guard wff P, or ``None`` for an unconditional
            equation.  Its atoms must be equalities between terms and
            it may quantify over parameter sorts only — the paper
            stresses that "the antecedents ... do not involve
            quantification over states, only over parameters".
        label: an optional name used in reports (e.g. ``"eq6a"``).
    """

    lhs: Term
    rhs: Term
    condition: fm.Formula | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.lhs.sort != self.rhs.sort:
            raise SpecificationError(
                f"{self.describe()}: sides have different sorts "
                f"({self.lhs.sort} vs {self.rhs.sort})"
            )
        extra = self.rhs.free_vars() - self.lhs.free_vars()
        if extra:
            names = sorted(v.name for v in extra)
            raise SpecificationError(
                f"{self.describe()}: right-hand side has variables not "
                f"bound by the left-hand side: {names}"
            )
        if self.condition is not None:
            cond_extra = self.condition.free_vars() - self.lhs.free_vars()
            if cond_extra:
                names = sorted(v.name for v in cond_extra)
                raise SpecificationError(
                    f"{self.describe()}: condition has variables not "
                    f"bound by the left-hand side: {names}"
                )
            for sub in self.condition.subformulas():
                if isinstance(sub, (fm.Forall, fm.Exists)):
                    if sub.var.sort == STATE:
                        raise SpecificationError(
                            f"{self.describe()}: condition quantifies over "
                            "states; only parameter quantification is "
                            "allowed (paper, Section 4.2)"
                        )
                if isinstance(sub, fm.Atom):
                    raise SpecificationError(
                        f"{self.describe()}: condition atoms must be "
                        "equalities between terms, not predicate "
                        "applications"
                    )

    @property
    def is_u_equation(self) -> bool:
        """True iff both sides have sort state (an U-equation)."""
        return self.lhs.sort == STATE

    @property
    def is_q_equation(self) -> bool:
        """True iff the sides have a non-state sort (a Q-equation)."""
        return self.lhs.sort != STATE

    @cached_property
    def head_query(self) -> str | None:
        """Name of the outermost function symbol of the lhs, if it is
        an application (for a constructor-based Q-equation this is the
        query being defined)."""
        if isinstance(self.lhs, App):
            return self.lhs.symbol.name
        return None

    @cached_property
    def state_argument(self) -> Term | None:
        """The last argument of the lhs if it has sort state.

        For the canonical pattern ``q(p..., u(p'..., U))`` this is the
        update application ``u(p'..., U)``.
        """
        if isinstance(self.lhs, App) and self.lhs.args:
            last = self.lhs.args[-1]
            if last.sort == STATE:
                return last
        return None

    @cached_property
    def constructor(self) -> str | None:
        """Name of the update/initial symbol heading the lhs's state
        argument, or ``None`` if the state argument is a bare variable
        or missing.

        Equations are indexed by ``(head_query, constructor)`` by the
        rewriting engine.
        """
        state_arg = self.state_argument
        if isinstance(state_arg, App):
            return state_arg.symbol.name
        return None

    def describe(self) -> str:
        """Short identification for error messages."""
        return self.label or f"equation {self.lhs} = {self.rhs}"

    def __str__(self) -> str:
        body = f"{self.lhs} = {self.rhs}"
        prefix = f"[{self.label}] " if self.label else ""
        if self.condition is None:
            return f"{prefix}{body}"
        return f"{prefix}{self.condition} => {body}"


def variables_of(equation: ConditionalEquation) -> frozenset[Var]:
    """All variables occurring in an equation (lhs, rhs and condition)."""
    out = equation.lhs.free_vars() | equation.rhs.free_vars()
    if equation.condition is not None:
        out |= equation.condition.free_vars()
    return out

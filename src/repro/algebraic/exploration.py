"""Packed value-row exploration with incremental (delta) re-runs.

The object BFS in :meth:`~repro.algebraic.algebra.TraceAlgebra.explore`
re-reduces every successor *trace* through the rewrite engine — each
edge costs a full snapshot (|observations| query evaluations).  For
specifications in the canonical synthesized fragment the successor
snapshot is a pure function of the *source snapshot*: the same
per-update :class:`~repro.algebraic.plans.UpdatePlan` programs the
serving runtime applies in O(delta).  :class:`PackedExplorer` runs the
identical breadth-first construction directly over packed value rows
(one tuple of observation values per state), applying plans instead of
rewriting, and materializes witness traces and interned snapshots only
at the rate states are *discovered* — the ≥10x of BENCH_kernel.json.

Byte-identity with the object path is a hard invariant: same state
discovery order, same witness traces, same transition list, same
truncation.  Anything outside the fragment (U-equations, state
normalization, a plan falling back to the rewrite engine) raises
:class:`PackedUnsupported` at construction, and any error during a run
makes the algebra fall back to the object BFS so spec errors surface
with their exact term-level messages.

**Delta exploration.**  A run can emit an *edge artifact*: the pool of
value rows it saw plus, for every expanded row, the target row of each
update instance — a memo keyed purely by values.  Because a target row
depends only on the source row and the equations of that one update
(the Markov property of the plan fragment), the memo stays valid for
every update whose equations are textually unchanged.  A later run
given the artifact (``verify --cache-dir`` threads it through the
PR-4 result cache) recomputes only the instances whose equations
changed and the rows never seen before; everything else replays from
the memo.  The artifact is validated against the signature fingerprint
and the cell/instance layout before use, so a stale or foreign
artifact degrades to a full explore, never a wrong graph.
"""

from __future__ import annotations

from collections import deque

from repro.algebraic.plans import UpdatePlanner
from repro.logic.terms import App, Term
from repro.pipeline.fingerprint import describe_signature, digest

__all__ = [
    "PackedExplorer",
    "PackedUnsupported",
    "delta_counters",
    "reset_delta_counters",
    "edge_artifact_name",
    "EDGE_ARTIFACT_FORMAT",
]

#: Bump when the edge-artifact payload shape changes; old artifacts
#: then fail validation (a full explore, never a wrong graph).
EDGE_ARTIFACT_FORMAT = 1

#: Process-wide delta statistics, aggregated over every packed
#: exploration (the ``delta_reexplored_states`` field of the
#: ``[kernel]`` stats line).
_DELTA_COUNTERS = {
    "runs": 0,
    "delta_runs": 0,
    "reexplored_states": 0,
    "cached_transitions": 0,
    "recomputed_transitions": 0,
}


def delta_counters() -> dict[str, int]:
    """A copy of the process-wide delta-exploration counters."""
    return dict(_DELTA_COUNTERS)


def reset_delta_counters() -> None:
    """Zero the process-wide delta-exploration counters (tests)."""
    for key in _DELTA_COUNTERS:
        _DELTA_COUNTERS[key] = 0


def edge_artifact_name(signature) -> str:
    """The result-cache entry name for a specification's edge
    artifact, keyed by the signature fingerprint (an edited signature
    gets a fresh entry; edited equations revalidate per update)."""
    return f"explore-edges-{digest(describe_signature(signature))[:32]}"


class PackedUnsupported(Exception):
    """The specification falls outside the packed-explorable fragment."""


class PackedExplorer:
    """Value-row BFS for one :class:`~repro.algebraic.algebra.TraceAlgebra`.

    Args:
        algebra: the trace algebra to explore.  Must be in the
            canonical fragment: no U-equations, no state
            normalization, and every ground update instance must
            compile to a non-fallback plan.

    Raises:
        PackedUnsupported: when any of those conditions fail.
    """

    def __init__(self, algebra) -> None:
        self.algebra = algebra
        spec = algebra.spec
        if algebra.normalize:
            raise PackedUnsupported("state normalization active")
        if spec.u_equations:
            raise PackedUnsupported("specification has U-equations")
        #: Sorted observation cells — exactly the key order of
        #: :class:`~repro.algebraic.algebra.Snapshot` entries.
        self.cells = tuple(sorted(algebra.observations))
        self._cell_index = {cell: i for i, cell in enumerate(self.cells)}
        planner = UpdatePlanner(spec)
        signature = algebra.signature
        #: One entry per ground update instance, in
        #: ``update_instances()`` order: (update, params, symbol,
        #: argument value terms, indexed plan actions).
        self.instances = []
        for update, params in algebra.update_instances():
            plan = planner.compile(update, params)
            if plan.fallback:
                raise PackedUnsupported(
                    f"update {update}{params} falls outside the "
                    "canonical plan fragment"
                )
            symbol = signature.update(update)
            arg_terms = tuple(
                signature.value(sort, value)
                for sort, value in zip(symbol.arg_sorts[:-1], params)
            )
            actions = tuple(
                (self._cell_index[cell], entries)
                for cell, entries in plan.actions
            )
            self.instances.append(
                (update, params, symbol, arg_terms, actions)
            )
        #: Current per-(query, update) equation renderings — the delta
        #: validity key for cached edges.
        self._equation_renderings = self._render_equations(spec)
        self._signature_digest = digest(describe_signature(signature))

    # ------------------------------------------------------------------
    # delta keys & artifact plumbing
    # ------------------------------------------------------------------
    def _render_equations(self, spec) -> dict[str, list[str]]:
        renderings: dict[str, list[str]] = {}
        queries = [q.name for q in self.algebra.signature.queries]
        updates = [u.name for u in self.algebra.signature.updates]
        for update in updates:
            for query in queries:
                renderings[f"{query}|{update}"] = [
                    str(equation)
                    for equation in spec.equations_for(query, update)
                ]
        return renderings

    def _load_edge_cache(self, artifact: dict | None):
        """Validate a prior run's artifact and split it into the
        reusable edge memo plus the per-instance validity mask.

        Returns ``(edges, instance_ok)`` where ``edges`` maps a source
        value row to the tuple of target rows (one per instance, in
        instance order) and ``instance_ok[i]`` says instance ``i``'s
        equations are unchanged since the artifact was built.  Returns
        ``(None, None)`` for a missing/stale/foreign artifact.
        """
        if not isinstance(artifact, dict):
            return None, None
        if artifact.get("format") != EDGE_ARTIFACT_FORMAT:
            return None, None
        if artifact.get("signature") != self._signature_digest:
            return None, None
        cells = tuple(
            (name, tuple(params))
            for name, params in artifact.get("cells", ())
        )
        if cells != self.cells:
            return None, None
        stored_instances = tuple(
            (update, tuple(params))
            for update, params in artifact.get("instances", ())
        )
        if stored_instances != tuple(
            (update, params)
            for update, params, _, _, _ in self.instances
        ):
            return None, None
        stored_equations = artifact.get("equations")
        if not isinstance(stored_equations, dict):
            return None, None
        unchanged_updates = set()
        for update in {u for u, *_ in self.instances}:
            if all(
                stored_equations.get(f"{query.name}|{update}")
                == self._equation_renderings[f"{query.name}|{update}"]
                for query in self.algebra.signature.queries
            ):
                unchanged_updates.add(update)
        instance_ok = tuple(
            update in unchanged_updates
            for update, *_ in self.instances
        )
        try:
            pool = [
                tuple(row) for row in artifact["pool"]
            ]
            edges = {
                pool[source]: tuple(pool[target] for target in targets)
                for source, targets in artifact["edges"]
            }
        except (KeyError, TypeError, IndexError):
            return None, None
        return edges, instance_ok

    def _build_artifact(
        self, edges: dict[tuple, tuple]
    ) -> dict:
        """Serialize the run's complete edge memo (JSON-shaped, for
        the result cache)."""
        pool_index: dict[tuple, int] = {}
        pool: list[list] = []

        def row_id(row: tuple) -> int:
            idx = pool_index.get(row)
            if idx is None:
                idx = len(pool)
                pool_index[row] = idx
                pool.append(list(row))
            return idx

        packed_edges = [
            [row_id(source), [row_id(target) for target in targets]]
            for source, targets in edges.items()
        ]
        return {
            "format": EDGE_ARTIFACT_FORMAT,
            "signature": self._signature_digest,
            "cells": [
                [name, list(params)] for name, params in self.cells
            ],
            "instances": [
                [update, list(params)]
                for update, params, _, _, _ in self.instances
            ],
            "equations": {
                key: list(value)
                for key, value in self._equation_renderings.items()
            },
            "pool": pool,
            "edges": packed_edges,
        }

    # ------------------------------------------------------------------
    # exploration
    # ------------------------------------------------------------------
    def _initial_row(self) -> tuple:
        """The initial state's value row (via the algebra's snapshot,
        so arena batch evaluation and tracer counts behave exactly
        like the object path's first snapshot)."""
        snapshot = self.algebra.snapshot(self.algebra.initial_trace())
        keys = tuple(key for key, _ in snapshot.entries)
        if keys != self.cells:
            raise PackedUnsupported("snapshot keys disagree with cells")
        return tuple(value for _, value in snapshot.entries)

    def _apply(self, instance, row: tuple, get) -> tuple:
        """Apply one update instance's plan to a value row."""
        _update, _params, _symbol, _arg_terms, actions = instance
        out = None
        for index, entries in actions:
            for condition, rhs, _eq in entries:
                if condition is not None and not condition(get):
                    continue
                if rhs is not None:
                    value = rhs(get)
                    if value != row[index]:
                        if out is None:
                            out = list(row)
                        out[index] = value
                break
            else:
                # Dispatch exhausted: incompleteness.  Raising makes
                # the algebra fall back to the object path, which
                # reports the failure with its exact term message.
                raise PackedUnsupported(
                    f"no equation fires for cell {self.cells[index]}"
                )
        return row if out is None else tuple(out)

    def explore(
        self,
        max_states: int,
        max_depth: int | None,
        edge_cache: dict | None = None,
    ):
        """Run the packed BFS; byte-identical to
        :meth:`TraceAlgebra._explore_serial`.

        Returns:
            ``(graph, items)`` with ``graph.artifact`` set to this
            run's refreshed edge memo and ``graph.delta`` to the run's
            delta statistics.
        """
        # Imported here: algebra imports this module lazily, and this
        # module only needs the graph dataclasses at run time.
        from repro.algebraic.algebra import (
            Snapshot,
            StateGraph,
            Transition,
        )

        algebra = self.algebra
        cells = self.cells
        instances = self.instances
        cached_edges, instance_ok = self._load_edge_cache(edge_cache)
        using_cache = cached_edges is not None
        all_cached = using_cache and all(instance_ok)

        initial_row = self._initial_row()
        initial_trace = algebra.initial_trace()
        items = 1
        snap_of: dict[tuple, Snapshot] = {
            initial_row: Snapshot(tuple(zip(cells, initial_row)))
        }
        initial_snapshot = snap_of[initial_row]
        states: dict[Snapshot, Term] = {initial_snapshot: initial_trace}
        transitions: list[Transition] = []
        truncated = False
        new_edges: dict[tuple, tuple] = {}
        reexplored = 0
        cached_transitions = 0
        recomputed_transitions = 0
        frontier: deque[tuple[tuple, Snapshot, Term, int]] = deque(
            [(initial_row, initial_snapshot, initial_trace, 0)]
        )
        while frontier:
            row, source_snapshot, trace, depth = frontier.popleft()
            if max_depth is not None and depth >= max_depth:
                continue
            cached_row = (
                cached_edges.get(row) if using_cache else None
            )
            if cached_row is not None and all_cached:
                targets = cached_row
                cached_transitions += len(targets)
            else:
                get = None
                if cached_row is None:
                    reexplored += 1
                targets = []
                for i, instance in enumerate(instances):
                    if cached_row is not None and instance_ok[i]:
                        targets.append(cached_row[i])
                        cached_transitions += 1
                        continue
                    if get is None:
                        get = dict(zip(cells, row)).__getitem__
                    targets.append(self._apply(instance, row, get))
                    recomputed_transitions += 1
                targets = tuple(targets)
            new_edges[row] = targets
            for instance, target_row in zip(instances, targets):
                update, params, symbol, arg_terms, _actions = instance
                items += 1
                target_snapshot = snap_of.get(target_row)
                if target_snapshot is None:
                    target_snapshot = Snapshot(
                        tuple(zip(cells, target_row))
                    )
                    snap_of[target_row] = target_snapshot
                transitions.append(
                    Transition(
                        source_snapshot, update, params, target_snapshot
                    )
                )
                if target_snapshot not in states:
                    if len(states) >= max_states:
                        truncated = True
                        continue
                    successor = App(symbol, (*arg_terms, trace))
                    states[target_snapshot] = successor
                    frontier.append(
                        (
                            target_row,
                            target_snapshot,
                            successor,
                            depth + 1,
                        )
                    )
        graph = StateGraph(
            initial_snapshot, states, transitions, truncated
        )
        graph.artifact = self._build_artifact(new_edges)
        graph.delta = {
            "used_cache": using_cache,
            "reexplored_states": reexplored if using_cache else len(new_edges),
            "expanded_states": len(new_edges),
            "cached_transitions": cached_transitions,
            "recomputed_transitions": recomputed_transitions,
        }
        _DELTA_COUNTERS["runs"] += 1
        if using_cache:
            _DELTA_COUNTERS["delta_runs"] += 1
            _DELTA_COUNTERS["reexplored_states"] += reexplored
        else:
            _DELTA_COUNTERS["reexplored_states"] += len(new_edges)
        _DELTA_COUNTERS["cached_transitions"] += cached_transitions
        _DELTA_COUNTERS["recomputed_transitions"] += recomputed_transitions
        return graph, items

"""Compiled per-(update, params) apply programs over observation cells.

Extracted from :mod:`repro.runtime.state` so both consumers of the
cell representation share one compiler:

* the serving runtime's :class:`~repro.runtime.state.MaterializedState`
  applies one update in O(delta) against its live cell dict;
* the packed state-space explorer
  (:class:`repro.algebraic.exploration.PackedExplorer`) applies every
  ground update instance to value rows during BFS, which is what makes
  exploration an order of magnitude faster than re-reducing each
  successor trace.

An :class:`UpdatePlan` grounds the Q-equations of one update instance
into per-cell dispatch lists of ``(condition, rhs, equation index)``
closures over a cell reader (see :mod:`repro.algebraic.compiler`),
in declaration order — mirroring
:class:`~repro.algebraic.rewriting.RewriteEngine` exactly: the first
entry whose condition holds fires; an exhausted dispatch list is a
sufficient-completeness failure.  Cells whose dispatch is *sealed* by
an unconditional entry and writes nothing (pure frame cells) are
pruned; cells with an unsealed dispatch are kept even when they never
write, so the incompleteness error of the trace semantics is
preserved.

Grounding and closure compilation are two separate stages.
:meth:`UpdatePlanner.ground` produces a :class:`SymbolicPlan` whose
dispatch entries keep the grounded *formulas and terms* (each paired
with its grounding environment and the compiled closure), so plan
consumers that target a representation other than Python closures —
the spec→relational compiler in :mod:`repro.relational` lowers the
same entries to SQL — share one grounding semantics with the serving
runtime and the packed explorer.  :meth:`UpdatePlanner.compile` is now
a thin projection of the symbolic plan onto its closures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.errors import ServingError, SignatureError
from repro.algebraic.compiler import (
    Cell,
    Getter,
    UnsupportedTermError,
    compile_ground_formula,
    compile_ground_term,
)
from repro.algebraic.description import StructuredDescription
from repro.algebraic.spec import AlgebraicSpec
from repro.logic import formulas as fm
from repro.logic.sorts import STATE
from repro.logic.terms import App, Term, Var

__all__ = [
    "GroundEntry",
    "GroundExpr",
    "SymbolicPlan",
    "UpdatePlan",
    "UpdatePlanner",
]

Value = Hashable

#: A grounding environment, as a sorted tuple of ``(variable, value)``
#: pairs (hashable so symbolic plans stay frozen).
Env = tuple[tuple[Var, str], ...]


def _freeze_env(env: dict[Var, str]) -> Env:
    return tuple(sorted(env.items(), key=lambda item: item[0].name))


@dataclass(frozen=True)
class GroundExpr:
    """A grounded formula or term with its compiled closure.

    Attributes:
        node: the original L2 formula (conditions, preconditions) or
            term (right-hand sides) — ground under ``env``.
        env: values for every non-state free variable of ``node``.
        closure: the compiled evaluation closure over a cell reader.
        reads: the store cells the closure may touch.
    """

    node: object
    env: Env
    closure: Callable[[Getter], Value]
    reads: frozenset[Cell] = frozenset()


@dataclass(frozen=True)
class GroundEntry:
    """One symbolic dispatch entry of a candidate write cell.

    Attributes:
        condition: the grounded firing condition; ``None`` means
            unconditional (no condition, or one that constant-folded
            to True at grounding time — statically-False conditions
            are dropped entirely).
        rhs: the grounded right-hand side; ``None`` marks an identity
            (frame/otherwise) entry that writes nothing.
        index: the equation's index in ``spec.equations``.
    """

    condition: GroundExpr | None
    rhs: GroundExpr | None
    index: int


@dataclass(frozen=True)
class SymbolicPlan:
    """The grounded (but representation-independent) form of one
    update instance: what :class:`UpdatePlan` compiles to closures and
    :mod:`repro.relational.lowering` compiles to SQL.

    Attributes:
        update: the update function's name.
        params: its ground parameter values.
        actions: per candidate write cell, the ordered symbolic
            dispatch entries (declaration order, trimmed and sealed
            exactly like the closure plan).
        precondition: the grounded admission predicate from the
            update's structured description, or ``None``.
    """

    update: str
    params: tuple[str, ...]
    actions: tuple[tuple[Cell, tuple[GroundEntry, ...]], ...]
    precondition: GroundExpr | None = None

    @property
    def candidate_cells(self) -> tuple[Cell, ...]:
        """The cells this plan may write (superset of any delta)."""
        return tuple(cell for cell, _ in self.actions)


@dataclass(frozen=True)
class UpdatePlan:
    """The compiled apply program for one ground update instance.

    Attributes:
        update: the update function's name.
        params: its ground parameter values.
        actions: per candidate write cell, the ordered dispatch list of
            ``(condition, rhs, equation index)`` closures;
            ``condition is None`` means unconditional, ``rhs is None``
            means identity (no write); the index names the equation in
            ``spec.equations`` (for fire-set reporting).
        precondition: compiled admission predicate from the update's
            structured description, or ``None`` when the update has no
            precondition (or no description was supplied).
        precondition_reads: cells the precondition may read — the
            witness cells reported when admission fails.
        precondition_text: the precondition formula, printed (for the
            rejection witness).
        fallback: True when the equations fall outside the canonical
            fragment and applying must go through the rewrite engine.
    """

    update: str
    params: tuple[str, ...]
    actions: tuple[
        tuple[
            Cell,
            tuple[
                tuple[
                    Callable[[Getter], bool] | None,
                    Callable[[Getter], Value] | None,
                    int,
                ],
                ...,
            ],
        ],
        ...,
    ]
    precondition: Callable[[Getter], bool] | None
    precondition_reads: frozenset[Cell]
    precondition_text: str = ""
    fallback: bool = False

    @property
    def candidate_cells(self) -> tuple[Cell, ...]:
        """The cells this plan may write (superset of any delta)."""
        return tuple(cell for cell, _ in self.actions)

    def fire_sets(self) -> dict[tuple[str, str], frozenset[int]]:
        """The equations that *could* fire per ``(query, update)``
        dispatch cell — the static counterpart of the coverage layer's
        per-equation fire sets, used to key delta exploration."""
        out: dict[tuple[str, str], set[int]] = {}
        for (query, _values), entries in self.actions:
            bucket = out.setdefault((query, self.update), set())
            for _condition, _rhs, index in entries:
                bucket.add(index)
        return {key: frozenset(value) for key, value in out.items()}


def _is_identity(lhs: App, rhs: Term) -> bool:
    """True iff ``rhs`` is the lhs query applied to the same parameter
    pattern at the bare pre-state variable (a frame/otherwise branch).
    Terms are interned, so pattern equality is object comparison."""
    return (
        isinstance(rhs, App)
        and rhs.symbol == lhs.symbol
        and rhs.args[:-1] == lhs.args[:-1]
        and isinstance(rhs.args[-1], Var)
        and rhs.args[-1].sort == STATE
    )


class UpdatePlanner:
    """Compiles :class:`UpdatePlan` objects for one specification.

    Args:
        spec: the algebraic specification whose Q-equations define the
            cell transitions.
        descriptions: optional structured descriptions; when given,
            each update's precondition is compiled into the plan's
            admission predicate (the serving runtime passes them, the
            explorer — which follows raw trace semantics — does not).
    """

    def __init__(
        self,
        spec: AlgebraicSpec,
        descriptions: list[StructuredDescription] | None = None,
    ):
        self.spec = spec
        self.signature = spec.signature
        self._descriptions = {
            d.update: d for d in (descriptions or [])
        }
        self._equals_hook = self._make_equals_hook()
        self._equation_index = {
            id(equation): index
            for index, equation in enumerate(spec.equations)
        }

    # ------------------------------------------------------------------
    # parameter validation
    # ------------------------------------------------------------------
    def check_params(
        self, update: str, params: tuple[str, ...]
    ) -> None:
        """Validate an update instance against the signature.

        Raises:
            ServingError: unknown update, wrong arity, or a value
                outside its sort's declared domain.
        """
        try:
            symbol = self.signature.update(update)
        except SignatureError as exc:
            raise ServingError(str(exc)) from None
        sorts = symbol.arg_sorts[:-1]
        if len(params) != len(sorts):
            raise ServingError(
                f"update {update!r} takes {len(sorts)} parameter(s), "
                f"got {len(params)}"
            )
        for value, sort in zip(params, sorts):
            if value not in self.signature.domain(sort):
                raise ServingError(
                    f"{value!r} is not a declared value of sort "
                    f"{sort} (update {update!r})"
                )

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def ground(
        self, update: str, params: tuple[str, ...]
    ) -> SymbolicPlan:
        """Ground one update instance into a :class:`SymbolicPlan`.

        Raises:
            UnsupportedTermError: the equations fall outside the
                canonical fragment (:meth:`compile` catches this and
                returns a ``fallback`` plan instead).
        """
        params = tuple(params)
        self.check_params(update, params)
        precondition = self._ground_precondition(update, params)
        actions = self._ground_actions(update, params)
        return SymbolicPlan(update, params, actions, precondition)

    def compile(
        self, update: str, params: tuple[str, ...]
    ) -> UpdatePlan:
        """Ground and compile one update instance into a plan (the
        ``fallback`` flag marks non-canonical equation sets)."""
        params = tuple(params)
        self.check_params(update, params)
        pre = self._ground_precondition(update, params)
        precondition = pre.closure if pre is not None else None
        pre_reads = pre.reads if pre is not None else frozenset()
        pre_text = str(pre.node) if pre is not None else ""
        try:
            symbolic = self._ground_actions(update, params)
        except UnsupportedTermError:
            return UpdatePlan(
                update,
                params,
                (),
                precondition,
                pre_reads,
                pre_text,
                fallback=True,
            )
        actions = tuple(
            (
                cell,
                tuple(
                    (
                        entry.condition.closure
                        if entry.condition is not None
                        else None,
                        entry.rhs.closure
                        if entry.rhs is not None
                        else None,
                        entry.index,
                    )
                    for entry in entries
                ),
            )
            for cell, entries in symbolic
        )
        return UpdatePlan(
            update, params, actions, precondition, pre_reads, pre_text
        )

    def _make_equals_hook(self):
        signature = self.signature

        def hook(equality: fm.Equals, env: dict[Var, str]):
            lhs, lreads = compile_ground_term(
                equality.lhs, env, signature
            )
            rhs, rreads = compile_ground_term(
                equality.rhs, env, signature
            )
            return (
                lambda get: lhs(get) == rhs(get)
            ), lreads | rreads

        return hook

    def _compile_condition(
        self, condition: fm.Formula, env: dict[Var, str]
    ):
        return compile_ground_formula(
            condition,
            env,
            domain_of=self.signature.domain,
            atom_hook=None,
            equals_hook=self._equals_hook,
        )

    def _ground_precondition(
        self, update: str, params: tuple[str, ...]
    ) -> GroundExpr | None:
        description = self._descriptions.get(update)
        if description is None or description.precondition is None:
            return None
        env = dict(zip(description.params, params))
        closure, reads = self._compile_condition(
            description.precondition, env
        )
        return GroundExpr(
            description.precondition, _freeze_env(env), closure, reads
        )

    def _ground_actions(self, update: str, params: tuple[str, ...]):
        """Ground every Q-equation of ``update`` at ``params`` into the
        per-cell symbolic dispatch lists."""
        signature = self.signature
        per_cell: dict[Cell, list[GroundEntry]] = {}
        for query_symbol in signature.queries:
            equations = self.spec.equations_for(
                query_symbol.name, update
            )
            if not equations:
                raise UnsupportedTermError(
                    f"no equation defines {query_symbol.name} over "
                    f"{update}"
                )
            for equation in equations:
                self._ground_equation(
                    equation, params, per_cell
                )
        actions = []
        for cell, entries in per_cell.items():
            live = []
            for entry in entries:
                live.append(entry)
                if entry.condition is None:
                    break  # later entries are dead
            # Prune pure frame cells — but only when the dispatch is
            # sealed by an unconditional entry: an unsealed identity
            # cell can still fail to fire, and that incompleteness
            # must surface exactly like the trace semantics.
            writes = any(entry.rhs is not None for entry in live)
            sealed = live and live[-1].condition is None
            if writes or not sealed:
                actions.append((cell, tuple(live)))
        return tuple(actions)

    def _ground_equation(
        self,
        equation,
        params: tuple[str, ...],
        per_cell: dict[Cell, list[GroundEntry]],
    ) -> None:
        lhs = equation.lhs
        if not isinstance(lhs, App):
            raise UnsupportedTermError("non-application lhs")
        state_pat = lhs.args[-1]
        if not isinstance(state_pat, App) or not isinstance(
            state_pat.args[-1], Var
        ):
            raise UnsupportedTermError("non-canonical state pattern")

        # Bind the update-argument pattern against the actual params.
        binding: dict[Var, str] = {}
        for pattern, value in zip(state_pat.args[:-1], params):
            if isinstance(pattern, Var):
                bound = binding.get(pattern)
                if bound is None:
                    binding[pattern] = value
                elif bound != value:
                    return  # repeated variable disagrees: no match
            elif isinstance(pattern, App) and not pattern.args:
                if pattern.symbol.name != value:
                    return  # constant pattern differs: no match
            else:
                raise UnsupportedTermError(
                    "nested term in update-argument position"
                )

        # Enumerate the query-argument pattern over unbound variables.
        free: list[Var] = []
        for pattern in lhs.args[:-1]:
            if isinstance(pattern, Var):
                if pattern not in binding and pattern not in free:
                    free.append(pattern)
            elif not (
                isinstance(pattern, App) and not pattern.args
            ):
                raise UnsupportedTermError(
                    "nested term in query-argument position"
                )
        domains = [self.signature.domain(v.sort) for v in free]
        identity = _is_identity(lhs, equation.rhs)
        query_name = lhs.symbol.name
        eq_index = self._equation_index.get(id(equation), -1)
        for choice in itertools.product(*domains):
            env = dict(binding)
            env.update(zip(free, choice))
            values = tuple(
                env[p] if isinstance(p, Var) else p.symbol.name
                for p in lhs.args[:-1]
            )
            cell: Cell = (query_name, values)
            entries = per_cell.setdefault(cell, [])
            if entries and entries[-1].condition is None:
                continue  # dispatch already sealed by an
                # unconditional entry
            condition = None
            if equation.condition is not None:
                closure, reads = self._compile_condition(
                    equation.condition, env
                )
                if not reads:
                    if not closure(None):
                        continue  # statically never fires here
                    # statically always fires: unconditional entry
                else:
                    condition = GroundExpr(
                        equation.condition,
                        _freeze_env(env),
                        closure,
                        reads,
                    )
            if identity:
                rhs = None
            else:
                rhs_closure, rhs_reads = compile_ground_term(
                    equation.rhs, env, self.signature
                )
                rhs = GroundExpr(
                    equation.rhs,
                    _freeze_env(env),
                    rhs_closure,
                    rhs_reads,
                )
            entries.append(GroundEntry(condition, rhs, eq_index))

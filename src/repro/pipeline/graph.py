"""The check graph: dependency validation and subgraph selection.

Checks are declared in an order that is required to be topologically
consistent (every dependency precedes its dependents), so the
deterministic schedule *is* the declaration order — the property the
byte-identical report/stats guarantees lean on.  Selection closes
``--only`` requests over their dependencies and closes ``--skip``
requests over their dependents, so a selected subgraph is always
runnable.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import SpecificationError
from repro.pipeline.check import Check

__all__ = ["CheckGraph"]


class CheckGraph:
    """An ordered, validated collection of :class:`Check` nodes.

    Args:
        checks: the nodes, in topologically consistent declaration
            order.

    Raises:
        SpecificationError: on duplicate names, unknown dependencies,
            or a dependency declared after its dependent (which would
            make the declaration order non-topological).
    """

    def __init__(self, checks: Iterable[Check]):
        self.checks: dict[str, Check] = {}
        for check in checks:
            if check.name in self.checks:
                raise SpecificationError(
                    f"duplicate check name {check.name!r}"
                )
            for dep in check.deps:
                if dep not in self.checks:
                    raise SpecificationError(
                        f"check {check.name!r} depends on {dep!r}, "
                        "which is unknown or declared later"
                    )
            self.checks[check.name] = check

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Check]:
        return iter(self.checks.values())

    def __contains__(self, name: str) -> bool:
        return name in self.checks

    def __getitem__(self, name: str) -> Check:
        return self.checks[name]

    @property
    def names(self) -> tuple[str, ...]:
        """Every check name, in schedule (declaration) order."""
        return tuple(self.checks)

    def dependents(self, name: str) -> tuple[str, ...]:
        """Names of checks that (directly) depend on ``name``."""
        return tuple(
            check.name
            for check in self.checks.values()
            if name in check.deps
        )

    # ------------------------------------------------------------------
    def _close_over_deps(self, names: set[str]) -> set[str]:
        closed: set[str] = set()
        frontier = list(names)
        while frontier:
            current = frontier.pop()
            if current in closed:
                continue
            closed.add(current)
            frontier.extend(self.checks[current].deps)
        return closed

    def _close_over_dependents(self, names: set[str]) -> set[str]:
        closed: set[str] = set()
        frontier = list(names)
        while frontier:
            current = frontier.pop()
            if current in closed:
                continue
            closed.add(current)
            frontier.extend(self.dependents(current))
        return closed

    def select(
        self,
        only: Iterable[str] | None = None,
        skip: Iterable[str] | None = None,
    ) -> tuple[str, ...]:
        """Resolve a subgraph selection to schedule order.

        ``only`` keeps the named checks plus everything they depend
        on; ``skip`` removes the named checks plus everything that
        depends on them.  ``skip`` wins over ``only``.

        Raises:
            SpecificationError: if a name is unknown, or the selection
                is empty.
        """
        only_set = set(only) if only else None
        skip_set = set(skip) if skip else set()
        for name in (only_set or set()) | skip_set:
            if name not in self.checks:
                raise SpecificationError(
                    f"unknown check {name!r}; known checks: "
                    + ", ".join(self.checks)
                )
        wanted = (
            self._close_over_deps(only_set)
            if only_set is not None
            else set(self.checks)
        )
        wanted -= self._close_over_dependents(skip_set)
        selection = tuple(
            name for name in self.checks if name in wanted
        )
        if not selection:
            raise SpecificationError(
                "the --only/--skip selection leaves no checks to run"
            )
        return selection

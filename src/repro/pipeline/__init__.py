"""The declarative verification pipeline.

The paper's methodology is a fixed repertoire of verification
obligations — the Section 4.4 plan (a)–(d), the inductive proof of
(b), level-2 observational congruence, W-grammar recognition of the
schema, the Section 5.4 equation-validity check, and the direct
cross-level observation agreement.  This package turns that repertoire
into data:

* :mod:`repro.pipeline.check` — a :class:`~repro.pipeline.check.Check`
  is one obligation: a name, declared fingerprint inputs, dependency
  edges, and a runner.
* :mod:`repro.pipeline.graph` — a
  :class:`~repro.pipeline.graph.CheckGraph` validates the dependency
  structure and selects subgraphs (``--only``/``--skip`` closure).
* :mod:`repro.pipeline.scheduler` — the
  :class:`~repro.pipeline.scheduler.Scheduler` executes a selection in
  deterministic topological order, supports fail-fast vs run-all
  policies and per-check parameter overrides (budgets), and fans
  independent serial checks out through
  :mod:`repro.parallel.executor`.
* :mod:`repro.pipeline.fingerprint` — stable content fingerprints over
  specifications, carriers, schemas, and check parameters.
* :mod:`repro.pipeline.cache` — the content-addressed
  :class:`~repro.pipeline.cache.ResultCache`: an unchanged check is a
  cache hit, so re-verifying a touched application only re-runs the
  invalidated subgraph.
* :mod:`repro.pipeline.nodes` — the standard check graph of a
  :class:`~repro.core.framework.DesignFramework`.
"""

from repro.pipeline.cache import ResultCache
from repro.pipeline.check import Check, CheckRun
from repro.pipeline.fingerprint import (
    combine_fingerprint,
    framework_parts,
)
from repro.pipeline.graph import CheckGraph
from repro.pipeline.nodes import build_framework_graph
from repro.pipeline.scheduler import (
    PipelineContext,
    PipelineResult,
    Scheduler,
)

__all__ = [
    "Check",
    "CheckRun",
    "CheckGraph",
    "ResultCache",
    "Scheduler",
    "PipelineContext",
    "PipelineResult",
    "build_framework_graph",
    "framework_parts",
    "combine_fingerprint",
]

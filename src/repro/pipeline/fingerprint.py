"""Stable content fingerprints for pipeline inputs.

A fingerprint is a SHA-256 digest over a canonical JSON rendering of
an input's *content* — the axioms of an information-level theory, the
equations and parameter domains of an algebraic specification, the
concrete schema text, the carriers, a check's parameters.  Equal
content yields equal digests across processes and sessions, which is
what lets :class:`~repro.pipeline.cache.ResultCache` address results
by content: editing any spec, carrier, or parameter changes exactly
the fingerprints (and hence invalidates exactly the cached results)
of the checks that declare that input.

Interpretation and representation maps fingerprint by ``repr``; the
shipped classes render their full content, so explicit maps cache
exactly like homonym ones.  A third-party map with only the default
object repr (which embeds a memory address) simply never hits the
cache — a safe degradation, never a stale hit.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

__all__ = [
    "digest",
    "describe_signature",
    "fingerprint_information",
    "fingerprint_algebraic",
    "fingerprint_schema",
    "fingerprint_carriers",
    "fingerprint_mapping",
    "framework_parts",
    "combine_fingerprint",
]

#: Bump when the fingerprint payload shape changes; old cache entries
#: then simply stop matching (a miss, never a wrong hit).
FINGERPRINT_VERSION = 1


def digest(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def describe_signature(signature) -> dict:
    """A content dictionary of an
    :class:`~repro.algebraic.signature.AlgebraicSignature`: parameter
    sorts with their value domains, and every query/update/initial
    symbol with its full sort profile."""
    return {
        "name": signature.name,
        "domains": {
            sort.name: list(signature.domain(sort))
            for sort in signature.parameter_sorts
        },
        "queries": [str(symbol) for symbol in signature.queries],
        "updates": [str(symbol) for symbol in signature.updates],
        "initials": [str(symbol) for symbol in signature.initials],
    }


def fingerprint_information(information) -> str:
    """Fingerprint of a T1 theory: db-predicates and all axioms (the
    full ``str`` rendering lists both constraint classes)."""
    return digest({"kind": "information", "text": str(information)})


def fingerprint_algebraic(algebraic) -> str:
    """Fingerprint of a T2 specification: the signature content plus
    every conditional equation (label, condition, both sides)."""
    return digest(
        {
            "kind": "algebraic",
            "signature": describe_signature(algebraic.signature),
            "equations": [str(eq) for eq in algebraic.equations],
        }
    )


def fingerprint_schema(schema, schema_source: str | None) -> str:
    """Fingerprint of a T3 schema: the concrete source when available
    (what the W-grammar reads), else the parsed schema's rendering."""
    return digest(
        {
            "kind": "schema",
            "text": schema_source
            if schema_source is not None
            else str(schema),
        }
    )


def fingerprint_carriers(carriers: Mapping) -> str:
    """Fingerprint of the finite carriers: sort names with their value
    lists, order-insensitive across sorts, order-sensitive within a
    carrier (enumeration order is observable in reports)."""
    return digest(
        {
            "kind": "carriers",
            "carriers": sorted(
                (sort.name, list(values))
                for sort, values in carriers.items()
            ),
        }
    )


def fingerprint_mapping(mapping, default_name: str) -> str:
    """Fingerprint of an interpretation/representation map.

    ``None`` means the canonical homonym map and fingerprints stably;
    a custom map is fingerprinted by ``repr``.
    :class:`~repro.refinement.interpretation.Interpretation` and
    :class:`~repro.refinement.second_third.RepresentationMap` render
    their full content, so explicit maps (the bank's) cache as well as
    homonym ones; a third-party map with only the default object repr
    embeds a memory address, making the owning check uncacheable —
    safe, never stale.
    """
    if mapping is None:
        return digest({"kind": "mapping", "default": default_name})
    return digest({"kind": "mapping", "repr": repr(mapping)})


def framework_parts(framework) -> dict[str, str]:
    """Per-input fingerprints of one
    :class:`~repro.core.framework.DesignFramework`.

    The keys are what :attr:`repro.pipeline.check.Check.inputs`
    declares; a check's fingerprint combines exactly the parts it
    names, so an edit invalidates only the checks that read the edited
    input.
    """
    return {
        "information": fingerprint_information(framework.information),
        "algebraic": fingerprint_algebraic(framework.algebraic),
        "schema": fingerprint_schema(
            framework.schema, framework.schema_source
        ),
        "carriers": fingerprint_carriers(framework.carriers),
        "interpretation": fingerprint_mapping(
            framework.interpretation, "homonym-interpretation"
        ),
        "representation": fingerprint_mapping(
            framework.representation, "homonym-representation"
        ),
    }


def combine_fingerprint(
    node_name: str,
    parts: Mapping[str, str],
    inputs: tuple[str, ...],
    params: Mapping[str, Any],
) -> str:
    """The content address of one check: its name, the fingerprints of
    its declared inputs, and its parameters."""
    return digest(
        {
            "version": FINGERPRINT_VERSION,
            "node": node_name,
            "inputs": {key: parts[key] for key in inputs},
            "params": dict(params),
        }
    )

"""Content-addressed, incremental verification result cache.

Every cache entry is one JSON file under the cache directory, named
``<check>-<fingerprint-prefix>.json`` and carrying the full
fingerprint, the serialized report, the check's
:class:`~repro.parallel.stats.VerificationStats` records, and its
span-counter totals.  A lookup hits only when the stored format
version and full fingerprint match; anything else — unreadable JSON,
a truncated write, an entry produced by an older format — is treated
as a miss and never raises.

Only *clean* reports are cached: a report carrying witness objects
(violating traces, counterexample snapshots, falsified instances)
re-runs every time, so failure witnesses are always fresh and the
serializers never have to round-trip terms or structures.  The
round-trip invariant the tests pin down: a report rebuilt from its
cache entry renders byte-identically and drives
``FrameworkReport.ok`` identically.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.algebraic.completeness import (
    CompletenessReport,
    CoverageReport,
    TerminationReport,
)
from repro.algebraic.induction import InductionReport
from repro.algebraic.observation import ObservabilityReport
from repro.parallel.stats import VerificationStats
from repro.refinement.first_second import (
    StaticConsistencyReport,
    TransitionConsistencyReport,
)
from repro.refinement.reachability import InclusionReport
from repro.refinement.second_third import SecondToThirdReport

__all__ = ["ResultCache", "serialize_result", "deserialize_result"]

#: Entry format version; bump on any incompatible layout change so
#: stale files stop matching instead of deserializing wrongly.
#: Format 2 added the per-check ``coverage`` payload.
CACHE_FORMAT = 2


# ---------------------------------------------------------------------
# report serializers (clean reports only — no witness objects)
# ---------------------------------------------------------------------
def serialize_result(kind: str, result: Any) -> dict | None:
    """A JSON-portable rendering of a clean report, or ``None`` when
    the report carries witnesses (then it must not be cached)."""
    if kind == "completeness":
        termination, coverage = result.termination, result.coverage
        if (
            termination.non_decreasing_calls
            or termination.cycles
            or coverage.missing_constructors
            or coverage.uncovered
        ):
            return None
        return {
            "termination_ok": termination.ok,
            "structural": termination.structural,
            "coverage_ok": coverage.ok,
            "traces_checked": coverage.traces_checked,
        }
    if kind == "static":
        if result.violations:
            return None
        return {"ok": result.ok, "states_checked": result.states_checked}
    if kind == "inclusion":
        if result.invalid_reachable or result.unreachable_valid:
            return None
        return {
            "reachable_subset_valid": result.reachable_subset_valid,
            "valid_subset_reachable": result.valid_subset_reachable,
            "valid_count": result.valid_count,
            "reachable_count": result.reachable_count,
            "truncated": result.truncated,
        }
    if kind == "transitions":
        if result.violations:
            return None
        return {
            "ok": result.ok,
            "transitions_checked": result.transitions_checked,
        }
    if kind == "induction":
        if result is None:
            return {"skipped": True}
        if result.counterexamples:
            return None
        return {
            "ok": result.ok,
            "base_ok": result.base_ok,
            "step_ok": result.step_ok,
            "states_examined": result.states_examined,
        }
    if kind == "congruence":
        if result.violations:
            return None
        return {
            "ok": result.ok,
            "classes": result.classes,
            "traces_checked": result.traces_checked,
        }
    if kind == "grammar":
        return {"grammar_ok": result}
    if kind in ("second-third", "agreement"):
        if result.failures:
            return None
        return {
            "ok": result.ok,
            "states_checked": result.states_checked,
            "instances_checked": result.instances_checked,
        }
    raise ValueError(f"unknown cache kind {kind!r}")


def deserialize_result(kind: str, payload: dict) -> Any:
    """Rebuild the report object a clean cache entry describes."""
    if kind == "completeness":
        return CompletenessReport(
            termination=TerminationReport(
                ok=payload["termination_ok"],
                structural=payload["structural"],
            ),
            coverage=CoverageReport(
                ok=payload["coverage_ok"],
                traces_checked=payload["traces_checked"],
            ),
        )
    if kind == "static":
        return StaticConsistencyReport(
            ok=payload["ok"], states_checked=payload["states_checked"]
        )
    if kind == "inclusion":
        return InclusionReport(
            reachable_subset_valid=payload["reachable_subset_valid"],
            valid_subset_reachable=payload["valid_subset_reachable"],
            valid_count=payload["valid_count"],
            reachable_count=payload["reachable_count"],
            truncated=payload["truncated"],
        )
    if kind == "transitions":
        return TransitionConsistencyReport(
            ok=payload["ok"],
            transitions_checked=payload["transitions_checked"],
        )
    if kind == "induction":
        if payload.get("skipped"):
            return None
        return InductionReport(
            ok=payload["ok"],
            base_ok=payload["base_ok"],
            step_ok=payload["step_ok"],
            states_examined=payload["states_examined"],
        )
    if kind == "congruence":
        return ObservabilityReport(
            ok=payload["ok"],
            classes=payload["classes"],
            traces_checked=payload["traces_checked"],
        )
    if kind == "grammar":
        return payload["grammar_ok"]
    if kind in ("second-third", "agreement"):
        return SecondToThirdReport(
            ok=payload["ok"],
            states_checked=payload["states_checked"],
            instances_checked=payload["instances_checked"],
        )
    raise ValueError(f"unknown cache kind {kind!r}")


# ---------------------------------------------------------------------
# the cache itself
# ---------------------------------------------------------------------
class ResultCache:
    """A directory of content-addressed check results.

    Args:
        root: cache directory (created on first store).

    Attributes:
        hits: lookups that returned an entry this session.
        misses: lookups that found nothing usable.
        stores: entries written this session.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, node: str, fingerprint: str) -> Path:
        return self.root / f"{node}-{fingerprint[:32]}.json"

    # ------------------------------------------------------------------
    def load(self, node: str, fingerprint: str) -> dict | None:
        """The stored entry for ``(node, fingerprint)``, or ``None``.

        Corrupted, truncated, stale-format, or fingerprint-mismatched
        files are ignored (a miss), never fatal.
        """
        path = self._path(node, fingerprint)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("format") != CACHE_FORMAT
            or entry.get("node") != node
            or entry.get("fingerprint") != fingerprint
        ):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(
        self,
        node: str,
        fingerprint: str,
        kind: str | None,
        report_payload: dict | None,
        stats_parts: tuple[VerificationStats, ...] = (),
        counters: dict[str, int] | None = None,
        wall_time: float = 0.0,
        coverage: dict | None = None,
    ) -> None:
        """Persist one check outcome (atomic write via rename).

        A failed write (read-only directory, disk full) is swallowed:
        the cache is an accelerator, never a correctness dependency.
        """
        entry = {
            "format": CACHE_FORMAT,
            "node": node,
            "fingerprint": fingerprint,
            "kind": kind,
            "report": report_payload,
            "stats": [part.to_dict() for part in stats_parts],
            "counters": counters,
            "wall_time": wall_time,
            "coverage": coverage,
        }
        path = self._path(node, fingerprint)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            temp = path.with_suffix(".json.tmp")
            with open(temp, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, indent=2)
                handle.write("\n")
            os.replace(temp, path)
            self.stores += 1
        except OSError:
            pass

    # ------------------------------------------------------------------
    # named artifacts (non-report blobs, e.g. the delta explorer's
    # edge memo; the name itself carries the content key)
    # ------------------------------------------------------------------
    def load_artifact(self, name: str) -> dict | None:
        """The stored artifact payload for ``name``, or ``None``.

        Same tolerance as :meth:`load`: anything unreadable, stale, or
        mislabeled is a miss, never fatal.
        """
        path = self.root / f"{name}.json"
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("format") != CACHE_FORMAT
            or entry.get("node") != name
            or entry.get("kind") != "artifact"
            or not isinstance(entry.get("artifact"), dict)
        ):
            return None
        return entry["artifact"]

    def store_artifact(self, name: str, payload: dict) -> None:
        """Persist a named artifact blob (atomic write via rename;
        failures are swallowed like :meth:`store`)."""
        entry = {
            "format": CACHE_FORMAT,
            "node": name,
            "kind": "artifact",
            "artifact": payload,
        }
        path = self.root / f"{name}.json"
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            temp = path.with_suffix(".json.tmp")
            with open(temp, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, indent=2)
                handle.write("\n")
            os.replace(temp, path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    @staticmethod
    def entry_stats(entry: dict) -> tuple[VerificationStats, ...]:
        """The replayed stats records of a loaded entry."""
        return tuple(
            VerificationStats.from_dict(part)
            for part in entry.get("stats", ())
        )

    @staticmethod
    def entry_counters(entry: dict) -> dict[str, int] | None:
        """The replayed span-counter totals of a loaded entry."""
        counters = entry.get("counters")
        if counters is None:
            return None
        return {str(name): int(value) for name, value in counters.items()}

    @staticmethod
    def entry_coverage(entry: dict) -> dict | None:
        """The replayed per-check coverage payload of a loaded entry
        (``None`` when the entry was stored with coverage off)."""
        coverage = entry.get("coverage")
        if not isinstance(coverage, dict):
            return None
        return coverage

    # ------------------------------------------------------------------
    # maintenance (the ``repro cache`` subcommand)
    # ------------------------------------------------------------------
    def entries(self) -> list[dict]:
        """Every readable entry file under the cache root, as
        ``{"path", "node", "format", "size", "has_coverage"}`` records
        sorted by file name.  Unreadable files get ``format: None``."""
        if not self.root.is_dir():
            return []
        records = []
        for path in sorted(self.root.glob("*.json")):
            record: dict[str, Any] = {
                "path": str(path),
                "size": path.stat().st_size,
                "node": None,
                "format": None,
                "has_coverage": False,
            }
            try:
                with open(path, encoding="utf-8") as handle:
                    entry = json.load(handle)
                if isinstance(entry, dict):
                    record["node"] = entry.get("node")
                    record["format"] = entry.get("format")
                    record["has_coverage"] = isinstance(
                        entry.get("coverage"), dict
                    )
            except (OSError, ValueError):
                pass
            records.append(record)
        return records

    def summary(self) -> dict:
        """Aggregate statistics over the cache directory: entry and
        byte counts, per-node breakdown, and how many entries are
        stale (unreadable or from an older format version)."""
        records = self.entries()
        by_node: dict[str, int] = {}
        stale = 0
        with_coverage = 0
        for record in records:
            if record["format"] != CACHE_FORMAT:
                stale += 1
            else:
                node = str(record["node"])
                by_node[node] = by_node.get(node, 0) + 1
                if record["has_coverage"]:
                    with_coverage += 1
        return {
            "path": str(self.root),
            "entries": len(records),
            "total_bytes": sum(r["size"] for r in records),
            "format": CACHE_FORMAT,
            "stale": stale,
            "with_coverage": with_coverage,
            "by_node": dict(sorted(by_node.items())),
        }

    def prune(self, everything: bool = False) -> int:
        """Delete stale entries (unreadable or older-format files);
        with ``everything=True`` delete every entry.  Returns the
        number of files removed; removal failures are skipped."""
        removed = 0
        for record in self.entries():
            if everything or record["format"] != CACHE_FORMAT:
                try:
                    os.remove(record["path"])
                    removed += 1
                except OSError:
                    pass
        return removed

"""``repro watch``: incremental re-verification on file change.

The watch loop closes the edit-verify feedback cycle the PR-4 result
cache made cheap.  It polls a specification's source files (by
``stat``: mtime and size — no inotify dependency), and on every
change rebuilds the framework, re-fingerprints its inputs, and runs
the pipeline against a :class:`~repro.pipeline.cache.ResultCache`:
only the checks whose declared fingerprint parts the edit actually
invalidated re-run; everything else replays its stored result and
stats.  After each cycle the session streams one outcome line per
check, marked ``ran`` or ``hit``, plus which fingerprint parts
changed — so an equation tweak visibly re-runs the algebraic subgraph
while the schema-only grammar check stays cached.

Two target forms are accepted:

``courses`` (an application name)
    The module under :mod:`repro.applications` is watched and
    reloaded in place; the CLI factory rebuilds the framework from
    the reloaded module.

``path/to/spec.py:factory``
    An arbitrary Python file defining a zero-argument
    :class:`~repro.core.framework.DesignFramework` factory.  Every
    cycle loads the file fresh under a unique module name, so stale
    definitions never leak between cycles.
"""

from __future__ import annotations

import importlib
import importlib.util
import sys
import time
from pathlib import Path
from typing import Callable, TextIO

from repro.errors import SpecificationError
from repro.obs.telemetry import TEL_STATE as _TEL, activate_telemetry
from repro.pipeline.cache import ResultCache
from repro.pipeline.fingerprint import framework_parts

__all__ = ["WatchSession", "resolve_target", "watch"]


class WatchTarget:
    """A resolved watch target: the files to poll and a builder that
    produces a fresh :class:`DesignFramework` from their current
    contents."""

    def __init__(
        self,
        label: str,
        paths: tuple[Path, ...],
        build: Callable[[], "object"],
    ):
        self.label = label
        self.paths = paths
        self.build = build


def _resolve_application(name: str) -> WatchTarget:
    from repro.cli import APPLICATIONS

    factory = APPLICATIONS[name]
    module = importlib.import_module(f"repro.applications.{name}")
    module_file = getattr(module, "__file__", None)
    if module_file is None:  # pragma: no cover - frozen interpreters
        raise SpecificationError(
            f"application module {module.__name__!r} has no source "
            f"file to watch"
        )

    def build():
        # Reload in place: the factory's own imports then see the
        # edited definitions.
        importlib.reload(module)
        return factory()

    return WatchTarget(name, (Path(module_file),), build)


def _resolve_spec_file(spec: str) -> WatchTarget:
    path_text, _, factory_name = spec.rpartition(":")
    path = Path(path_text)
    if not path.is_file():
        raise SpecificationError(
            f"watch target {spec!r}: no such file {path_text!r}"
        )
    serial = iter(range(1_000_000_000))

    def build():
        # A unique module name per cycle: definitions from an earlier
        # version of the file must never shadow the edited ones.
        module_name = f"_repro_watch_{path.stem}_{next(serial)}"
        module_spec = importlib.util.spec_from_file_location(
            module_name, path
        )
        if module_spec is None or module_spec.loader is None:
            raise SpecificationError(
                f"cannot load spec file {path_text!r}"
            )
        module = importlib.util.module_from_spec(module_spec)
        # Registered so classes the spec defines stay importable
        # (pickling a context that references them needs the module).
        sys.modules[module_name] = module
        module_spec.loader.exec_module(module)
        factory = getattr(module, factory_name, None)
        if not callable(factory):
            raise SpecificationError(
                f"{path_text!r} has no callable {factory_name!r}"
            )
        return factory()

    return WatchTarget(spec, (path,), build)


def resolve_target(target: str) -> WatchTarget:
    """Resolve a CLI watch target (application name or
    ``file.py:factory``) into a :class:`WatchTarget`."""
    from repro.cli import APPLICATIONS

    if target in APPLICATIONS:
        return _resolve_application(target)
    if ":" in target:
        return _resolve_spec_file(target)
    raise SpecificationError(
        f"unknown watch target {target!r}: expected one of "
        f"{', '.join(APPLICATIONS)} or FILE.py:FACTORY"
    )


def _snapshot(paths: tuple[Path, ...]) -> dict[str, tuple[int, int]]:
    """``{path: (mtime_ns, size)}`` for every watched file that
    currently exists (a vanished file simply drops out and reappears
    as a change when rewritten — editors replace files via rename)."""
    snapshot: dict[str, tuple[int, int]] = {}
    for path in paths:
        try:
            stat = path.stat()
        except OSError:
            continue
        snapshot[str(path)] = (stat.st_mtime_ns, stat.st_size)
    return snapshot


class WatchSession:
    """The verification side of the watch loop.

    Separated from the polling loop so tests (and other harnesses)
    can drive cycles directly: :meth:`poll` answers "did the watched
    files change since the last cycle", :meth:`run_cycle` rebuilds
    the framework and verifies it through the shared cache, printing
    one ``ran``/``hit`` line per check.
    """

    def __init__(
        self,
        target: WatchTarget,
        cache: ResultCache,
        depth: int = 2,
        workers: int = 1,
        out: TextIO | None = None,
    ):
        self.target = target
        self.cache = cache
        self.depth = depth
        self.workers = workers
        self.out = out if out is not None else sys.stdout
        self.cycles = 0
        self.last_ok: bool | None = None
        self._snapshot = _snapshot(target.paths)
        self._parts: dict[str, str] | None = None

    # ------------------------------------------------------------------
    def _emit(self, line: str) -> None:
        print(line, file=self.out, flush=True)

    def poll(self) -> bool:
        """True iff a watched file changed since the last snapshot
        (the snapshot updates only when a cycle runs)."""
        return _snapshot(self.target.paths) != self._snapshot

    def run_cycle(self) -> bool:
        """Rebuild, fingerprint, verify through the cache, and stream
        the per-check outcome lines.  Returns the cycle's verdict
        (build errors count as a failed cycle but keep the session
        alive — the next edit gets its chance)."""
        self._snapshot = _snapshot(self.target.paths)
        self.cycles += 1
        cycle = self.cycles
        started = time.perf_counter()
        try:
            framework = self.target.build()
            parts = framework_parts(framework)
            if self._parts is not None:
                changed = sorted(
                    key
                    for key in set(parts) | set(self._parts)
                    if parts.get(key) != self._parts.get(key)
                )
                self._emit(
                    f"[cycle {cycle}] changed parts: "
                    + (", ".join(changed) if changed else "none")
                )
            else:
                self._emit(f"[cycle {cycle}] initial verification")
            self._parts = parts
            result = framework.verify_pipeline(
                completeness_depth=self.depth,
                congruence_depth=self.depth,
                workers=self.workers,
                cache=self.cache,
            )
        except Exception as exc:
            elapsed = time.perf_counter() - started
            self._emit(
                f"[cycle {cycle}] ERROR {type(exc).__name__}: {exc} "
                f"({elapsed:.2f}s)"
            )
            self.last_ok = False
            return False
        elapsed = time.perf_counter() - started
        ran = hit = 0
        for execution in result.executions:
            status = execution.status
            if status == "hit":
                hit += 1
            elif status == "ran":
                ran += 1
            verdict = "ok" if execution.ok else "FAILED"
            self._emit(
                f"  {execution.name:12s} {status:7s} {verdict}"
            )
        overall = "OK" if result.ok else "FAILED"
        self._emit(
            f"[cycle {cycle}] {overall} — {ran} ran, {hit} cached "
            f"({elapsed:.2f}s)"
        )
        if _TEL.enabled:
            _TEL.telemetry.observe(
                "pipeline.cycle",
                int(elapsed * 1e9),
                counter="pipeline.cycles",
                cycle=cycle,
                ran=ran,
                hit=hit,
                ok=result.ok,
            )
        self.last_ok = result.ok
        return result.ok


def watch(
    target: str,
    cache_dir: str | None = None,
    depth: int = 2,
    workers: int = 1,
    interval: float = 0.5,
    max_cycles: int | None = None,
    timeout: float | None = None,
    once: bool = False,
    out: TextIO | None = None,
) -> int:
    """The ``repro watch`` loop; returns the process exit code (the
    last cycle's verdict: ``0`` ok, ``1`` failed)."""
    import tempfile

    resolved = resolve_target(target)
    limit = 1 if once else max_cycles
    private_dir = None
    if cache_dir is None:
        # A private cache: still incremental within the session, no
        # litter left behind.
        private_dir = tempfile.TemporaryDirectory(prefix="repro-watch-")
        cache_root = Path(private_dir.name)
    else:
        cache_root = Path(cache_dir)
    try:
        # Scoped, not global: the watch loop records per-check and
        # per-cycle histograms for its own lifetime, then restores
        # whatever telemetry state the caller had.
        with activate_telemetry():
            session = WatchSession(
                resolved,
                ResultCache(cache_root),
                depth=depth,
                workers=workers,
                out=out,
            )
            session._emit(
                f"watching {resolved.label} "
                f"({', '.join(str(p) for p in resolved.paths)}; "
                f"cache: {cache_root})"
            )
            session.run_cycle()
            deadline = (
                time.monotonic() + timeout
                if timeout is not None
                else None
            )
            try:
                while (limit is None or session.cycles < limit) and (
                    deadline is None or time.monotonic() < deadline
                ):
                    time.sleep(max(0.01, interval))
                    if session.poll():
                        session.run_cycle()
            except KeyboardInterrupt:
                pass
            return 0 if session.last_ok else 1
    finally:
        if private_dir is not None:
            private_dir.cleanup()

"""The standard check graph of a :class:`DesignFramework`.

One :class:`~repro.pipeline.check.Check` per verification obligation
of the paper's methodology, with the dependency structure made
explicit: the observational state graph is a *resource node*
(``explore``) that checks (b)–(d) consume, while the remaining
obligations are independent of it and of each other.  The declaration
order reproduces the old monolithic ``verify()`` execution order
exactly, so the deterministic schedule — and with it every report,
stats record, and rewrite-cache trajectory — is unchanged.

Runner functions are module-level so fan-out nodes survive ``fork``
into :mod:`repro.parallel.executor` workers.
"""

from __future__ import annotations

import time

from repro.algebraic.completeness import check_sufficient_completeness
from repro.algebraic.exploration import edge_artifact_name
from repro.algebraic.observation import check_congruence
from repro.errors import SpecificationError, WGrammarError
from repro.obs.coverage import COV_STATE, state_graph_census
from repro.parallel.stats import StatsSink, VerificationStats, WorkerStats
from repro.pipeline.check import Check, CheckRun
from repro.pipeline.graph import CheckGraph
from repro.refinement.first_second import (
    check_static_consistency,
    check_transition_consistency,
    prove_static_consistency,
)
from repro.refinement.reachability import compare_valid_reachable
from repro.refinement.second_third import (
    check_agreement,
    check_refinement as check_second_third,
)
from repro.wgrammar.rpr_grammar import check_schema_source

__all__ = ["build_framework_graph"]


# ---------------------------------------------------------------------
# runners — run(ctx, params) -> CheckRun
# ---------------------------------------------------------------------
def _run_explore(ctx, params) -> CheckRun:
    """Materialize the reachable observational state graph (the
    resource checks (b)–(d) read).

    When a result cache is attached, the previous run's edge artifact
    is threaded into the serial packed explorer so an equation edit
    re-explores only the affected frontier (``verify --cache-dir``
    gets delta exploration for free); the refreshed artifact is stored
    back after the run.
    """
    sink = StatsSink()
    cache = ctx.resources.get("result_cache")
    artifact_name = None
    edge_cache = None
    if cache is not None and params["workers"] <= 1:
        artifact_name = edge_artifact_name(ctx.algebra.signature)
        edge_cache = cache.load_artifact(artifact_name)
    graph = ctx.algebra.explore(
        max_states=params["max_states"],
        workers=params["workers"],
        stats=sink,
        edge_cache=edge_cache,
    )
    ctx.resources["graph"] = graph
    if artifact_name is not None and graph.artifact is not None:
        cache.store_artifact(artifact_name, graph.artifact)
    if COV_STATE.enabled:
        # The census reads the merged graph, which is identical at
        # every worker count, so the recorded curve is deterministic.
        COV_STATE.recorder.record_explore(state_graph_census(graph))
    return CheckRun(result=graph, stats_parts=tuple(sink.records))


def _run_completeness(ctx, params) -> CheckRun:
    """Section 4.4a: sufficient completeness."""
    sink = StatsSink()
    report = check_sufficient_completeness(
        ctx.framework.algebraic,
        depth=params["depth"],
        workers=params["workers"],
        stats=sink,
    )
    return CheckRun(result=report, stats_parts=tuple(sink.records))


def _run_static(ctx, params) -> CheckRun:
    """Section 4.4b: every reachable state is valid."""
    sink = StatsSink()
    framework = ctx.framework
    report = check_static_consistency(
        framework.information,
        framework.carriers,
        ctx.algebra,
        ctx.interpretation,
        ctx.resources["graph"],
        workers=params["workers"],
        stats=sink,
    )
    return CheckRun(result=report, stats_parts=tuple(sink.records))


def _run_inclusion(ctx, params) -> CheckRun:
    """Sections 4.4b+c: the G = V comparison."""
    sink = StatsSink()
    framework = ctx.framework
    report = compare_valid_reachable(
        framework.information,
        framework.carriers,
        ctx.algebra,
        ctx.interpretation,
        ctx.resources["graph"],
        workers=params["workers"],
        stats=sink,
    )
    return CheckRun(result=report, stats_parts=tuple(sink.records))


def _run_transitions(ctx, params) -> CheckRun:
    """Section 4.4d: transition consistency."""
    sink = StatsSink()
    framework = ctx.framework
    report = check_transition_consistency(
        framework.information,
        framework.carriers,
        ctx.algebra,
        ctx.interpretation,
        ctx.resources["graph"],
        workers=params["workers"],
        stats=sink,
    )
    return CheckRun(result=report, stats_parts=tuple(sink.records))


def _run_induction(ctx, params) -> CheckRun:
    """Section 4.4b as the paper proves it: by structural induction
    (skipped when the abstract space exceeds the bound)."""
    framework = ctx.framework
    try:
        report = prove_static_consistency(
            framework.information,
            framework.carriers,
            framework.algebraic,
            framework.interpretation,
            max_abstract_states=params["max_states"],
        )
    except SpecificationError:
        # Abstract space exceeds the bound: the check declines.
        return CheckRun(result=None, skipped=True)
    return CheckRun(result=report)


def _run_congruence(ctx, params) -> CheckRun:
    """Level 2: observational equality is a congruence."""
    report = check_congruence(ctx.algebra, depth=params["depth"])
    return CheckRun(result=report)


def _run_grammar(ctx, params) -> CheckRun:
    """Level 3: the schema source is generated by the RPR W-grammar.

    The recognizer's step/memo counters land in a ``grammar`` stats
    record shaped like every other check's, so ``--stats`` and
    ``--stats-json`` finally see this check too.
    """
    source = ctx.framework.schema_source
    if source is None:
        return CheckRun(result=None, skipped=True)
    counters: dict = {}
    started = time.perf_counter()
    try:
        accepted = check_schema_source(
            source, max_steps=params["max_steps"], counters=counters
        )
    except WGrammarError:
        # Unsupported constructs or budget exhausted: skip, as the
        # monolithic verify() always did.
        return CheckRun(result=None, skipped=True)
    wall = time.perf_counter() - started
    record = WorkerStats(
        worker=0,
        items=counters.get("steps", 0),
        cache_hits=counters.get("memo_hits", 0),
        cache_misses=counters.get("memo_entries", 0),
        wall_time=wall,
    )
    stats = VerificationStats.merge("grammar", 1, [record], wall)
    return CheckRun(result=accepted, stats_parts=(stats,))


def _run_second_third(ctx, params) -> CheckRun:
    """Section 5.4: every A2 equation valid in the induced structure."""
    sink = StatsSink()
    framework = ctx.framework
    report = check_second_third(
        framework.algebraic,
        framework.schema,
        framework.representation,
        max_states=params["max_states"],
        workers=params["workers"],
        stats=sink,
    )
    return CheckRun(result=report, stats_parts=tuple(sink.records))


def _run_agreement(ctx, params) -> CheckRun:
    """Direct level-2/level-3 observation agreement."""
    framework = ctx.framework
    report = check_agreement(
        ctx.algebra,
        framework.schema,
        framework.representation,
        depth=params["depth"],
    )
    return CheckRun(result=report)


# ---------------------------------------------------------------------
# the graph
# ---------------------------------------------------------------------
def build_framework_graph(
    completeness_depth: int = 2,
    congruence_depth: int = 2,
    max_states: int = 100_000,
    grammar_budget: int = 2_000_000,
    workers: int = 1,
) -> CheckGraph:
    """The declarative check graph of a full three-level design.

    Parameters land in each node's ``params`` (and therefore its
    fingerprint); the graph itself is framework-independent — bind a
    framework via :class:`~repro.pipeline.scheduler.PipelineContext`.
    """
    workers = max(1, int(workers))
    return CheckGraph(
        [
            Check(
                name="explore",
                title="reachable observational state graph",
                run=_run_explore,
                inputs=("algebraic",),
                params={"max_states": max_states, "workers": workers},
                provides="graph",
                group="first-second",
            ),
            Check(
                name="completeness",
                title="(a) sufficient completeness",
                run=_run_completeness,
                inputs=("algebraic",),
                params={"depth": completeness_depth, "workers": workers},
                cache_kind="completeness",
                group="first-second",
            ),
            Check(
                name="static",
                title="(b) every reachable state is valid",
                run=_run_static,
                inputs=(
                    "information",
                    "algebraic",
                    "carriers",
                    "interpretation",
                ),
                deps=("explore",),
                params={"max_states": max_states, "workers": workers},
                cache_kind="static",
                group="first-second",
            ),
            Check(
                name="inclusion",
                title="(b)+(c) reachable vs valid comparison",
                run=_run_inclusion,
                inputs=(
                    "information",
                    "algebraic",
                    "carriers",
                    "interpretation",
                ),
                deps=("explore",),
                params={"max_states": max_states, "workers": workers},
                cache_kind="inclusion",
                group="first-second",
            ),
            Check(
                name="transitions",
                title="(d) transition consistency",
                run=_run_transitions,
                inputs=(
                    "information",
                    "algebraic",
                    "carriers",
                    "interpretation",
                ),
                deps=("explore",),
                params={"max_states": max_states, "workers": workers},
                cache_kind="transitions",
                group="first-second",
            ),
            Check(
                name="induction",
                title="(b) proved by structural induction",
                run=_run_induction,
                inputs=(
                    "information",
                    "algebraic",
                    "carriers",
                    "interpretation",
                ),
                params={"max_states": max_states},
                cache_kind="induction",
                span_name="induction",
                span_attrs={"max_states": max_states},
                fan_out=True,
            ),
            Check(
                name="congruence",
                title="level-2 observational congruence",
                run=_run_congruence,
                inputs=("algebraic",),
                params={"depth": congruence_depth},
                cache_kind="congruence",
                span_name="congruence",
                span_attrs={"depth": congruence_depth},
                fan_out=True,
            ),
            Check(
                name="grammar",
                title="schema generated by the RPR W-grammar",
                run=_run_grammar,
                inputs=("schema",),
                params={"max_steps": grammar_budget},
                cache_kind="grammar",
                span_name="grammar",
                span_attrs={"budget": grammar_budget},
                fan_out=True,
            ),
            Check(
                name="second-third",
                title="second-to-third refinement (Section 5.4)",
                run=_run_second_third,
                inputs=("algebraic", "schema", "representation"),
                params={"max_states": max_states, "workers": workers},
                cache_kind="second-third",
                span_name="second-third",
            ),
            Check(
                name="agreement",
                title="cross-level observation agreement",
                run=_run_agreement,
                inputs=("algebraic", "schema", "representation"),
                params={"depth": 2},
                cache_kind="agreement",
                span_name="agreement",
                span_attrs={"depth": 2},
                fan_out=True,
            ),
        ]
    )

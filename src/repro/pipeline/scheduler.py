"""Deterministic execution of a check-graph selection.

The :class:`Scheduler` walks a :class:`~repro.pipeline.graph.CheckGraph`
selection in declaration order (which the graph guarantees is
topological), consults the optional
:class:`~repro.pipeline.cache.ResultCache` per node, and executes what
misses:

* **run-all** (default) reproduces the old monolithic ``verify()``
  exactly: every check runs, failures accumulate.  Independent serial
  checks marked ``fan_out`` are dispatched through
  :class:`~repro.parallel.executor.ParallelExecutor` when ``workers >
  1``, overlapping with the inline graph-bound checks; results are
  merged back in declaration order, so reports and stats stay
  byte-identical for every worker count.
* **fail-fast** stops at the first failing check and marks the rest
  aborted (fan-out is disabled so the stop point is deterministic).

Cache hits *replay*: the stored report is rebuilt, the stored
:class:`~repro.parallel.stats.VerificationStats` parts re-enter the
bundle, and the stored span-counter totals are recorded on a
``cached=True`` span — so a warm run's ``--stats-json`` and
``--metrics-json`` are byte-identical to the cold run that populated
the cache.

Resource nodes (``explore``) are demand-driven: they execute only when
a dependent missed; on an all-hit run only their stats record is
replayed and the state graph is never rebuilt — that is where the
warm-run speedup comes from.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Iterable

from repro.obs.coverage import COV_STATE, capture_coverage
from repro.obs.telemetry import TEL_STATE as _TEL
from repro.obs.tracer import (
    OBS_STATE,
    Tracer,
    activate,
    count as _count,
    span as _span,
)
from repro.parallel.backends import use_backend
from repro.parallel.executor import ParallelExecutor
from repro.parallel.stats import VerificationStats
from repro.pipeline.cache import ResultCache, deserialize_result, serialize_result
from repro.pipeline.check import Check, CheckRun
from repro.pipeline.fingerprint import combine_fingerprint, framework_parts
from repro.pipeline.graph import CheckGraph
from repro.refinement.interpretation import Interpretation

__all__ = ["PipelineContext", "NodeExecution", "PipelineResult", "Scheduler"]


class PipelineContext:
    """The shared state one pipeline run threads through its checks.

    Attributes:
        framework: the :class:`~repro.core.framework.DesignFramework`
            under verification.
        workers: worker-process budget for the fanned sweeps.
        backend: the :class:`~repro.parallel.backends.ExecutorBackend`
            (or backend name) every sweep of the run dispatches
            through; ``None`` keeps the scope-active default.
        resources: keyed products of resource nodes (the ``explore``
            node deposits the state graph under ``"graph"``).
    """

    def __init__(self, framework, workers: int = 1, backend=None):
        self.framework = framework
        self.workers = max(1, int(workers))
        self.backend = backend
        self.resources: dict[str, Any] = {}
        self._algebra = None
        self._interpretation = None

    @property
    def algebra(self):
        """The trace algebra of T2, built on first use and shared by
        every check of the run (one rewrite-engine memo)."""
        if self._algebra is None:
            self._algebra = self.framework.algebra()
        return self._algebra

    @property
    def interpretation(self) -> Interpretation:
        """The interpretation I (the framework's, or homonym)."""
        if self._interpretation is None:
            self._interpretation = (
                self.framework.interpretation
                or Interpretation.homonym(
                    self.framework.information, self.algebra.signature
                )
            )
        return self._interpretation

    def materialize(self) -> None:
        """Eagerly build the shared algebra and interpretation (the
        old monolith built both before any check; keeping that order
        keeps rewrite/intern counter trajectories identical)."""
        self.algebra
        self.interpretation


@dataclass(frozen=True)
class NodeExecution:
    """One scheduled node's outcome.

    Attributes:
        name: the check's name.
        title: the check's one-line description.
        status: ``"ran"`` (executed), ``"hit"`` (cache replay), or
            ``"aborted"`` (skipped by fail-fast).
        fingerprint: the node's content fingerprint (``None`` when no
            cache was consulted).
        run: the :class:`CheckRun` (``None`` when aborted).
        ok: False only when the check ran/replayed and failed.
    """

    name: str
    title: str
    status: str
    fingerprint: str | None
    run: CheckRun | None
    ok: bool


class PipelineResult:
    """Everything a pipeline run produced, in schedule order."""

    def __init__(
        self,
        executions: Iterable[NodeExecution],
        selection: tuple[str, ...],
        cache_enabled: bool = False,
        cache_hits: int = 0,
        cache_misses: int = 0,
    ):
        self.executions: tuple[NodeExecution, ...] = tuple(executions)
        self.selection = selection
        self.cache_enabled = cache_enabled
        self.cache_hits = cache_hits
        self.cache_misses = cache_misses
        self._by_name = {
            execution.name: execution for execution in self.executions
        }

    @property
    def ok(self) -> bool:
        """True iff no executed check failed (aborted checks are
        indeterminate but only exist after a failure)."""
        return all(execution.ok for execution in self.executions)

    def execution(self, name: str) -> NodeExecution | None:
        """The execution record of ``name``, if it was scheduled."""
        return self._by_name.get(name)

    def result_of(self, name: str, default: Any = None) -> Any:
        """The report object check ``name`` produced (or replayed)."""
        execution = self._by_name.get(name)
        if execution is None or execution.run is None:
            return default
        return execution.run.result

    def stats_parts(self) -> list[VerificationStats]:
        """Every stats record, in schedule (= old emission) order."""
        parts: list[VerificationStats] = []
        for execution in self.executions:
            if execution.run is not None:
                parts.extend(execution.run.stats_parts)
        return parts

    def combined_stats(self, label: str = "verify") -> VerificationStats:
        """One bundle over every part (the report's ``stats`` field)."""
        return VerificationStats.combine(label, self.stats_parts())

    def summary(self) -> str:
        """Per-node outcome lines for the CLI's selection mode."""
        lines = []
        for execution in self.executions:
            if execution.status == "aborted":
                outcome = "aborted (fail-fast)"
            elif execution.run is not None and execution.run.skipped:
                outcome = "skipped"
            else:
                outcome = "ok" if execution.ok else "FAILED"
            if execution.status == "hit":
                outcome += " [cached]"
            elif execution.run is not None:
                outcome += f" ({execution.run.wall_time:.2f}s)"
            lines.append(
                f"{execution.name:12s} {outcome:22s} {execution.title}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------
# execution helpers (module-level: the fan-out path forks them)
# ---------------------------------------------------------------------
def _execute_check(check: Check, ctx: PipelineContext, want_counters: bool) -> CheckRun:
    """Run one check, under its declared span, optionally collecting
    the span-counter totals it recorded (for the cache replay path).

    When counters are wanted but tracing is off, the check runs under
    a throwaway activated tracer so the counters exist to store.
    """
    started = time.perf_counter()
    own_tracer = Tracer() if (want_counters and not OBS_STATE.enabled) else None
    activation = activate(own_tracer) if own_tracer is not None else nullcontext()
    # Each check records into its own fresh recorder (folded into the
    # enclosing one on exit), so the stored payload is a function of
    # the check alone — the property cache replay needs.
    coverage_scope = (
        capture_coverage() if COV_STATE.enabled else nullcontext()
    )
    with activation, coverage_scope:
        baseline = (
            OBS_STATE.tracer.counter_totals()
            if want_counters and own_tracer is None
            else None
        )
        if check.span_name is not None:
            with _span(check.span_name, **check.span_attrs):
                run = check.run(ctx, check.params)
        else:
            run = check.run(ctx, check.params)
        counters = None
        if want_counters:
            totals = OBS_STATE.tracer.counter_totals()
            if baseline is not None:
                # A key the check created at zero (e.g. a violations
                # counter that stayed clean) must survive the delta:
                # replaying it keeps warm metrics key-identical to cold.
                counters = {
                    name: value - baseline.get(name, 0)
                    for name, value in totals.items()
                    if name not in baseline or value - baseline[name]
                }
            else:
                counters = dict(totals)
    return CheckRun(
        result=run.result,
        stats_parts=run.stats_parts,
        counters=counters,
        wall_time=time.perf_counter() - started,
        skipped=run.skipped,
        coverage=(
            coverage_scope.recorder.to_payload()
            if COV_STATE.enabled
            else None
        ),
    )


def _fanout_chunk(context, name):
    """Worker-side trampoline for one fanned-out check.

    Returns empty executor counters so the chunk's bookkeeping span
    stays counter-free: the check's own counters travel inside the
    :class:`CheckRun` (and its spans inside the chunk buffer), keeping
    cold and warm metrics totals identical.
    """
    ctx, checks, want_counters = context
    return _execute_check(checks[name], ctx, want_counters), {}


def _node_ok(run: CheckRun | None) -> bool:
    """A check outcome's verdict (``None``/resource results pass)."""
    if run is None:
        return True
    result = run.result
    if result is None:
        return True
    if isinstance(result, bool):
        return result
    return bool(getattr(result, "ok", True))


class Scheduler:
    """Executes check-graph selections deterministically.

    Args:
        graph: the validated check graph.
        fail_fast: stop at the first failing check instead of running
            everything (run-all is the default and matches the old
            monolithic ``verify()``).
        cache: optional :class:`ResultCache`; when given, unchanged
            checks replay instead of running.
    """

    def __init__(
        self,
        graph: CheckGraph,
        fail_fast: bool = False,
        cache: ResultCache | None = None,
    ):
        self.graph = graph
        self.fail_fast = fail_fast
        self.cache = cache

    # ------------------------------------------------------------------
    def run(
        self,
        ctx: PipelineContext,
        only: Iterable[str] | None = None,
        skip: Iterable[str] | None = None,
        overrides: dict[str, dict] | None = None,
    ) -> PipelineResult:
        """Execute the selected subgraph.

        Args:
            ctx: the bound framework context.
            only/skip: subgraph selection (closed over dependencies /
                dependents by the graph).
            overrides: per-check parameter overrides (budgets), merged
                into each check's ``params`` — and therefore into its
                fingerprint.

        The whole selection executes under the context's executor
        backend (``use_backend``): fan-out dispatch here and every
        internally chunked sweep deep inside the checks resolve their
        chunk dispatch through it, without signature changes along
        the way.
        """
        with use_backend(ctx.backend):
            return self._run_selection(ctx, only, skip, overrides)

    def _run_selection(
        self,
        ctx: PipelineContext,
        only: Iterable[str] | None,
        skip: Iterable[str] | None,
        overrides: dict[str, dict] | None,
    ) -> PipelineResult:
        cache = self.cache
        if cache is not None:
            # Resource nodes may thread non-report artifacts (the
            # delta explorer's edge memo) through the same cache.
            ctx.resources["result_cache"] = cache
        selection = self.graph.select(only, skip)
        checks = {
            name: self.graph[name].with_params(
                (overrides or {}).get(name)
            )
            for name in selection
        }

        fingerprints: dict[str, str] = {}
        plan: dict[str, str] = {}
        entries: dict[str, dict] = {}
        replayed: dict[str, Any] = {}
        if cache is not None:
            parts = framework_parts(ctx.framework)
            for name in selection:
                check = checks[name]
                fingerprints[name] = combine_fingerprint(
                    name, parts, check.inputs, check.params
                )
            # Probe result-bearing checks first; resource nodes are
            # decided afterwards from their dependents' fate.
            for name in selection:
                check = checks[name]
                if check.provides is not None:
                    continue
                entry = cache.load(name, fingerprints[name])
                if (
                    entry is not None
                    and COV_STATE.enabled
                    and ResultCache.entry_coverage(entry) is None
                ):
                    # The entry was stored with coverage recording off:
                    # replaying it would silently drop the check's
                    # contribution from the coverage report.  Re-run.
                    entry = None
                if (
                    entry is not None
                    and entry.get("kind") == check.cache_kind
                    and entry.get("report") is not None
                ):
                    try:
                        replayed[name] = deserialize_result(
                            check.cache_kind, entry["report"]
                        )
                    except Exception:
                        plan[name] = "run"
                        continue
                    entries[name] = entry
                    plan[name] = "hit"
                else:
                    plan[name] = "run"
            for name in selection:
                check = checks[name]
                if check.provides is None:
                    continue
                needed = any(
                    plan.get(dependent) == "run"
                    for dependent in self.graph.dependents(name)
                )
                entry = None if needed else cache.load(
                    name, fingerprints[name]
                )
                if (
                    entry is not None
                    and COV_STATE.enabled
                    and ResultCache.entry_coverage(entry) is None
                ):
                    entry = None
                if entry is not None:
                    entries[name] = entry
                    plan[name] = "hit"
                else:
                    plan[name] = "run"
            if OBS_STATE.enabled:
                _count("pipeline.cache.hits", 0)
                _count("pipeline.cache.misses", 0)
        else:
            plan = {name: "run" for name in selection}

        want_counters = cache is not None
        runs: dict[str, CheckRun] = {}
        statuses: dict[str, str] = {name: "aborted" for name in selection}

        fanout = [
            name
            for name in selection
            if checks[name].fan_out
            and plan[name] == "run"
            and not checks[name].deps
            and ctx.workers > 1
            and not self.fail_fast
        ]
        fanned = set(fanout)
        executor = None
        try:
            open_group: str | None = None
            group_span = None

            def close_group():
                nonlocal open_group, group_span
                if group_span is not None:
                    group_span.__exit__(None, None, None)
                open_group, group_span = None, None

            try:
                for name in selection:
                    if name in fanned:
                        continue
                    check = checks[name]
                    if check.group != open_group:
                        close_group()
                        if check.group is not None:
                            group_span = _span(check.group)
                            group_span.__enter__()
                            open_group = check.group
                    if plan[name] == "hit":
                        runs[name] = self._replay(check, entries[name])
                        statuses[name] = "hit"
                    else:
                        if cache is not None and OBS_STATE.enabled:
                            _count("pipeline.cache.misses", 1)
                        runs[name] = _execute_check(
                            check, ctx, want_counters
                        )
                        statuses[name] = "ran"
                        if _TEL.enabled:
                            _TEL.telemetry.observe(
                                f"pipeline.check.{name}",
                                int(runs[name].wall_time * 1e9),
                                counter="pipeline.checks",
                                check=name,
                            )
                        self._store(
                            check, fingerprints.get(name), runs[name]
                        )
                    if self.fail_fast and not _node_ok(runs[name]):
                        break
            finally:
                close_group()

            if fanout:
                # Dispatched only after the inline (graph-bound,
                # internally chunked) checks finish, so the fanned
                # checks overlap each other, never the inline worker
                # pools.  The executor resolves to the run's backend
                # (the use_backend scope around this selection); the
                # virtual-worker model prices each fanned check from
                # a cold bundle of this context, keeping the stats
                # replayed by the cache backend-independent.
                executor = ParallelExecutor(
                    min(ctx.workers, len(fanout)),
                    context=(ctx, checks, want_counters),
                )
                executor.__enter__()
                pending = executor.map_async(_fanout_chunk, fanout)
                for name, run in zip(fanout, pending.collect()):
                    if cache is not None and OBS_STATE.enabled:
                        _count("pipeline.cache.misses", 1)
                    runs[name] = run
                    statuses[name] = "ran"
                    if _TEL.enabled:
                        _TEL.telemetry.observe(
                            f"pipeline.check.{name}",
                            int(run.wall_time * 1e9),
                            counter="pipeline.checks",
                            check=name,
                        )
                    self._store(
                        checks[name], fingerprints.get(name), run
                    )
        finally:
            if executor is not None:
                executor.__exit__(None, None, None)

        executions = tuple(
            NodeExecution(
                name=name,
                title=checks[name].title,
                status=statuses[name],
                fingerprint=fingerprints.get(name),
                run=runs.get(name),
                ok=_node_ok(runs.get(name)),
            )
            for name in selection
        )
        hits = sum(1 for status in statuses.values() if status == "hit")
        ran = sum(1 for status in statuses.values() if status == "ran")
        return PipelineResult(
            executions,
            selection,
            cache_enabled=cache is not None,
            cache_hits=hits,
            cache_misses=ran if cache is not None else 0,
        )

    # ------------------------------------------------------------------
    def _replay(self, check: Check, entry: dict) -> CheckRun:
        """Rebuild a cached check: report object, stats records, and
        span counters, without running anything."""
        if OBS_STATE.enabled:
            _count("pipeline.cache.hits", 1)
        result = None
        if check.cache_kind is not None:
            result = deserialize_result(check.cache_kind, entry["report"])
        counters = ResultCache.entry_counters(entry)
        coverage = ResultCache.entry_coverage(entry)
        if (
            COV_STATE.enabled
            and coverage is not None
            and COV_STATE.recorder is not None
        ):
            # Replay the stored per-check coverage payload, making a
            # warm run's coverage byte-identical to the cold run that
            # populated the cache.
            COV_STATE.recorder.merge_payload(coverage)
        span_name = check.span_name or check.name
        with _span(span_name, cached=True, **check.span_attrs) as span:
            if counters:
                span.record(counters)
        return CheckRun(
            result=result,
            stats_parts=ResultCache.entry_stats(entry),
            counters=counters,
            wall_time=0.0,
            skipped=bool(
                isinstance(entry.get("report"), dict)
                and entry["report"].get("skipped")
            ),
            coverage=coverage,
        )

    def _store(
        self, check: Check, fingerprint: str | None, run: CheckRun
    ) -> None:
        """Persist a freshly executed check (clean reports only)."""
        if self.cache is None or fingerprint is None:
            return
        if check.cache_kind is not None:
            payload = serialize_result(check.cache_kind, run.result)
            if payload is None:
                return  # witness-bearing report: always re-run fresh
        else:
            payload = None
        self.cache.store(
            check.name,
            fingerprint,
            check.cache_kind,
            payload,
            stats_parts=run.stats_parts,
            counters=run.counters,
            wall_time=run.wall_time,
            coverage=run.coverage,
        )

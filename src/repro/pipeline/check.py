"""The declarative check node and its execution record.

A :class:`Check` is one verification obligation of the paper's
methodology, lifted out of the old straight-line
``DesignFramework.verify()`` monolith into data the
:class:`~repro.pipeline.scheduler.Scheduler` can order, skip, cache,
and fan out.  A check declares *what it reads* (``inputs`` — keys
into :func:`repro.pipeline.fingerprint.framework_parts`), *what it
needs first* (``deps`` — names of resource-producing checks), and
*how to run* (``run`` — a module-level function so the node survives
``fork`` into parallel workers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Check", "CheckRun"]


@dataclass(frozen=True)
class CheckRun:
    """What one check execution (or cache replay) produced.

    Attributes:
        result: the check's report object (``None`` for a pure
            resource producer whose value lives in the context, or for
            a skipped optional check).
        stats_parts: the :class:`~repro.parallel.stats.VerificationStats`
            records the check appended, in emission order.
        counters: span-counter totals recorded under the check's span
            subtree (``None`` when observability capture was off and
            caching did not request it).
        wall_time: seconds the execution took.
        skipped: True when an optional check declined to run (e.g. the
            inductive proof on an over-large abstract space).
        coverage: the check's isolated
            :meth:`repro.obs.coverage.CoverageRecorder.to_payload`
            rendering (``None`` when coverage recording was off).
            Captured under a fresh recorder per check, so the payload
            is a function of the check alone and replays exactly on a
            cache hit.
    """

    result: Any
    stats_parts: tuple = ()
    counters: dict[str, int] | None = None
    wall_time: float = 0.0
    skipped: bool = False
    coverage: dict | None = None


@dataclass(frozen=True)
class Check:
    """One declarative verification obligation.

    Attributes:
        name: unique node name (``"static"``, ``"grammar"``, ...);
            also the CLI's ``--only``/``--skip`` vocabulary.
        title: one-line human description for listings.
        run: module-level runner ``run(ctx, params) -> CheckRun``.
        inputs: fingerprint part keys this check's outcome depends on
            (see :func:`repro.pipeline.fingerprint.framework_parts`).
        deps: names of checks that must have materialized their
            resource before this one runs (edges of the check graph).
        params: check parameters (depths, budgets, worker count);
            part of the fingerprint, overridable per run.
        provides: resource key this check materializes into the
            context (e.g. ``"graph"``), or ``None``.
        cache_kind: serializer kind for
            :mod:`repro.pipeline.cache` (``None`` = result is never
            cached; stats may still be).
        span_name: span the scheduler opens around the runner; ``None``
            when the runner's own instrumentation already opens the
            canonical span (the hit path then uses ``name``).
        span_attrs: attributes for the scheduler-opened span.
        group: grouping span name — consecutive checks of one group
            nest under one span (the ``first-second`` bundle).
        fan_out: True when the runner is serial and safe to execute in
            a forked worker, letting the scheduler overlap it with
            other checks.
    """

    name: str
    title: str
    run: Callable[..., CheckRun]
    inputs: tuple[str, ...] = ()
    deps: tuple[str, ...] = ()
    params: dict = field(default_factory=dict)
    provides: str | None = None
    cache_kind: str | None = None
    span_name: str | None = None
    span_attrs: dict = field(default_factory=dict)
    group: str | None = None
    fan_out: bool = False

    def with_params(self, overrides: dict | None) -> "Check":
        """A copy with ``overrides`` merged into :attr:`params`."""
        if not overrides:
            return self
        merged = {**self.params, **overrides}
        return Check(
            name=self.name,
            title=self.title,
            run=self.run,
            inputs=self.inputs,
            deps=self.deps,
            params=merged,
            provides=self.provides,
            cache_kind=self.cache_kind,
            span_name=self.span_name,
            span_attrs=self.span_attrs,
            group=self.group,
            fan_out=self.fan_out,
        )

"""The paper's conceptual design framework (Section 2): the three
levels of specification and the refinements binding them, bundled and
verified as one unit."""

from repro.core.framework import DesignFramework, FrameworkReport

__all__ = ["DesignFramework", "FrameworkReport"]

"""First-order theories T = (L, A).

A theory pairs a language (given by its signature) with a set of
axioms.  "The notions of model, logical implication and theory are as
for first-order languages" (paper, Section 3.1); over the finite
structures of this library, being a model is decidable and implemented
by :meth:`Theory.is_model`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SpecificationError
from repro.logic.formulas import Formula
from repro.logic.printer import format_axioms
from repro.logic.semantics import models_all, satisfies
from repro.logic.signature import Signature
from repro.logic.structures import Structure

__all__ = ["Theory"]


@dataclass(frozen=True)
class Theory:
    """A first-order theory ``T = (L, A)``.

    Attributes:
        signature: the non-logical vocabulary of the language L.
        axioms: the axiom set A; every axiom must be a sentence
            (closed formula).
    """

    signature: Signature
    axioms: tuple[Formula, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for axiom in self.axioms:
            if not axiom.is_closed:
                raise SpecificationError(
                    f"axiom is not a sentence (has free variables): {axiom}"
                )

    def is_model(self, structure: Structure) -> bool:
        """True iff ``structure`` satisfies every axiom."""
        return models_all(structure, list(self.axioms))

    def violated_axioms(self, structure: Structure) -> tuple[Formula, ...]:
        """Return the axioms that ``structure`` falsifies."""
        return tuple(
            axiom for axiom in self.axioms if not satisfies(structure, axiom)
        )

    def with_axioms(self, extra: list[Formula]) -> "Theory":
        """Return a theory with additional axioms appended."""
        return Theory(self.signature, self.axioms + tuple(extra))

    def __str__(self) -> str:
        return f"Theory with axioms:\n{format_axioms(list(self.axioms))}"

"""Classical formula transformations: NNF and prenex normal form.

Provided as standard equipment of the logic substrate (the paper
assumes "familiarity with first-order logic at the level, say, of
[Enderton]"); both transformations are semantics-preserving over the
finite structures of this library, a property-tested fact.
"""

from __future__ import annotations

from repro.logic import formulas as fm
from repro.logic.substitution import apply_to_formula
from repro.logic.terms import Var

__all__ = ["to_nnf", "to_prenex", "is_nnf", "is_prenex"]


def to_nnf(formula: fm.Formula) -> fm.Formula:
    """Negation normal form: negations pushed to atoms; ``->`` and
    ``<->`` expanded.

    Raises:
        TypeError: on non-first-order constructs (modalities have
            their own duality laws in :mod:`repro.temporal`).
    """
    if isinstance(formula, (fm.TrueF, fm.FalseF, fm.Atom, fm.Equals)):
        return formula
    if isinstance(formula, fm.And):
        return fm.And(to_nnf(formula.lhs), to_nnf(formula.rhs))
    if isinstance(formula, fm.Or):
        return fm.Or(to_nnf(formula.lhs), to_nnf(formula.rhs))
    if isinstance(formula, fm.Implies):
        return fm.Or(to_nnf(fm.Not(formula.lhs)), to_nnf(formula.rhs))
    if isinstance(formula, fm.Iff):
        return fm.And(
            fm.Or(to_nnf(fm.Not(formula.lhs)), to_nnf(formula.rhs)),
            fm.Or(to_nnf(formula.lhs), to_nnf(fm.Not(formula.rhs))),
        )
    if isinstance(formula, fm.Forall):
        return fm.Forall(formula.var, to_nnf(formula.body))
    if isinstance(formula, fm.Exists):
        return fm.Exists(formula.var, to_nnf(formula.body))
    if isinstance(formula, fm.Not):
        body = formula.body
        if isinstance(body, (fm.Atom, fm.Equals)):
            return formula
        if isinstance(body, fm.TrueF):
            return fm.FALSE
        if isinstance(body, fm.FalseF):
            return fm.TRUE
        if isinstance(body, fm.Not):
            return to_nnf(body.body)
        if isinstance(body, fm.And):
            return fm.Or(
                to_nnf(fm.Not(body.lhs)), to_nnf(fm.Not(body.rhs))
            )
        if isinstance(body, fm.Or):
            return fm.And(
                to_nnf(fm.Not(body.lhs)), to_nnf(fm.Not(body.rhs))
            )
        if isinstance(body, fm.Implies):
            return fm.And(to_nnf(body.lhs), to_nnf(fm.Not(body.rhs)))
        if isinstance(body, fm.Iff):
            return to_nnf(fm.Not(fm.And(
                fm.Implies(body.lhs, body.rhs),
                fm.Implies(body.rhs, body.lhs),
            )))
        if isinstance(body, fm.Forall):
            return fm.Exists(body.var, to_nnf(fm.Not(body.body)))
        if isinstance(body, fm.Exists):
            return fm.Forall(body.var, to_nnf(fm.Not(body.body)))
    raise TypeError(f"not a first-order formula: {formula!r}")


def is_nnf(formula: fm.Formula) -> bool:
    """True iff negations apply only to atoms and there is no
    ``->``/``<->``."""
    for sub in formula.subformulas():
        if isinstance(sub, (fm.Implies, fm.Iff)):
            return False
        if isinstance(sub, fm.Not) and not isinstance(
            sub.body, (fm.Atom, fm.Equals)
        ):
            return False
    return True


def to_prenex(formula: fm.Formula) -> fm.Formula:
    """Prenex normal form: all quantifiers out front (after NNF).

    Bound variables are renamed apart as needed, so the result is
    semantically equivalent on every structure and valuation of the
    free variables.
    """
    # Every binder is renamed apart from *all* names occurring in the
    # formula (free or bound) and from every other binder, so pulling
    # quantifiers over sibling subformulas can never capture anything.
    used_names = {
        var.name
        for sub in formula.subformulas()
        if isinstance(sub, (fm.Forall, fm.Exists))
        for var in (sub.var,)
    }
    used_names |= {v.name for v in formula.free_vars()}
    for term in formula.terms():
        used_names |= {v.name for v in term.free_vars()}
    counter = [0]

    def fresh(var: Var) -> Var:
        if var.name not in used_names:
            used_names.add(var.name)
            return var
        while True:
            counter[0] += 1
            name = f"{var.name}_{counter[0]}"
            if name not in used_names:
                used_names.add(name)
                return Var(name, var.sort)

    def pull(node: fm.Formula) -> tuple[list, fm.Formula]:
        """Returns (prefix, matrix); prefix items are (cls, var)."""
        if isinstance(node, (fm.Forall, fm.Exists)):
            # used_names was seeded with every binder name upfront,
            # so fresh() always picks a new, globally unique name.
            replacement = fresh(node.var)
            body = node.body
            if replacement != node.var:
                body = apply_to_formula(
                    {node.var: replacement}, body
                )
            prefix, matrix = pull(body)
            return [(type(node), replacement)] + prefix, matrix
        if isinstance(node, (fm.And, fm.Or)):
            left_prefix, left_matrix = pull(node.lhs)
            right_prefix, right_matrix = pull(node.rhs)
            return left_prefix + right_prefix, type(node)(
                left_matrix, right_matrix
            )
        if isinstance(node, fm.Not):
            # NNF input: body is atomic.
            return [], node
        return [], node

    nnf = to_nnf(formula)
    prefix, matrix = pull(nnf)
    result = matrix
    for cls, var in reversed(prefix):
        result = cls(var, result)
    return result


def is_prenex(formula: fm.Formula) -> bool:
    """True iff the formula is a quantifier prefix over a
    quantifier-free matrix."""
    node = formula
    while isinstance(node, (fm.Forall, fm.Exists)):
        node = node.body
    return not any(
        isinstance(sub, (fm.Forall, fm.Exists))
        for sub in node.subformulas()
    )

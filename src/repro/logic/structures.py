"""Finite structures (interpretations) of many-sorted languages.

A :class:`Structure` interprets each sort by a finite *carrier*, each
function symbol by a map on carriers, and each predicate symbol by a
relation.  At the information level, structures play the role of
database states (paper, Section 3.1: "The structures in S play the role
of data base states").

Structures are immutable; state transitions produce new structures via
:meth:`Structure.with_relation`.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any, Hashable, Iterable

from repro.errors import EvaluationError, SignatureError
from repro.logic.signature import Signature
from repro.logic.sorts import Sort

__all__ = ["Structure", "Valuation"]

#: A valuation assigns domain elements to (free) variables.
Valuation = Mapping[Any, Hashable]


class Structure:
    """A finite many-sorted structure over a signature.

    Args:
        signature: the language's non-logical vocabulary.
        carriers: finite carrier set per sort (keyed by :class:`Sort`
            or by sort name).
        functions: interpretation of the function symbols; each entry
            is either a Python callable (applied to argument values) or
            a mapping from argument tuples to values.  Constants may be
            given directly as values.
        relations: interpretation of the predicate symbols; each entry
            is a set of argument tuples.  Predicates without an entry
            are interpreted as empty (common for db-predicates of a
            fresh state).

    Two structures are equal iff they share signature, carriers,
    relation extensions, and function-symbol names (function
    interpretations given as callables are compared by extension on
    the finite carriers).
    """

    def __init__(
        self,
        signature: Signature,
        carriers: Mapping[Sort | str, Iterable[Hashable]],
        functions: Mapping[str, Any] | None = None,
        relations: Mapping[str, Iterable[tuple]] | None = None,
    ):
        self.signature = signature
        self._carriers: dict[Sort, tuple[Hashable, ...]] = {}
        for key, values in carriers.items():
            sort = signature.sort(key) if isinstance(key, str) else key
            self._carriers[sort] = tuple(dict.fromkeys(values))
        for sort in signature.sorts:
            self._carriers.setdefault(sort, ())

        self._functions: dict[str, Any] = dict(functions or {})
        for name in self._functions:
            if not signature.has_function(name):
                raise SignatureError(
                    f"structure interprets undeclared function {name!r}"
                )

        self._relations: dict[str, frozenset[tuple]] = {}
        relations = relations or {}
        for name, tuples in relations.items():
            pred = signature.predicate(name)
            extension = frozenset(tuple(t) for t in tuples)
            for row in extension:
                if len(row) != pred.arity:
                    raise EvaluationError(
                        f"relation {name} given a tuple of wrong arity: "
                        f"{row}"
                    )
            self._relations[name] = extension
        for pred in signature.predicates:
            self._relations.setdefault(pred.name, frozenset())

    # ------------------------------------------------------------------
    # carriers
    # ------------------------------------------------------------------
    def carrier(self, sort: Sort | str) -> tuple[Hashable, ...]:
        """The carrier (finite domain) of ``sort``."""
        if isinstance(sort, str):
            sort = self.signature.sort(sort)
        try:
            return self._carriers[sort]
        except KeyError:
            raise EvaluationError(f"no carrier for sort {sort}") from None

    @property
    def carriers(self) -> dict[Sort, tuple[Hashable, ...]]:
        """All carriers, keyed by sort."""
        return dict(self._carriers)

    # ------------------------------------------------------------------
    # functions and relations
    # ------------------------------------------------------------------
    def apply_function(self, name: str, args: tuple) -> Hashable:
        """Apply the interpretation of function symbol ``name``.

        A constant with no explicit interpretation evaluates to its own
        name string — the library-wide convention that parameter names
        denote themselves (matching the algebraic level's treatment).
        """
        symbol = self.signature.function(name)
        interp = self._functions.get(name)
        if interp is None:
            if symbol.is_constant:
                return symbol.name
            raise EvaluationError(
                f"structure does not interpret function {name!r}"
            )
        if symbol.is_constant and not callable(interp):
            # Constants may be stored as bare values.
            return interp
        if callable(interp):
            return interp(*args)
        try:
            return interp[args]
        except KeyError:
            raise EvaluationError(
                f"function {name!r} undefined on arguments {args}"
            ) from None

    def relation(self, name: str) -> frozenset[tuple]:
        """The extension of predicate symbol ``name``."""
        self.signature.predicate(name)  # raises if undeclared
        return self._relations.get(name, frozenset())

    def holds(self, name: str, args: tuple) -> bool:
        """True iff ``args`` is in the extension of predicate ``name``."""
        return tuple(args) in self.relation(name)

    @property
    def relations(self) -> dict[str, frozenset[tuple]]:
        """All relation extensions, keyed by predicate name."""
        return dict(self._relations)

    # ------------------------------------------------------------------
    # functional updates
    # ------------------------------------------------------------------
    def with_relation(
        self, name: str, extension: Iterable[tuple]
    ) -> "Structure":
        """Return a copy of this structure with one relation replaced."""
        new_relations = dict(self._relations)
        new_relations[name] = frozenset(tuple(t) for t in extension)
        return Structure(
            self.signature, self._carriers, self._functions, new_relations
        )

    def with_relations(
        self, updates: Mapping[str, Iterable[tuple]]
    ) -> "Structure":
        """Return a copy with several relations replaced at once."""
        new_relations = dict(self._relations)
        for name, extension in updates.items():
            new_relations[name] = frozenset(tuple(t) for t in extension)
        return Structure(
            self.signature, self._carriers, self._functions, new_relations
        )

    def insert(self, name: str, row: tuple) -> "Structure":
        """Return a copy with ``row`` added to relation ``name``."""
        return self.with_relation(name, self.relation(name) | {tuple(row)})

    def delete(self, name: str, row: tuple) -> "Structure":
        """Return a copy with ``row`` removed from relation ``name``."""
        return self.with_relation(name, self.relation(name) - {tuple(row)})

    # ------------------------------------------------------------------
    # equality / hashing (by relation extensions and carriers)
    # ------------------------------------------------------------------
    def _key(self) -> tuple:
        return (
            tuple(sorted((s.name, v) for s, v in self._carriers.items())),
            tuple(sorted(self._relations.items())),
            tuple(sorted(self._functions)),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        rels = ", ".join(
            f"{name}={set(ext) or '{}'}"
            for name, ext in sorted(self._relations.items())
        )
        return f"Structure({rels})"


def make_function_table(
    symbol_name: str,
    carrier_args: list[tuple],
    fn: Callable[..., Hashable],
) -> dict[tuple, Hashable]:
    """Tabulate a Python callable over explicit argument tuples.

    Handy for giving extensional (and therefore hashable/comparable)
    interpretations to parameter-sort operations.
    """
    return {args: fn(*args) for args in carrier_args}

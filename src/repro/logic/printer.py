"""Pretty-printing of terms, formulas and theories.

The AST classes' ``__str__`` methods already emit the concrete syntax
accepted by :mod:`repro.logic.parser`; this module wraps them in named
functions (so callers need not rely on ``str``) and adds multi-line
rendering for theories.  ``parse_formula(format_formula(P)) == P`` is a
tested round-trip property.
"""

from __future__ import annotations

from repro.logic.formulas import Formula
from repro.logic.terms import Term

__all__ = ["format_term", "format_formula", "format_axioms"]


def format_term(term: Term) -> str:
    """Render a term in the concrete syntax of the parser."""
    return str(term)


def format_formula(formula: Formula) -> str:
    """Render a formula in the concrete syntax of the parser."""
    return str(formula)


def format_axioms(axioms: list[Formula], indent: str = "  ") -> str:
    """Render a list of axioms one per line, numbered from 1."""
    lines = [
        f"{indent}({index}) {format_formula(axiom)}"
        for index, axiom in enumerate(axioms, start=1)
    ]
    return "\n".join(lines)

"""Tarskian satisfaction for many-sorted first-order languages.

Implements the paper's Section 3.1 semantics: given a structure ``A``
and a valuation ``v`` over the domain, ``A ⊨ P[v]`` is defined by the
familiar rules.  Quantifiers range over the *finite* carrier of the
bound variable's sort, so satisfaction is decidable here.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.errors import EvaluationError
from repro.logic import formulas as fm
from repro.logic.structures import Structure
from repro.logic.terms import App, Term, Var

__all__ = ["evaluate_term", "satisfies", "all_valuations", "models_all"]


def evaluate_term(
    structure: Structure,
    term: Term,
    valuation: dict[Var, Hashable] | None = None,
) -> Hashable:
    """Evaluate ``term`` in ``structure`` under ``valuation``.

    Raises:
        EvaluationError: if a free variable has no value or a function
            symbol is uninterpreted.
    """
    valuation = valuation or {}
    if isinstance(term, Var):
        try:
            return valuation[term]
        except KeyError:
            raise EvaluationError(
                f"variable {term} has no value in the valuation"
            ) from None
    if isinstance(term, App):
        args = tuple(
            evaluate_term(structure, arg, valuation) for arg in term.args
        )
        return structure.apply_function(term.symbol.name, args)
    raise TypeError(f"not a term: {term!r}")


def satisfies(
    structure: Structure,
    formula: fm.Formula,
    valuation: dict[Var, Hashable] | None = None,
) -> bool:
    """Decide ``structure ⊨ formula[valuation]``.

    Quantifiers range over the finite carrier of the quantified sort.
    """
    valuation = valuation or {}
    if isinstance(formula, fm.TrueF):
        return True
    if isinstance(formula, fm.FalseF):
        return False
    if isinstance(formula, fm.Atom):
        args = tuple(
            evaluate_term(structure, arg, valuation) for arg in formula.args
        )
        return structure.holds(formula.predicate.name, args)
    if isinstance(formula, fm.Equals):
        return evaluate_term(
            structure, formula.lhs, valuation
        ) == evaluate_term(structure, formula.rhs, valuation)
    if isinstance(formula, fm.Not):
        return not satisfies(structure, formula.body, valuation)
    if isinstance(formula, fm.And):
        return satisfies(structure, formula.lhs, valuation) and satisfies(
            structure, formula.rhs, valuation
        )
    if isinstance(formula, fm.Or):
        return satisfies(structure, formula.lhs, valuation) or satisfies(
            structure, formula.rhs, valuation
        )
    if isinstance(formula, fm.Implies):
        return (not satisfies(structure, formula.lhs, valuation)) or (
            satisfies(structure, formula.rhs, valuation)
        )
    if isinstance(formula, fm.Iff):
        return satisfies(structure, formula.lhs, valuation) == satisfies(
            structure, formula.rhs, valuation
        )
    if isinstance(formula, fm.Forall):
        carrier = structure.carrier(formula.var.sort)
        return all(
            satisfies(
                structure, formula.body, {**valuation, formula.var: value}
            )
            for value in carrier
        )
    if isinstance(formula, fm.Exists):
        carrier = structure.carrier(formula.var.sort)
        return any(
            satisfies(
                structure, formula.body, {**valuation, formula.var: value}
            )
            for value in carrier
        )
    raise TypeError(f"not a first-order formula: {formula!r}")


def all_valuations(
    structure: Structure, variables: frozenset[Var] | list[Var]
) -> Iterator[dict[Var, Hashable]]:
    """Yield every valuation of ``variables`` over the carriers.

    Variables are ordered by name for determinism.
    """
    ordered = sorted(variables, key=lambda v: v.name)

    def extend(
        index: int, current: dict[Var, Hashable]
    ) -> Iterator[dict[Var, Hashable]]:
        if index == len(ordered):
            yield dict(current)
            return
        var = ordered[index]
        for value in structure.carrier(var.sort):
            current[var] = value
            yield from extend(index + 1, current)
        current.pop(var, None)

    yield from extend(0, {})


def models_all(structure: Structure, formulas: list[fm.Formula]) -> bool:
    """True iff ``structure`` satisfies every *closed* formula given.

    Raises:
        EvaluationError: if some formula has free variables.
    """
    for formula in formulas:
        if not formula.is_closed:
            raise EvaluationError(
                f"axiom has free variables: {formula} "
                f"(free: {sorted(v.name for v in formula.free_vars())})"
            )
        if not satisfies(structure, formula):
            return False
    return True

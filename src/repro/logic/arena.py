"""Array-packed term arena: terms as integer indices into flat tables.

The hash-consed :class:`~repro.logic.terms.Var`/:class:`~repro.logic.terms.App`
kernel made term equality an identity check, but the rewrite hot loop
still chases boxed Python objects: every dispatch reads ``.symbol``,
every match indexes ``.args`` tuples, and every memo probe hashes a
boxed key.  The arena packs terms into flat :mod:`array` tables —

* ``kind``   one byte per node (application or variable),
* ``sym``    the node's symbol id (an index into a symbol registry),
* ``off``/``num``  the node's child slice in one flat child array,
* ``children``     the concatenated child node ids

— so a term becomes one ``int``, equality becomes ``==`` on ints
(nodes are hash-consed per arena: one node per distinct
``(symbol, children)``), a memo table becomes ``dict[int, value]``,
and a matcher becomes integer comparisons against packed child ids.

The object API is preserved as a **lazy view**: :meth:`TermArena.term`
materializes (and caches) the interned :class:`~repro.logic.terms.Term`
for a node on demand, so error messages, reports and every existing
test see ordinary terms.  Arenas are engine-local (one per
:class:`~repro.algebraic.rewriting.RewriteEngine`), so clearing an
engine or letting it die releases the packed tables; a process-wide
:func:`arena_stats` aggregates the live arenas for the ``--stats``
``[kernel]`` line.

Fork/pickle: forked workers inherit arenas copy-on-write; pickling
ships the symbol registry and the raw array buffers and rebuilds the
hash-consing indices on load (views are rematerialized lazily), so an
arena crossing a :class:`~repro.parallel.executor.ParallelExecutor`
boundary keeps its node numbering.
"""

from __future__ import annotations

from array import array
from typing import Iterable
from weakref import WeakSet

from repro.logic.terms import App, Term, Var

__all__ = ["TermArena", "arena_stats", "KIND_APP", "KIND_VAR"]

#: Node kinds in the packed ``kind`` table.
KIND_APP = 0
KIND_VAR = 1

#: Every live arena in this process (weak: an arena lives exactly as
#: long as its owning engine), aggregated by :func:`arena_stats`.
_LIVE_ARENAS: WeakSet = WeakSet()


class TermArena:
    """One packed term table plus its hash-consing indices.

    Node ids are dense ints starting at 0; a node is never mutated or
    removed, so ids are stable for the arena's lifetime (the delta
    explorer and compiled matchers rely on this).
    """

    __slots__ = (
        "_symbols",
        "_symbol_ids",
        "_kind",
        "_sym",
        "_off",
        "_num",
        "_children",
        "_index",
        "_var_index",
        "_views",
        "_intern_memo",
        "__weakref__",
    )

    def __init__(self) -> None:
        #: Symbol registry: FunctionSymbol (apps) or Var (variables).
        self._symbols: list = []
        self._symbol_ids: dict = {}
        self._kind = array("b")
        self._sym = array("q")
        self._off = array("q")
        self._num = array("q")
        self._children = array("q")
        #: Hash-consing index for applications:
        #: ``(symbol id, child ids) -> node id``.
        self._index: dict[tuple[int, tuple[int, ...]], int] = {}
        #: Hash-consing index for variables: ``symbol id -> node id``.
        self._var_index: dict[int, int] = {}
        #: Lazy object views, one slot per node.
        self._views: list[Term | None] = []
        #: Term -> node id memo for :meth:`intern` (holds strong
        #: references; dropped by :meth:`release_views`).
        self._intern_memo: dict[Term, int] = {}
        _LIVE_ARENAS.add(self)

    # ------------------------------------------------------------------
    # symbol registry
    # ------------------------------------------------------------------
    def symbol_id(self, symbol) -> int:
        """The arena id of a function symbol (or variable), registering
        it on first use."""
        sid = self._symbol_ids.get(symbol)
        if sid is None:
            sid = len(self._symbols)
            self._symbols.append(symbol)
            self._symbol_ids[symbol] = sid
        return sid

    def symbol(self, sid: int):
        """The registered symbol object for a symbol id."""
        return self._symbols[sid]

    # ------------------------------------------------------------------
    # packing
    # ------------------------------------------------------------------
    def _new_node(
        self, kind: int, sid: int, child_ids: tuple[int, ...]
    ) -> int:
        node = len(self._kind)
        self._kind.append(kind)
        self._sym.append(sid)
        self._off.append(len(self._children))
        self._num.append(len(child_ids))
        self._children.extend(child_ids)
        self._views.append(None)
        return node

    def app(self, sid: int, child_ids: tuple[int, ...]) -> int:
        """Intern the application node ``symbol(children)`` from packed
        parts (the batch/matcher fast path: no object traversal)."""
        key = (sid, child_ids)
        node = self._index.get(key)
        if node is None:
            node = self._new_node(KIND_APP, sid, child_ids)
            self._index[key] = node
        return node

    def var(self, variable: Var) -> int:
        """Intern a variable node."""
        sid = self.symbol_id(variable)
        node = self._var_index.get(sid)
        if node is None:
            node = self._new_node(KIND_VAR, sid, ())
            self._var_index[sid] = node
            self._views[node] = variable
        return node

    def intern(self, term: Term) -> int:
        """Pack a :class:`~repro.logic.terms.Term` into the arena and
        return its node id (structurally equal terms map to the same
        id).  Iterative, so arbitrarily deep traces pack without
        touching the recursion limit."""
        memo = self._intern_memo
        node = memo.get(term)
        if node is not None:
            return node
        # Post-order over the term with an explicit stack.
        stack: list[tuple[Term, bool]] = [(term, False)]
        while stack:
            current, expanded = stack.pop()
            if current in memo:
                continue
            if isinstance(current, Var):
                memo[current] = self.var(current)
                continue
            if not expanded:
                stack.append((current, True))
                for arg in current.args:
                    if arg not in memo:
                        stack.append((arg, False))
                continue
            child_ids = tuple(memo[arg] for arg in current.args)
            sid = self.symbol_id(current.symbol)
            node = self.app(sid, child_ids)
            if self._views[node] is None:
                self._views[node] = current
            memo[current] = node
        return memo[term]

    def intern_many(self, terms: Iterable[Term]) -> list[int]:
        """Batch constructor: intern every term, sharing subterm work
        through the arena's hash-consing index."""
        return [self.intern(term) for term in terms]

    def apply_batch(
        self, sid: int, prefix: tuple[int, ...], tails: Iterable[int]
    ) -> list[int]:
        """Batch constructor for ``f(prefix..., tail)`` over many
        tails — the successor-trace shape of state exploration."""
        app = self.app
        return [app(sid, (*prefix, tail)) for tail in tails]

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def kind(self, node: int) -> int:
        """``KIND_APP`` or ``KIND_VAR``."""
        return self._kind[node]

    def sym_of(self, node: int) -> int:
        """The node's symbol id."""
        return self._sym[node]

    def children(self, node: int) -> tuple[int, ...]:
        """The node's child ids as a tuple."""
        off = self._off[node]
        return tuple(self._children[off : off + self._num[node]])

    def arity(self, node: int) -> int:
        """Number of children of the node."""
        return self._num[node]

    def term(self, node: int) -> Term:
        """Materialize the object view of a node (cached).

        The view is the interned :class:`~repro.logic.terms.Term`, so
        views of equal nodes are the identical object.
        """
        view = self._views[node]
        if view is not None:
            return view
        # Build bottom-up with an explicit stack (deep traces again).
        pending = [node]
        order: list[int] = []
        while pending:
            current = pending.pop()
            if self._views[current] is not None:
                continue
            order.append(current)
            off = self._off[current]
            for i in range(self._num[current]):
                child = self._children[off + i]
                if self._views[child] is None:
                    pending.append(child)
        for current in reversed(order):
            if self._views[current] is not None:
                continue
            sid = self._sym[current]
            if self._kind[current] == KIND_VAR:
                self._views[current] = self._symbols[sid]
            else:
                off = self._off[current]
                args = tuple(
                    self._views[self._children[off + i]]
                    for i in range(self._num[current])
                )
                self._views[current] = App(self._symbols[sid], args)
        return self._views[node]

    # ------------------------------------------------------------------
    # lifecycle / stats
    # ------------------------------------------------------------------
    def release_views(self) -> None:
        """Drop the strong references to object views and the intern
        memo (packed tables and node ids survive); retired terms can
        then leave the process-wide intern tables."""
        self._intern_memo.clear()
        self._views = [None] * len(self._kind)
        for sid, node in self._var_index.items():
            self._views[node] = self._symbols[sid]

    def __len__(self) -> int:
        return len(self._kind)

    @property
    def nbytes(self) -> int:
        """Bytes held by the packed tables (arrays only; the
        hash-consing dicts and views are bookkeeping on top)."""
        total = 0
        for table in (
            self._kind,
            self._sym,
            self._off,
            self._num,
            self._children,
        ):
            total += len(table) * table.itemsize
        return total

    def stats(self) -> dict[str, int]:
        """Node count and packed size of this arena."""
        return {"terms": len(self._kind), "bytes": self.nbytes}

    # ------------------------------------------------------------------
    # pickling (fork workers inherit arenas; pickled arenas rebuild
    # their indices from the shipped tables)
    # ------------------------------------------------------------------
    def __reduce__(self):
        return (
            _rebuild_arena,
            (
                list(self._symbols),
                self._kind.tobytes(),
                self._sym.tobytes(),
                self._off.tobytes(),
                self._num.tobytes(),
                self._children.tobytes(),
            ),
        )


def _rebuild_arena(
    symbols: list,
    kind: bytes,
    sym: bytes,
    off: bytes,
    num: bytes,
    children: bytes,
) -> TermArena:
    """Reconstruct a pickled arena: restore the packed tables, then
    re-derive the hash-consing indices by one walk over the nodes."""
    arena = TermArena()
    arena._symbols = symbols
    arena._symbol_ids = {symbol: i for i, symbol in enumerate(symbols)}
    arena._kind.frombytes(kind)
    arena._sym.frombytes(sym)
    arena._off.frombytes(off)
    arena._num.frombytes(num)
    arena._children.frombytes(children)
    arena._views = [None] * len(arena._kind)
    for node in range(len(arena._kind)):
        sid = arena._sym[node]
        if arena._kind[node] == KIND_VAR:
            arena._var_index[sid] = node
            arena._views[node] = arena._symbols[sid]
        else:
            arena._index[(sid, arena.children(node))] = node
    return arena


def arena_stats() -> dict[str, int]:
    """Aggregate packed-term statistics over every live arena (the
    ``arena_terms``/``arena_bytes`` fields of the ``[kernel]`` line)."""
    arenas = list(_LIVE_ARENAS)
    return {
        "arenas": len(arenas),
        "terms": sum(len(a) for a in arenas),
        "bytes": sum(a.nbytes for a in arenas),
    }

"""Sorts for many-sorted first-order languages.

The paper (Section 3.1) builds every level of specification on top of
*many-sorted* first-order languages: each variable, constant and function
symbol carries a sort, and formation rules only admit well-sorted terms.
A :class:`Sort` here is a pure name; carriers (the sets of values a sort
ranges over in a particular structure) live in
:mod:`repro.logic.structures`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SortError

__all__ = ["Sort", "BOOLEAN", "STATE", "check_same_sort"]


@dataclass(frozen=True, order=True)
class Sort:
    """A sort (type) of a many-sorted first-order language.

    Two sorts are equal iff their names are equal, so sorts can be
    freely re-created from their names.

    Attributes:
        name: the sort's identifier, e.g. ``"student"`` or ``"course"``.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise SortError(f"invalid sort name: {self.name!r}")

    def __str__(self) -> str:
        return self.name


#: The distinguished Boolean sort used by algebraic specifications
#: (Section 4.1: "The set of sorts of L must include a Boolean sort").
BOOLEAN = Sort("Boolean")

#: The distinguished sort-of-interest of algebraic specifications
#: (Section 4.1: "a designated sort state, also called sort-of-interest").
STATE = Sort("state")


def check_same_sort(expected: Sort, actual: Sort, context: str) -> None:
    """Raise :class:`SortError` unless ``expected == actual``.

    Args:
        expected: the sort required by the enclosing construct.
        actual: the sort actually supplied.
        context: human-readable description used in the error message.
    """
    if expected != actual:
        raise SortError(f"{context}: expected sort {expected}, got {actual}")

"""Substitutions and (capture-avoiding) instantiation.

A substitution maps sorted variables to terms of the same sort.  It is
applied to terms and formulas; application to quantified formulas
renames bound variables when needed to avoid capture.  Substitutions
also serve as the *matching* results of the rewriting engine
(:mod:`repro.algebraic.rewriting`).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Iterator

from repro.errors import SortError
from repro.logic import formulas as fm
from repro.logic.terms import App, Term, Var

__all__ = ["Substitution", "apply_to_term", "apply_to_formula", "match"]


class Substitution(Mapping):
    """An immutable finite map from variables to terms of the same sort.

    Example:
        >>> sub = Substitution({x: some_term})
        >>> sub.apply(term)
        >>> sub.apply_formula(formula)
    """

    def __init__(self, mapping: Mapping[Var, Term] | None = None):
        mapping = dict(mapping or {})
        for var, term in mapping.items():
            if var.sort != term.sort:
                raise SortError(
                    f"substitution maps {var} (sort {var.sort}) to a term "
                    f"of sort {term.sort}"
                )
        self._mapping: dict[Var, Term] = mapping

    def __getitem__(self, var: Var) -> Term:
        return self._mapping[var]

    def __iter__(self) -> Iterator[Var]:
        return iter(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}:={t}" for v, t in self._mapping.items())
        return f"{{{inner}}}"

    def apply(self, term: Term) -> Term:
        """Apply the substitution to a term."""
        return apply_to_term(self, term)

    def apply_formula(self, formula: fm.Formula) -> fm.Formula:
        """Apply the substitution to a formula, avoiding capture."""
        return apply_to_formula(self, formula)

    def bind(self, var: Var, term: Term) -> "Substitution":
        """Return a new substitution with ``var := term`` added.

        Raises:
            SortError: on a sort mismatch or a conflicting binding.
        """
        if var in self._mapping and self._mapping[var] != term:
            raise SortError(f"conflicting binding for {var}")
        new = dict(self._mapping)
        new[var] = term
        return Substitution(new)

    def compose(self, other: "Substitution") -> "Substitution":
        """Return ``self ∘ other``: first apply ``other``, then ``self``.

        ``(self.compose(other)).apply(t) == self.apply(other.apply(t))``.
        """
        out: dict[Var, Term] = {
            var: self.apply(term) for var, term in other.items()
        }
        for var, term in self._mapping.items():
            out.setdefault(var, term)
        return Substitution(out)

    def restrict(self, variables: frozenset[Var]) -> "Substitution":
        """Return the restriction of the substitution to ``variables``."""
        return Substitution(
            {v: t for v, t in self._mapping.items() if v in variables}
        )


def apply_to_term(sub: Mapping[Var, Term], term: Term) -> Term:
    """Apply a variable-to-term mapping to ``term``.

    Returns ``term`` itself (no allocation, no recursion) whenever no
    substituted variable occurs in it — in particular for every ground
    term, the common case when instantiated equation right-hand sides
    are applied to ground traces during rewriting.

    Leaf term kinds other than variables (value literals, scalar
    references, abstract states, ...) contain no variables and pass
    through unchanged.
    """
    if isinstance(term, Var):
        return sub.get(term, term)
    if isinstance(term, App):
        free = term.free_vars()
        if not free or free.isdisjoint(sub):
            return term
        new_args = tuple(apply_to_term(sub, a) for a in term.args)
        if new_args == term.args:
            return term
        return App(term.symbol, new_args)
    if isinstance(term, Term) and not term.free_vars():
        return term
    raise TypeError(f"not a term: {term!r}")


def _fresh_variant(var: Var, avoid: set[str]) -> Var:
    """Return a variable like ``var`` whose name is not in ``avoid``."""
    base = var.name
    counter = 1
    candidate = f"{base}_{counter}"
    while candidate in avoid:
        counter += 1
        candidate = f"{base}_{counter}"
    return Var(candidate, var.sort)


def apply_to_formula(
    sub: Mapping[Var, Term], formula: fm.Formula
) -> fm.Formula:
    """Apply a substitution to a formula, renaming bound variables as
    needed so that no free variable of a substituted term is captured.
    """
    if isinstance(formula, (fm.TrueF, fm.FalseF)):
        return formula
    if isinstance(formula, fm.Atom):
        return fm.Atom(
            formula.predicate,
            tuple(apply_to_term(sub, a) for a in formula.args),
        )
    if isinstance(formula, fm.Equals):
        return fm.Equals(
            apply_to_term(sub, formula.lhs), apply_to_term(sub, formula.rhs)
        )
    if isinstance(formula, fm.Not):
        return fm.Not(apply_to_formula(sub, formula.body))
    if isinstance(formula, (fm.And, fm.Or, fm.Implies, fm.Iff)):
        return type(formula)(
            apply_to_formula(sub, formula.lhs),
            apply_to_formula(sub, formula.rhs),
        )
    if isinstance(formula, (fm.Forall, fm.Exists)):
        # Drop any binding for the bound variable itself.
        inner = {v: t for v, t in sub.items() if v != formula.var}
        # Rename the bound variable if a substituted term would capture it.
        incoming_names = {
            fv.name
            for v in formula.body.free_vars() - {formula.var}
            if v in inner
            for fv in inner[v].free_vars()
        }
        var = formula.var
        body = formula.body
        if var.name in incoming_names:
            avoid = incoming_names | {v.name for v in body.free_vars()}
            fresh = _fresh_variant(var, avoid)
            body = apply_to_formula({var: fresh}, body)
            var = fresh
        return type(formula)(var, apply_to_formula(inner, body))
    raise TypeError(f"not a formula: {formula!r}")


def match(
    pattern: Term, target: Term, sub: Substitution | None = None
) -> Substitution | None:
    """First-order matching: find ``σ`` with ``σ(pattern) == target``.

    Unlike unification, variables only occur in ``pattern``.  Returns
    the extending substitution, or ``None`` if no match exists.

    Args:
        pattern: term with variables to be bound.
        target: (usually ground) term to match against.
        sub: substitution to extend (defaults to the empty one).
    """
    sub = sub if sub is not None else Substitution()
    if isinstance(pattern, Var):
        if pattern.sort != target.sort:
            return None
        bound = sub.get(pattern)
        if bound is None:
            return sub.bind(pattern, target)
        return sub if bound == target else None
    if isinstance(pattern, App):
        if not isinstance(target, App) or pattern.symbol != target.symbol:
            return None
        for p_arg, t_arg in zip(pattern.args, target.args):
            result = match(p_arg, t_arg, sub)
            if result is None:
                return None
            sub = result
        return sub
    raise TypeError(f"not a term: {pattern!r}")

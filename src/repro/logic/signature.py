"""Signatures (non-logical vocabularies) of many-sorted languages.

A signature collects the sorts, function symbols and predicate symbols
of a many-sorted first-order language L (paper, Section 3.1).  The
information level additionally distinguishes *db-predicate* symbols —
"symbols representing data base structures" — from ordinary predicate
symbols such as ``less-than``; that distinction is recorded here with
the ``db`` flag on :class:`PredicateSymbol`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import SignatureError
from repro.logic.sorts import Sort

__all__ = ["FunctionSymbol", "PredicateSymbol", "Signature"]


@dataclass(frozen=True)
class FunctionSymbol:
    """An n-ary function symbol ``f`` of sort ``<s1,...,sn,s>``.

    A constant is a 0-ary function symbol.

    Attributes:
        name: the symbol's identifier.
        arg_sorts: the domain sorts ``s1,...,sn`` (empty for constants).
        result_sort: the target sort ``s``.
    """

    name: str
    arg_sorts: tuple[Sort, ...]
    result_sort: Sort

    def __post_init__(self) -> None:
        if not self.name:
            raise SignatureError("function symbol needs a non-empty name")

    def __hash__(self) -> int:
        # Symbols head every (hash-consed) term, so their hash is on
        # the term-construction fast path; compute it once per symbol.
        try:
            return self._cached_hash
        except AttributeError:
            value = hash((self.name, self.arg_sorts, self.result_sort))
            object.__setattr__(self, "_cached_hash", value)
            return value

    def __reduce__(self):
        # Rebuild from the fields so the cached hash is recomputed in
        # the receiving process rather than shipped.
        return (FunctionSymbol, (self.name, self.arg_sorts, self.result_sort))

    @property
    def arity(self) -> int:
        """Number of arguments the symbol takes."""
        return len(self.arg_sorts)

    @property
    def is_constant(self) -> bool:
        """True iff this is a 0-ary symbol."""
        return not self.arg_sorts

    def __str__(self) -> str:
        if self.is_constant:
            return f"{self.name}: {self.result_sort}"
        args = ", ".join(str(s) for s in self.arg_sorts)
        return f"{self.name}: {args} -> {self.result_sort}"


@dataclass(frozen=True)
class PredicateSymbol:
    """An n-ary predicate symbol ``p`` of sort ``<s1,...,sn>``.

    Attributes:
        name: the symbol's identifier.
        arg_sorts: the argument sorts.
        db: True iff this symbol represents a database structure
            (a *db-predicate symbol* in the paper's terminology); such
            symbols are the ones whose extension varies from state to
            state and that refinement interpretations must map.
    """

    name: str
    arg_sorts: tuple[Sort, ...]
    db: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise SignatureError("predicate symbol needs a non-empty name")

    @property
    def arity(self) -> int:
        """Number of arguments the symbol takes."""
        return len(self.arg_sorts)

    def __str__(self) -> str:
        args = ", ".join(str(s) for s in self.arg_sorts)
        kind = "db-predicate" if self.db else "predicate"
        return f"{self.name}: <{args}> ({kind})"


class Signature:
    """The non-logical vocabulary of a many-sorted first-order language.

    Symbols are registered with the ``add_*`` methods or passed to the
    constructor; names must be unique within their kind (two function
    symbols may not share a name, nor may two predicate symbols, and a
    name may not denote both).

    Example:
        >>> student = Sort("student"); course = Sort("course")
        >>> sig = Signature(sorts=[student, course])
        >>> sig.add_predicate("takes", [student, course], db=True)
        PredicateSymbol(name='takes', ...)
    """

    def __init__(
        self,
        sorts: Iterable[Sort] = (),
        functions: Iterable[FunctionSymbol] = (),
        predicates: Iterable[PredicateSymbol] = (),
    ):
        self._sorts: dict[str, Sort] = {}
        self._functions: dict[str, FunctionSymbol] = {}
        self._predicates: dict[str, PredicateSymbol] = {}
        for sort in sorts:
            self.add_sort(sort)
        for fn in functions:
            self.add_function_symbol(fn)
        for pred in predicates:
            self.add_predicate_symbol(pred)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add_sort(self, sort: Sort) -> Sort:
        """Register ``sort``; re-registering the same sort is a no-op."""
        existing = self._sorts.get(sort.name)
        if existing is not None and existing != sort:
            raise SignatureError(f"sort {sort.name!r} already declared")
        self._sorts[sort.name] = sort
        return sort

    def add_function_symbol(self, symbol: FunctionSymbol) -> FunctionSymbol:
        """Register a pre-built function symbol after checking its sorts."""
        if symbol.name in self._functions:
            if self._functions[symbol.name] == symbol:
                return symbol
            raise SignatureError(f"function {symbol.name!r} already declared")
        if symbol.name in self._predicates:
            raise SignatureError(
                f"{symbol.name!r} already declared as a predicate"
            )
        for sort in (*symbol.arg_sorts, symbol.result_sort):
            if sort.name not in self._sorts:
                raise SignatureError(
                    f"function {symbol.name!r} uses undeclared sort {sort}"
                )
        self._functions[symbol.name] = symbol
        return symbol

    def add_predicate_symbol(self, symbol: PredicateSymbol) -> PredicateSymbol:
        """Register a pre-built predicate symbol after checking its sorts."""
        if symbol.name in self._predicates:
            if self._predicates[symbol.name] == symbol:
                return symbol
            raise SignatureError(f"predicate {symbol.name!r} already declared")
        if symbol.name in self._functions:
            raise SignatureError(
                f"{symbol.name!r} already declared as a function"
            )
        for sort in symbol.arg_sorts:
            if sort.name not in self._sorts:
                raise SignatureError(
                    f"predicate {symbol.name!r} uses undeclared sort {sort}"
                )
        self._predicates[symbol.name] = symbol
        return symbol

    def add_function(
        self,
        name: str,
        arg_sorts: Iterable[Sort],
        result_sort: Sort,
    ) -> FunctionSymbol:
        """Declare and register a function symbol in one step."""
        return self.add_function_symbol(
            FunctionSymbol(name, tuple(arg_sorts), result_sort)
        )

    def add_constant(self, name: str, sort: Sort) -> FunctionSymbol:
        """Declare a constant (0-ary function symbol) of ``sort``."""
        return self.add_function(name, (), sort)

    def add_predicate(
        self,
        name: str,
        arg_sorts: Iterable[Sort],
        db: bool = False,
    ) -> PredicateSymbol:
        """Declare and register a predicate symbol in one step."""
        return self.add_predicate_symbol(
            PredicateSymbol(name, tuple(arg_sorts), db=db)
        )

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def sort(self, name: str) -> Sort:
        """Return the declared sort called ``name``."""
        try:
            return self._sorts[name]
        except KeyError:
            raise SignatureError(f"undeclared sort {name!r}") from None

    def function(self, name: str) -> FunctionSymbol:
        """Return the declared function symbol called ``name``."""
        try:
            return self._functions[name]
        except KeyError:
            raise SignatureError(f"undeclared function {name!r}") from None

    def predicate(self, name: str) -> PredicateSymbol:
        """Return the declared predicate symbol called ``name``."""
        try:
            return self._predicates[name]
        except KeyError:
            raise SignatureError(f"undeclared predicate {name!r}") from None

    def has_sort(self, name: str) -> bool:
        """True iff a sort called ``name`` is declared."""
        return name in self._sorts

    def has_function(self, name: str) -> bool:
        """True iff a function symbol called ``name`` is declared."""
        return name in self._functions

    def has_predicate(self, name: str) -> bool:
        """True iff a predicate symbol called ``name`` is declared."""
        return name in self._predicates

    @property
    def sorts(self) -> tuple[Sort, ...]:
        """All declared sorts, in declaration order."""
        return tuple(self._sorts.values())

    @property
    def functions(self) -> tuple[FunctionSymbol, ...]:
        """All declared function symbols, in declaration order."""
        return tuple(self._functions.values())

    @property
    def predicates(self) -> tuple[PredicateSymbol, ...]:
        """All declared predicate symbols, in declaration order."""
        return tuple(self._predicates.values())

    @property
    def db_predicates(self) -> tuple[PredicateSymbol, ...]:
        """The db-predicate symbols (paper, Section 3.1)."""
        return tuple(p for p in self._predicates.values() if p.db)

    def constants_of_sort(self, sort: Sort) -> tuple[FunctionSymbol, ...]:
        """All declared constants whose result sort is ``sort``."""
        return tuple(
            f
            for f in self._functions.values()
            if f.is_constant and f.result_sort == sort
        )

    def __iter__(self) -> Iterator[FunctionSymbol | PredicateSymbol]:
        yield from self._functions.values()
        yield from self._predicates.values()

    def copy(self) -> "Signature":
        """Return an independent copy of this signature."""
        return Signature(self.sorts, self.functions, self.predicates)

    def extended(
        self,
        sorts: Iterable[Sort] = (),
        functions: Iterable[FunctionSymbol] = (),
        predicates: Iterable[PredicateSymbol] = (),
    ) -> "Signature":
        """Return a copy of this signature with extra symbols added.

        Used, e.g., when refinement adds the reachability predicate F
        to L2 (paper, Section 4.3).
        """
        new = self.copy()
        for sort in sorts:
            new.add_sort(sort)
        for fn in functions:
            new.add_function_symbol(fn)
        for pred in predicates:
            new.add_predicate_symbol(pred)
        return new

    def __repr__(self) -> str:
        return (
            f"Signature(sorts={len(self._sorts)}, "
            f"functions={len(self._functions)}, "
            f"predicates={len(self._predicates)})"
        )

"""Concrete syntax for terms and formulas.

The library is usable purely through AST constructors, but specs read
far better in a concrete syntax.  The grammar (close to the paper's
notation, ASCII-fied):

.. code-block:: text

    formula  := iff
    iff      := imp ('<->' imp)*
    imp      := or ('->' imp)?              (right associative)
    or       := and ('|' and)*
    and      := unary ('&' unary)*
    unary    := '~' unary
              | '<>' unary                  (possibility, temporal ext.)
              | '[]' unary                  (necessity, temporal ext.)
              | ('forall'|'exists') x ':' sort ('.'|',') formula
              | primary
    primary  := '(' formula ')' | 'true' | 'false'
              | term ('=' | '!=') term
              | predname '(' term (',' term)* ')' | predname
    term     := funcname '(' term (',' term)* ')' | funcname | variable

Identifiers resolve against the supplied :class:`Signature`: a name is
a predicate application if the signature declares it as a predicate, a
function application / constant if declared as a function, and a
variable otherwise.  Free variables must be given sorts via the
``variables`` argument; quantifiers sort their own bound variables.

Modal operators ``<>`` and ``[]`` are accepted only when
``allow_modal=True``; they produce nodes from
:mod:`repro.temporal.formulas`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping

from repro.errors import ParseError
from repro.logic import formulas as fm
from repro.logic.signature import Signature
from repro.logic.sorts import Sort
from repro.logic.terms import App, Term, Var

__all__ = ["parse_formula", "parse_term", "tokenize"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<op><->|->|<>|\[\]|!=|[()=~&|,.:])
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"forall", "exists", "true", "false"}


@dataclass(frozen=True)
class _Token:
    kind: str  # 'op', 'ident', 'keyword', 'eof'
    text: str
    position: int


def tokenize(source: str) -> list[_Token]:
    """Split ``source`` into tokens.

    Raises:
        ParseError: on an unrecognized character.
    """
    tokens: list[_Token] = []
    index = 0
    while index < len(source):
        matched = _TOKEN_RE.match(source, index)
        if matched is None:
            raise ParseError(
                f"unexpected character {source[index]!r}", position=index
            )
        if matched.lastgroup == "ident":
            text = matched.group()
            kind = "keyword" if text in _KEYWORDS else "ident"
            tokens.append(_Token(kind, text, index))
        elif matched.lastgroup == "op":
            tokens.append(_Token("op", matched.group(), index))
        index = matched.end()
    tokens.append(_Token("eof", "", len(source)))
    return tokens


class _Parser:
    def __init__(
        self,
        tokens: list[_Token],
        signature: Signature,
        variables: Mapping[str, Sort],
        allow_modal: bool,
    ):
        self._tokens = tokens
        self._pos = 0
        self._signature = signature
        self._scope: dict[str, Sort] = dict(variables)
        self._allow_modal = allow_modal

    # -- token plumbing -------------------------------------------------
    @property
    def _current(self) -> _Token:
        return self._tokens[self._pos]

    def _advance(self) -> _Token:
        token = self._current
        self._pos += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        token = self._current
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {token.text or 'end of input'!r}",
                position=token.position,
            )
        return self._advance()

    def _peek_is(self, kind: str, text: str | None = None) -> bool:
        token = self._current
        return token.kind == kind and (text is None or token.text == text)

    # -- formula grammar ------------------------------------------------
    def formula(self) -> fm.Formula:
        return self._iff()

    def _iff(self) -> fm.Formula:
        left = self._imp()
        while self._peek_is("op", "<->"):
            self._advance()
            left = fm.Iff(left, self._imp())
        return left

    def _imp(self) -> fm.Formula:
        left = self._or()
        if self._peek_is("op", "->"):
            self._advance()
            return fm.Implies(left, self._imp())
        return left

    def _or(self) -> fm.Formula:
        left = self._and()
        while self._peek_is("op", "|"):
            self._advance()
            left = fm.Or(left, self._and())
        return left

    def _and(self) -> fm.Formula:
        left = self._unary()
        while self._peek_is("op", "&"):
            self._advance()
            left = fm.And(left, self._unary())
        return left

    def _unary(self) -> fm.Formula:
        if self._peek_is("op", "~"):
            self._advance()
            return fm.Not(self._unary())
        if self._peek_is("op", "<>") or self._peek_is("op", "[]"):
            token = self._advance()
            if not self._allow_modal:
                raise ParseError(
                    f"modal operator {token.text!r} not allowed here "
                    "(use allow_modal=True / the temporal parser)",
                    position=token.position,
                )
            # Imported lazily to avoid a package cycle.
            from repro.temporal.formulas import Necessarily, Possibly

            body = self._unary()
            return (
                Possibly(body) if token.text == "<>" else Necessarily(body)
            )
        if self._peek_is("keyword", "forall") or self._peek_is(
            "keyword", "exists"
        ):
            return self._quantified()
        return self._primary()

    def _quantified(self) -> fm.Formula:
        token = self._advance()
        cls = fm.Forall if token.text == "forall" else fm.Exists
        bindings: list[Var] = []
        while True:
            name_token = self._expect("ident")
            self._expect("op", ":")
            sort_token = self._expect("ident")
            sort = self._signature.sort(sort_token.text)
            bindings.append(Var(name_token.text, sort))
            if self._peek_is("op", ","):
                self._advance()
                continue
            break
        self._expect("op", ".")
        saved = {
            v.name: self._scope.get(v.name)
            for v in bindings
        }
        for var in bindings:
            self._scope[var.name] = var.var_sort
        body = self.formula()
        for name, old in saved.items():
            if old is None:
                self._scope.pop(name, None)
            else:
                self._scope[name] = old
        result: fm.Formula = body
        for var in reversed(bindings):
            result = cls(var, result)
        return result

    def _primary(self) -> fm.Formula:
        if self._peek_is("op", "("):
            # Could be a parenthesised formula or a parenthesised term
            # followed by '='; formulas are far more common, so try the
            # formula reading first and fall back.
            saved = self._pos
            self._advance()
            try:
                inner = self.formula()
                self._expect("op", ")")
            except ParseError:
                self._pos = saved
            else:
                return inner
        if self._peek_is("keyword", "true"):
            self._advance()
            return fm.TRUE
        if self._peek_is("keyword", "false"):
            self._advance()
            return fm.FALSE
        if self._peek_is("ident"):
            name = self._current.text
            if self._signature.has_predicate(name):
                return self._atom()
        # Equality / disequality between terms.
        lhs = self.term()
        if self._peek_is("op", "="):
            self._advance()
            return fm.Equals(lhs, self.term())
        if self._peek_is("op", "!="):
            self._advance()
            return fm.Not(fm.Equals(lhs, self.term()))
        token = self._current
        raise ParseError(
            f"expected '=' or '!=' after term, found "
            f"{token.text or 'end of input'!r}",
            position=token.position,
        )

    def _atom(self) -> fm.Formula:
        name_token = self._expect("ident")
        predicate = self._signature.predicate(name_token.text)
        args: list[Term] = []
        if self._peek_is("op", "("):
            self._advance()
            args.append(self.term())
            while self._peek_is("op", ","):
                self._advance()
                args.append(self.term())
            self._expect("op", ")")
        return fm.Atom(predicate, tuple(args))

    # -- term grammar ---------------------------------------------------
    def term(self) -> Term:
        token = self._expect("ident")
        name = token.text
        if self._peek_is("op", "("):
            symbol = self._signature.function(name)
            self._advance()
            args = [self.term()]
            while self._peek_is("op", ","):
                self._advance()
                args.append(self.term())
            self._expect("op", ")")
            return App(symbol, tuple(args))
        if self._signature.has_function(name):
            symbol = self._signature.function(name)
            if symbol.is_constant:
                return App(symbol, ())
            raise ParseError(
                f"function {name!r} used without arguments",
                position=token.position,
            )
        sort = self._scope.get(name)
        if sort is None:
            raise ParseError(
                f"unknown identifier {name!r} (not a declared symbol, "
                "bound variable, or supplied free variable)",
                position=token.position,
            )
        return Var(name, sort)

    def finish(self) -> None:
        if self._current.kind != "eof":
            raise ParseError(
                f"unexpected trailing input {self._current.text!r}",
                position=self._current.position,
            )


def parse_formula(
    source: str,
    signature: Signature,
    variables: Mapping[str, Sort] | None = None,
    allow_modal: bool = False,
) -> fm.Formula:
    """Parse a formula from concrete syntax.

    Args:
        source: the formula text.
        signature: the language to resolve identifiers against.
        variables: sorts for free variables appearing in ``source``.
        allow_modal: accept the temporal operators ``<>`` and ``[]``.

    Example:
        >>> parse_formula(
        ...     "forall c:course. (exists s:student. takes(s, c))"
        ...     " -> offered(c)", sig)
    """
    parser = _Parser(
        tokenize(source), signature, variables or {}, allow_modal
    )
    result = parser.formula()
    parser.finish()
    return result


def parse_term(
    source: str,
    signature: Signature,
    variables: Mapping[str, Sort] | None = None,
) -> Term:
    """Parse a term from concrete syntax (see :func:`parse_formula`)."""
    parser = _Parser(tokenize(source), signature, variables or {}, False)
    result = parser.term()
    parser.finish()
    return result

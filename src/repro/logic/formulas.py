"""Well-formed formulas (wffs) of many-sorted first-order languages.

The formation rules follow the paper's Section 3.1: atomic formulas are
predicate applications and equalities between terms of the same sort;
compound formulas are built with the usual connectives and sorted
quantifiers.  The temporal extension (modal operators) lives in
:mod:`repro.temporal.formulas` and reuses these nodes.

Formulas are immutable and hashable.  Substitution is capture-avoiding
(see :mod:`repro.logic.substitution`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator

from repro.errors import SortError
from repro.logic.signature import PredicateSymbol
from repro.logic.terms import Term, Var

__all__ = [
    "Formula",
    "TrueF",
    "FalseF",
    "Atom",
    "Equals",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Forall",
    "Exists",
    "TRUE",
    "FALSE",
    "conjunction",
    "disjunction",
]


class Formula:
    """Abstract base class of all formulas."""

    def free_vars(self) -> frozenset[Var]:
        """The set of free variables of the formula."""
        raise NotImplementedError

    @property
    def is_closed(self) -> bool:
        """True iff the formula has no free variables (is a sentence)."""
        return not self.free_vars()

    def subformulas(self) -> Iterator["Formula"]:
        """Yield the formula itself and every subformula, pre-order."""
        raise NotImplementedError

    def atoms(self) -> Iterator["Formula"]:
        """Yield every atomic subformula (Atom or Equals)."""
        for sub in self.subformulas():
            if isinstance(sub, (Atom, Equals)):
                yield sub

    def terms(self) -> Iterator[Term]:
        """Yield every term occurring in an atomic subformula."""
        for atom in self.atoms():
            if isinstance(atom, Atom):
                yield from atom.args
            elif isinstance(atom, Equals):
                yield atom.lhs
                yield atom.rhs


@dataclass(frozen=True)
class TrueF(Formula):
    """The propositional constant *true*."""

    def free_vars(self) -> frozenset[Var]:
        """The set of free variables of the formula."""
        return frozenset()

    def subformulas(self) -> Iterator[Formula]:
        """Yield the formula itself and every subformula, pre-order."""
        yield self

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseF(Formula):
    """The propositional constant *false*."""

    def free_vars(self) -> frozenset[Var]:
        """The set of free variables of the formula."""
        return frozenset()

    def subformulas(self) -> Iterator[Formula]:
        """Yield the formula itself and every subformula, pre-order."""
        yield self

    def __str__(self) -> str:
        return "false"


#: Canonical instances of the propositional constants.
TRUE = TrueF()
FALSE = FalseF()


@dataclass(frozen=True)
class Atom(Formula):
    """Atomic formula ``p(t1,...,tn)``.

    The constructor enforces the sort discipline: argument sorts must
    match the predicate symbol's declared sorts.
    """

    predicate: PredicateSymbol
    args: tuple[Term, ...] = ()

    def __post_init__(self) -> None:
        if len(self.args) != self.predicate.arity:
            raise SortError(
                f"{self.predicate.name} expects {self.predicate.arity} "
                f"argument(s), got {len(self.args)}"
            )
        for i, (arg, expected) in enumerate(
            zip(self.args, self.predicate.arg_sorts)
        ):
            if arg.sort != expected:
                raise SortError(
                    f"argument {i + 1} of {self.predicate.name}: expected "
                    f"sort {expected}, got {arg.sort}"
                )

    @cached_property
    def _free_vars(self) -> frozenset[Var]:
        out: frozenset[Var] = frozenset()
        for arg in self.args:
            out |= arg.free_vars()
        return out

    def free_vars(self) -> frozenset[Var]:
        """The set of free variables of the formula."""
        return self._free_vars

    def subformulas(self) -> Iterator[Formula]:
        """Yield the formula itself and every subformula, pre-order."""
        yield self

    def __str__(self) -> str:
        if not self.args:
            return self.predicate.name
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.predicate.name}({inner})"


@dataclass(frozen=True)
class Equals(Formula):
    """Equality ``t1 = t2`` between two terms of the same sort."""

    lhs: Term
    rhs: Term

    def __post_init__(self) -> None:
        if self.lhs.sort != self.rhs.sort:
            raise SortError(
                f"cannot equate sort {self.lhs.sort} with {self.rhs.sort} "
                f"({self.lhs} = {self.rhs})"
            )

    def free_vars(self) -> frozenset[Var]:
        """The set of free variables of the formula."""
        return self.lhs.free_vars() | self.rhs.free_vars()

    def subformulas(self) -> Iterator[Formula]:
        """Yield the formula itself and every subformula, pre-order."""
        yield self

    def __str__(self) -> str:
        return f"{self.lhs} = {self.rhs}"


@dataclass(frozen=True)
class Not(Formula):
    """Negation ``~P``."""

    body: Formula

    def free_vars(self) -> frozenset[Var]:
        """The set of free variables of the formula."""
        return self.body.free_vars()

    def subformulas(self) -> Iterator[Formula]:
        """Yield the formula itself and every subformula, pre-order."""
        yield self
        yield from self.body.subformulas()

    def __str__(self) -> str:
        return f"~{_paren(self.body)}"


@dataclass(frozen=True)
class _Binary(Formula):
    """Common implementation of binary connectives."""

    lhs: Formula
    rhs: Formula

    _symbol = "?"

    def free_vars(self) -> frozenset[Var]:
        return self.lhs.free_vars() | self.rhs.free_vars()

    def subformulas(self) -> Iterator[Formula]:
        yield self
        yield from self.lhs.subformulas()
        yield from self.rhs.subformulas()

    def __str__(self) -> str:
        return f"({_paren(self.lhs)} {self._symbol} {_paren(self.rhs)})"


@dataclass(frozen=True)
class And(_Binary):
    """Conjunction ``P & Q``."""

    _symbol = "&"


@dataclass(frozen=True)
class Or(_Binary):
    """Disjunction ``P | Q``."""

    _symbol = "|"


@dataclass(frozen=True)
class Implies(_Binary):
    """Implication ``P -> Q``."""

    _symbol = "->"


@dataclass(frozen=True)
class Iff(_Binary):
    """Biconditional ``P <-> Q``."""

    _symbol = "<->"


@dataclass(frozen=True)
class _Quantified(Formula):
    """Common implementation of sorted quantifiers."""

    var: Var
    body: Formula

    _symbol = "?"

    def free_vars(self) -> frozenset[Var]:
        return self.body.free_vars() - {self.var}

    def subformulas(self) -> Iterator[Formula]:
        yield self
        yield from self.body.subformulas()

    def __str__(self) -> str:
        return (
            f"{self._symbol} {self.var.name}:{self.var.sort}. "
            f"{_paren(self.body)}"
        )


@dataclass(frozen=True)
class Forall(_Quantified):
    """Universal quantification ``forall x:s. P``."""

    _symbol = "forall"


@dataclass(frozen=True)
class Exists(_Quantified):
    """Existential quantification ``exists x:s. P``."""

    _symbol = "exists"


def _paren(formula: Formula) -> str:
    """Render a subformula, parenthesising quantifiers for readability."""
    text = str(formula)
    if isinstance(formula, (Forall, Exists)):
        return f"({text})"
    return text


def conjunction(formulas: list[Formula]) -> Formula:
    """Right-associated conjunction of ``formulas`` (``true`` if empty)."""
    if not formulas:
        return TRUE
    result = formulas[-1]
    for formula in reversed(formulas[:-1]):
        result = And(formula, result)
    return result


def disjunction(formulas: list[Formula]) -> Formula:
    """Right-associated disjunction of ``formulas`` (``false`` if empty)."""
    if not formulas:
        return FALSE
    result = formulas[-1]
    for formula in reversed(formulas[:-1]):
        result = Or(formula, result)
    return result

"""Many-sorted first-order logic: the substrate of every level.

This package implements the logical formalism of the paper's Section 3
minus the temporal extension (which lives in :mod:`repro.temporal`):
sorts, signatures, terms, well-formed formulas, finite structures,
Tarskian satisfaction, substitution/matching, a concrete-syntax parser
and a printer, and first-order theories.
"""

from repro.logic.formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    Equals,
    Exists,
    FalseF,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    TrueF,
    conjunction,
    disjunction,
)
from repro.logic.parser import parse_formula, parse_term
from repro.logic.printer import format_axioms, format_formula, format_term
from repro.logic.semantics import (
    all_valuations,
    evaluate_term,
    models_all,
    satisfies,
)
from repro.logic.signature import FunctionSymbol, PredicateSymbol, Signature
from repro.logic.sorts import BOOLEAN, STATE, Sort
from repro.logic.structures import Structure
from repro.logic.substitution import Substitution, match
from repro.logic.terms import App, Term, Var, const
from repro.logic.theory import Theory
from repro.logic.transformations import is_nnf, is_prenex, to_nnf, to_prenex

__all__ = [
    "Sort",
    "BOOLEAN",
    "STATE",
    "FunctionSymbol",
    "PredicateSymbol",
    "Signature",
    "Term",
    "Var",
    "App",
    "const",
    "Formula",
    "TrueF",
    "FalseF",
    "TRUE",
    "FALSE",
    "Atom",
    "Equals",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Forall",
    "Exists",
    "conjunction",
    "disjunction",
    "Substitution",
    "match",
    "Structure",
    "evaluate_term",
    "satisfies",
    "all_valuations",
    "models_all",
    "parse_formula",
    "parse_term",
    "format_term",
    "format_formula",
    "format_axioms",
    "Theory",
    "to_nnf",
    "to_prenex",
    "is_nnf",
    "is_prenex",
]

"""Terms of many-sorted first-order languages.

Terms are immutable and hashable, so they can be used as dictionary
keys — the algebraic level (Section 4) identifies database states with
ground terms of sort ``state`` ("traces"), and memoising on them is
central to the reachability engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator

from repro.errors import SortError
from repro.logic.signature import FunctionSymbol
from repro.logic.sorts import Sort

__all__ = ["Term", "Var", "App", "const"]


class Term:
    """Abstract base class of all terms.

    Concrete terms are :class:`Var` (a sorted variable) and
    :class:`App` (application of a function symbol; constants are
    0-ary applications).
    """

    @property
    def sort(self) -> Sort:
        """The sort of the term."""
        raise NotImplementedError

    def free_vars(self) -> frozenset["Var"]:
        """The set of variables occurring in the term."""
        raise NotImplementedError

    def subterms(self) -> Iterator["Term"]:
        """Yield the term itself and every proper subterm, pre-order."""
        raise NotImplementedError

    @property
    def is_ground(self) -> bool:
        """True iff the term contains no variables."""
        return not self.free_vars()

    def depth(self) -> int:
        """Height of the term tree (a variable or constant has depth 1)."""
        raise NotImplementedError

    def size(self) -> int:
        """Total number of nodes in the term tree."""
        raise NotImplementedError


@dataclass(frozen=True)
class Var(Term):
    """A sorted variable.

    Attributes:
        name: the variable's identifier.
        var_sort: the variable's sort.
    """

    name: str
    var_sort: Sort

    @property
    def sort(self) -> Sort:
        return self.var_sort

    def free_vars(self) -> frozenset["Var"]:
        return frozenset({self})

    def subterms(self) -> Iterator[Term]:
        yield self

    def depth(self) -> int:
        return 1

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class App(Term):
    """Application ``f(t1,...,tn)`` of a function symbol to arguments.

    The constructor checks that the argument sorts match the symbol's
    declared domain sorts, enforcing the many-sorted formation rules.

    Attributes:
        symbol: the applied function symbol.
        args: the argument terms.
    """

    symbol: FunctionSymbol
    args: tuple[Term, ...] = ()

    def __post_init__(self) -> None:
        if len(self.args) != self.symbol.arity:
            raise SortError(
                f"{self.symbol.name} expects {self.symbol.arity} "
                f"argument(s), got {len(self.args)}"
            )
        for i, (arg, expected) in enumerate(
            zip(self.args, self.symbol.arg_sorts)
        ):
            if arg.sort != expected:
                raise SortError(
                    f"argument {i + 1} of {self.symbol.name}: expected "
                    f"sort {expected}, got {arg.sort} (term {arg})"
                )

    @property
    def sort(self) -> Sort:
        return self.symbol.result_sort

    @cached_property
    def _free_vars(self) -> frozenset[Var]:
        out: frozenset[Var] = frozenset()
        for arg in self.args:
            out |= arg.free_vars()
        return out

    def free_vars(self) -> frozenset[Var]:
        return self._free_vars

    def subterms(self) -> Iterator[Term]:
        yield self
        for arg in self.args:
            yield from arg.subterms()

    def depth(self) -> int:
        if not self.args:
            return 1
        return 1 + max(arg.depth() for arg in self.args)

    def size(self) -> int:
        return 1 + sum(arg.size() for arg in self.args)

    def __str__(self) -> str:
        if not self.args:
            return self.symbol.name
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.symbol.name}({inner})"


def const(symbol: FunctionSymbol) -> App:
    """Build the constant term for a 0-ary function symbol.

    Raises:
        SortError: if ``symbol`` is not 0-ary.
    """
    if not symbol.is_constant:
        raise SortError(f"{symbol.name} is not a constant")
    return App(symbol, ())

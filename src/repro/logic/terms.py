"""Terms of many-sorted first-order languages.

Terms are immutable, hashable and **hash-consed** (interned): building
a term structurally equal to one that is still alive returns the very
same object.  The algebraic level (Section 4) identifies database
states with ground terms of sort ``state`` ("traces") and memoises
query evaluation on them, so term identity, equality and hashing are
the innermost operations of every verification procedure.  Interning
makes them O(1):

* the hash of a term is computed once, at construction, from the
  (already cached) hashes of its parts;
* ``==`` is an identity check first — two live structurally equal
  interned terms are the same object, so the structural fallback only
  runs on hash collisions or for terms that bypassed interning;
* the many-sorted formation checks run once per *unique* application,
  not once per construction;
* pickling re-interns on load (``__reduce__`` routes through the
  constructor), so terms shipped between
  :class:`repro.parallel.executor.ParallelExecutor` workers land in
  the receiving process's intern table.

The intern tables hold weak references: a term only stays interned
while something else (a trace, a memo cache, an equation) keeps it
alive, so long verification campaigns do not leak retired terms.
"""

from __future__ import annotations

from typing import Iterator
from weakref import WeakValueDictionary

from repro.errors import SortError
from repro.logic.signature import FunctionSymbol
from repro.logic.sorts import Sort

__all__ = [
    "Term",
    "Var",
    "App",
    "const",
    "intern_stats",
    "intern_table_size",
]

_EMPTY_FROZENSET: frozenset = frozenset()

#: Live interned variables, keyed by (name, sort).
_VAR_INTERN: WeakValueDictionary = WeakValueDictionary()

#: Live interned applications, keyed by (symbol, args).
_APP_INTERN: WeakValueDictionary = WeakValueDictionary()


def intern_stats() -> dict[str, int]:
    """Sizes of the live intern tables (one entry per unique term)."""
    return {"vars": len(_VAR_INTERN), "apps": len(_APP_INTERN)}


def intern_table_size() -> int:
    """Total number of live interned terms (variables + applications)."""
    return len(_VAR_INTERN) + len(_APP_INTERN)


class Term:
    """Abstract base class of all terms.

    Concrete terms are :class:`Var` (a sorted variable) and
    :class:`App` (application of a function symbol; constants are
    0-ary applications).
    """

    __slots__ = ()

    @property
    def sort(self) -> Sort:
        """The sort of the term."""
        raise NotImplementedError

    def free_vars(self) -> frozenset["Var"]:
        """The set of variables occurring in the term."""
        raise NotImplementedError

    def subterms(self) -> Iterator["Term"]:
        """Yield the term itself and every proper subterm, pre-order."""
        raise NotImplementedError

    @property
    def is_ground(self) -> bool:
        """True iff the term contains no variables."""
        return not self.free_vars()

    def depth(self) -> int:
        """Height of the term tree (a variable or constant has depth 1)."""
        raise NotImplementedError

    def size(self) -> int:
        """Total number of nodes in the term tree."""
        raise NotImplementedError


class Var(Term):
    """A sorted variable (interned).

    Attributes:
        name: the variable's identifier.
        var_sort: the variable's sort.
    """

    __slots__ = ("name", "var_sort", "_hash", "_free", "__weakref__")

    def __new__(cls, name: str, var_sort: Sort) -> "Var":
        key = (name, var_sort)
        cached = _VAR_INTERN.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "var_sort", var_sort)
        object.__setattr__(self, "_hash", hash(key))
        object.__setattr__(self, "_free", frozenset((self,)))
        _VAR_INTERN[key] = self
        return self

    def __setattr__(self, attr: str, value) -> None:
        raise AttributeError("Var is immutable")

    def __delattr__(self, attr: str) -> None:
        raise AttributeError("Var is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        # Interning guarantees that live structurally equal variables
        # are identical; the structural branch only decides hash
        # collisions (and terms revived through exotic paths).
        return self is other or (
            type(other) is Var
            and self.name == other.name
            and self.var_sort == other.var_sort
        )

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    def __reduce__(self):
        # Re-intern on unpickling (e.g. in a forked worker's process).
        return (Var, (self.name, self.var_sort))

    @property
    def sort(self) -> Sort:
        """The sort of the term."""
        return self.var_sort

    def free_vars(self) -> frozenset["Var"]:
        """The set of variables occurring in the term."""
        return self._free

    def subterms(self) -> Iterator[Term]:
        """Yield the term itself and every subterm, pre-order."""
        yield self

    def depth(self) -> int:
        """Height of the term tree."""
        return 1

    def size(self) -> int:
        """Total number of nodes in the term tree."""
        return 1

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Var(name={self.name!r}, var_sort={self.var_sort!r})"


class App(Term):
    """Application ``f(t1,...,tn)`` of a function symbol to arguments
    (interned).

    The constructor checks that the argument sorts match the symbol's
    declared domain sorts, enforcing the many-sorted formation rules;
    hash-consing means the check runs once per unique application.

    Attributes:
        symbol: the applied function symbol.
        args: the argument terms.
    """

    __slots__ = ("symbol", "args", "_hash", "_free", "__weakref__")

    def __new__(
        cls, symbol: FunctionSymbol, args: tuple[Term, ...] = ()
    ) -> "App":
        args = tuple(args)
        key = (symbol, args)
        cached = _APP_INTERN.get(key)
        if cached is not None:
            return cached
        if len(args) != symbol.arity:
            raise SortError(
                f"{symbol.name} expects {symbol.arity} "
                f"argument(s), got {len(args)}"
            )
        free = _EMPTY_FROZENSET
        for i, (arg, expected) in enumerate(zip(args, symbol.arg_sorts)):
            if arg.sort != expected:
                raise SortError(
                    f"argument {i + 1} of {symbol.name}: expected "
                    f"sort {expected}, got {arg.sort} (term {arg})"
                )
            arg_free = arg.free_vars()
            if arg_free:
                free = free | arg_free if free else arg_free
        self = object.__new__(cls)
        object.__setattr__(self, "symbol", symbol)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", hash(key))
        object.__setattr__(self, "_free", free)
        _APP_INTERN[key] = self
        return self

    def __setattr__(self, attr: str, value) -> None:
        raise AttributeError("App is immutable")

    def __delattr__(self, attr: str) -> None:
        raise AttributeError("App is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        # Identity decides for interned terms; see Var.__eq__.
        return self is other or (
            type(other) is App
            and self.symbol == other.symbol
            and self.args == other.args
        )

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    def __reduce__(self):
        # Re-intern on unpickling (e.g. in a forked worker's process).
        return (App, (self.symbol, self.args))

    @property
    def sort(self) -> Sort:
        """The sort of the term."""
        return self.symbol.result_sort

    def free_vars(self) -> frozenset[Var]:
        """The set of variables occurring in the term."""
        return self._free

    def subterms(self) -> Iterator[Term]:
        """Yield the term itself and every subterm, pre-order."""
        yield self
        for arg in self.args:
            yield from arg.subterms()

    def depth(self) -> int:
        """Height of the term tree."""
        if not self.args:
            return 1
        return 1 + max(arg.depth() for arg in self.args)

    def size(self) -> int:
        """Total number of nodes in the term tree."""
        return 1 + sum(arg.size() for arg in self.args)

    def __str__(self) -> str:
        if not self.args:
            return self.symbol.name
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.symbol.name}({inner})"

    def __repr__(self) -> str:
        return f"App(symbol={self.symbol!r}, args={self.args!r})"


def const(symbol: FunctionSymbol) -> App:
    """Build the constant term for a 0-ary function symbol.

    Raises:
        SortError: if ``symbol`` is not 0-ary.
    """
    if not symbol.is_constant:
        raise SortError(f"{symbol.name} is not a constant")
    return App(symbol, ())

"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also catching programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SortError(ReproError):
    """A term or formula violates the many-sorted typing discipline."""


class SignatureError(ReproError):
    """A symbol is redeclared, undeclared, or used with the wrong arity."""


class EvaluationError(ReproError):
    """A term or formula could not be evaluated in the given structure."""


class ParseError(ReproError):
    """Concrete syntax could not be parsed.

    Attributes:
        position: character offset of the offending token, if known.
    """

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class SpecificationError(ReproError):
    """A specification (at any of the three levels) is ill-formed."""


class RewriteError(ReproError):
    """The conditional term-rewriting engine failed."""


class NonTerminationError(RewriteError):
    """Rewriting exceeded the step budget; the equation system is
    (or appears to be) circular, violating sufficient completeness."""


class IncompletenessError(RewriteError):
    """No equation applies to a ground query term: the algebraic
    specification is not sufficiently complete."""


class RefinementError(ReproError):
    """A refinement check between two specification levels failed."""


class WGrammarError(ReproError):
    """A W-grammar is ill-formed or a derivation search was aborted."""


class ExecutionError(ReproError):
    """An RPR program failed during (denotational) evaluation."""


class ServingError(ReproError):
    """The serving runtime rejected a malformed request or reached an
    inconsistent configuration (unknown application, bad cell, ...)."""


class RelationalError(ReproError):
    """The spec→relational compiler could not lower a specification
    (outside the canonical fragment), or a relational backend failed
    while executing a lowered program."""


class JournalError(ServingError):
    """The write-ahead journal is unusable (unwritable directory,
    corrupt snapshot, ...); corrupt *tail* entries are recovered past,
    not raised."""

"""Zero-dependency span tracer for the verification engine.

A *span* is one timed region of a verification run — a whole
``verify()``, one Section 4.4 check, one BFS level of state-space
exploration, one worker chunk — with monotonic start/end timestamps
(:func:`time.perf_counter`), arbitrary key/value attributes, nesting,
and named per-span counters.  Spans form a tree; the active span is
the innermost ``with span(...)`` block on the current tracer's stack.

The module is built around one hard constraint: **tracing off must be
free**.  All instrumentation funnels through :func:`span` and
:func:`count`, which consult the module-level :data:`OBS_STATE` holder
first; when tracing is disabled they return a shared no-op handle (or
return immediately), so the per-call cost in the hot paths is one
attribute load and one branch.  ``benchmarks/bench_obs.py`` gates this
at <= 5% on the snapshot workload.

Worker processes created by :mod:`repro.parallel.executor` inherit the
enabled flag through ``fork``; each chunk runs under :func:`capture`,
which gives the worker a fresh buffer rooted at one ``chunk`` span.
The serialized buffers travel back through
:class:`~repro.parallel.stats.WorkerStats` and are grafted under the
parent's active span **in chunk submission order** — the same
deterministic merge order the verification mergers rely on — so the
exported trace is identical for every worker count modulo timings.
Timestamps remain comparable across workers because ``perf_counter``
reads ``CLOCK_MONOTONIC``, which forked children share.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Iterator, Mapping

__all__ = [
    "Span",
    "Tracer",
    "OBS_STATE",
    "span",
    "count",
    "enable",
    "disable",
    "is_enabled",
    "current_tracer",
    "activate",
    "capture",
]


class Span:
    """One timed, attributed, counted region of a run.

    Attributes:
        name: the span's (low-cardinality) name, e.g. ``"explore"``.
        attrs: key/value attributes fixed at creation (worker index,
            application name, BFS depth, ...).
        start: :func:`time.perf_counter` at entry.
        end: :func:`time.perf_counter` at exit (``None`` while open).
        children: child spans, in creation order.
        counters: named integer counters accumulated inside the span.
    """

    __slots__ = ("name", "attrs", "start", "end", "children", "counters")

    def __init__(
        self,
        name: str,
        attrs: Mapping[str, Any] | None = None,
        start: float | None = None,
    ):
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.start = perf_counter() if start is None else start
        self.end: float | None = None
        self.children: list[Span] = []
        self.counters: dict[str, int] = {}

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to this span's counter ``name``."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def record(self, counters: Mapping[str, int]) -> None:
        """Fold a counter mapping into this span's counters."""
        for name, value in counters.items():
            self.count(name, value)

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """A JSON/pickle-portable view (used to cross process
        boundaries and by the exporters)."""
        return {
            "name": self.name,
            "attrs": self.attrs,
            "start": self.start,
            "end": self.end,
            "counters": self.counters,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Span":
        """Rebuild a span tree serialized by :meth:`to_dict`."""
        built = cls(
            payload["name"], payload.get("attrs"), start=payload["start"]
        )
        built.end = payload.get("end")
        built.counters = dict(payload.get("counters", {}))
        built.children = [
            cls.from_dict(child) for child in payload.get("children", ())
        ]
        return built

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, dur={self.duration:.6f}, "
            f"children={len(self.children)})"
        )


class _SpanHandle:
    """Context manager that opens one span on a tracer's stack."""

    __slots__ = ("_tracer", "_name", "_attrs", "span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self.span: Span | None = None

    def __enter__(self) -> Span:
        opened = Span(self._name, self._attrs)
        tracer = self._tracer
        stack = tracer._stack
        if stack:
            stack[-1].children.append(opened)
        else:
            tracer.roots.append(opened)
        stack.append(opened)
        self.span = opened
        return opened

    def __exit__(self, exc_type, exc, tb) -> bool:
        closed = self._tracer._stack.pop()
        closed.end = perf_counter()
        return False


class _NoopSpan:
    """The shared do-nothing span handle returned while tracing is
    disabled.  Supports the same surface as a real span/handle so call
    sites never branch beyond the enabled check."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def count(self, name: str, n: int = 1) -> None:
        """No-op counter increment."""

    def record(self, counters: Mapping[str, int]) -> None:
        """No-op counter fold."""


#: The module-wide no-op handle (one shared instance, never mutated).
NOOP_SPAN = _NoopSpan()


class Tracer:
    """A span buffer: the root spans of one run plus the active stack.

    Tracers are cheap, single-threaded objects; the verification
    engine is process-parallel, not thread-parallel, so no locking is
    needed.  Counters recorded while no span is open accumulate on the
    tracer itself (:attr:`counters`).
    """

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self.counters: dict[str, int] = {}
        self._stack: list[Span] = []

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """A ``with``-able handle opening a child of the active span
        (or a new root)."""
        return _SpanHandle(self, name, attrs)

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the active span's counter ``name`` (or to the
        tracer-level counters when no span is open)."""
        stack = self._stack
        if stack:
            stack[-1].count(name, n)
        else:
            self.counters[name] = self.counters.get(name, 0) + n

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def graft(self, imported: Span) -> None:
        """Attach an externally built span tree (e.g. a worker chunk's
        buffer) under the active span, or as a root."""
        if self._stack:
            self._stack[-1].children.append(imported)
        else:
            self.roots.append(imported)

    def walk(self) -> Iterator[Span]:
        """Yield every span of every root tree, preorder."""
        for root in self.roots:
            yield from root.walk()

    def counter_totals(self) -> dict[str, int]:
        """Every named counter summed over the whole trace (including
        tracer-level counts)."""
        totals = dict(self.counters)
        for recorded in self.walk():
            for name, value in recorded.counters.items():
                totals[name] = totals.get(name, 0) + value
        return totals


class _ObsState:
    """The module-level switch hot paths poll: one attribute load and
    one branch when disabled."""

    __slots__ = ("enabled", "tracer")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer: Tracer | None = None


#: The process-wide observability switch.  Hot paths read
#: ``OBS_STATE.enabled`` inline; forked workers inherit it.
OBS_STATE = _ObsState()


def span(name: str, **attrs: Any):
    """Open a span on the active tracer; a shared no-op handle when
    tracing is disabled (the instrumentation entry point)."""
    state = OBS_STATE
    if not state.enabled:
        return NOOP_SPAN
    return state.tracer.span(name, **attrs)


def count(name: str, n: int = 1) -> None:
    """Add ``n`` to counter ``name`` on the active span; no-op when
    tracing is disabled (the hot-counter entry point)."""
    state = OBS_STATE
    if state.enabled:
        state.tracer.count(name, n)


def is_enabled() -> bool:
    """True iff tracing is currently enabled in this process."""
    return OBS_STATE.enabled


def current_tracer() -> Tracer | None:
    """The active tracer, or ``None`` when tracing is disabled."""
    return OBS_STATE.tracer if OBS_STATE.enabled else None


def enable(tracer: Tracer | None = None) -> Tracer:
    """Turn tracing on (creating a tracer if none is given) and return
    the active tracer."""
    state = OBS_STATE
    state.tracer = tracer if tracer is not None else Tracer()
    state.enabled = True
    return state.tracer


def disable() -> Tracer | None:
    """Turn tracing off; returns the tracer that was active."""
    state = OBS_STATE
    previous = state.tracer
    state.enabled = False
    state.tracer = None
    return previous


class _Activation:
    """Context manager scoping :func:`enable`/:func:`disable`,
    restoring whatever state was active before."""

    __slots__ = ("_tracer", "_saved")

    def __init__(self, tracer: Tracer | None):
        self._tracer = tracer
        self._saved: tuple[bool, Tracer | None] | None = None

    def __enter__(self) -> Tracer:
        state = OBS_STATE
        self._saved = (state.enabled, state.tracer)
        return enable(self._tracer)

    def __exit__(self, exc_type, exc, tb) -> bool:
        state = OBS_STATE
        state.enabled, state.tracer = self._saved
        return False


def activate(tracer: Tracer | None = None) -> _Activation:
    """Scoped tracing: ``with activate(tracer):`` enables tracing for
    the block and restores the previous state afterwards."""
    return _Activation(tracer)


class _Capture:
    """Context manager giving a block its own fresh tracer rooted at
    one span (the per-worker chunk buffer)."""

    __slots__ = ("_name", "_attrs", "_saved", "tracer")

    def __init__(self, name: str, attrs: dict):
        self._name = name
        self._attrs = attrs
        self._saved: Tracer | None = None
        self.tracer: Tracer | None = None

    def __enter__(self) -> Tracer:
        state = OBS_STATE
        self._saved = state.tracer
        self.tracer = Tracer()
        state.tracer = self.tracer
        handle = self.tracer.span(self._name, **self._attrs)
        handle.__enter__()
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Close the root chunk span, then restore the previous buffer.
        stack = self.tracer._stack
        while stack:
            stack.pop().end = perf_counter()
        OBS_STATE.tracer = self._saved
        return False


def capture(name: str, **attrs: Any) -> _Capture:
    """Run a block under a fresh, isolated tracer rooted at one span.

    Used by the fork executor so that each worker chunk fills its own
    buffer regardless of whatever stack the parent had open at fork
    time; the buffer's roots are what travels back to the parent.
    Only call when tracing is enabled.
    """
    return _Capture(name, attrs)

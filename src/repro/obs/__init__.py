"""Span-based observability for the verification engine.

``repro.obs`` is the instrumentation seam of the system: a
zero-dependency span tracer (:mod:`repro.obs.tracer`), a named
counter/gauge registry (:mod:`repro.obs.metrics`), and trace
exporters (:mod:`repro.obs.export`) — Chrome ``chrome://tracing``
JSON, a flat JSONL event log, and a human summary tree.

Tracing is off by default and costs one branch per instrumentation
point when off.  Turn it on around a block::

    from repro import obs

    tracer = obs.Tracer()
    with obs.activate(tracer):
        report = framework.verify()
    print(obs.format_tree(tracer))
    obs.write_chrome_trace(tracer, "trace.json")

or from the CLI: ``python -m repro verify courses --trace trace.json``.

Worker processes forked by :mod:`repro.parallel` inherit the enabled
flag; their per-chunk span buffers are merged back **in deterministic
chunk order**, so traces are structurally identical for every worker
count.

Live telemetry for the long-running serving processes
(:mod:`repro.obs.telemetry`) follows the same one-branch switch
discipline under its own ``TEL_STATE`` flag: mergeable log-bucketed
latency histograms, windowed rate counters and a structured event
ring, queryable over the ``telemetry`` op of ``repro serve`` and
``repro worker``, rendered by ``repro top``, and exportable as
Prometheus text exposition (:func:`~repro.obs.export.prometheus_text`).

Proof-coverage recording (:mod:`repro.obs.coverage`) follows the same
switch discipline under its own flag: a
:class:`~repro.obs.coverage.CoverageRecorder` collects which equation
dispatch cells, state-graph regions, and W-grammar rules a run
exercised; :mod:`repro.obs.provenance` attaches per-check provenance
records and renders minimal counterexample traces; and
:mod:`repro.obs.report_html` turns the resulting documents into a
self-contained HTML report.
"""

from repro.obs.coverage import (
    COV_STATE,
    CoverageRecorder,
    activate_coverage,
    capture_coverage,
    coverage_digest,
    coverage_document,
    coverage_enabled,
    coverage_json,
    disable_coverage,
    enable_coverage,
    payload_digest,
    state_graph_census,
)
from repro.obs.export import (
    chrome_trace_events,
    format_tree,
    iter_flat_events,
    prometheus_text,
    to_chrome_json,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    TEL_STATE,
    LatencyHistogram,
    Telemetry,
    activate_telemetry,
    current_telemetry,
    disable_telemetry,
    enable_telemetry,
    telemetry_enabled,
)
from repro.obs.provenance import (
    counterexamples_of,
    pipeline_provenance,
    render_counterexample,
    render_failures,
    trace_updates,
)
from repro.obs.report_html import coverage_html
from repro.obs.tracer import (
    OBS_STATE,
    Span,
    Tracer,
    activate,
    capture,
    count,
    current_tracer,
    disable,
    enable,
    is_enabled,
    span,
)

__all__ = [
    "Span",
    "Tracer",
    "OBS_STATE",
    "span",
    "count",
    "enable",
    "disable",
    "is_enabled",
    "current_tracer",
    "activate",
    "capture",
    "MetricsRegistry",
    "TEL_STATE",
    "LatencyHistogram",
    "Telemetry",
    "telemetry_enabled",
    "enable_telemetry",
    "disable_telemetry",
    "activate_telemetry",
    "current_telemetry",
    "chrome_trace_events",
    "to_chrome_json",
    "write_chrome_trace",
    "iter_flat_events",
    "write_jsonl",
    "format_tree",
    "prometheus_text",
    "COV_STATE",
    "CoverageRecorder",
    "coverage_enabled",
    "enable_coverage",
    "disable_coverage",
    "activate_coverage",
    "capture_coverage",
    "state_graph_census",
    "coverage_document",
    "coverage_digest",
    "payload_digest",
    "coverage_json",
    "coverage_html",
    "trace_updates",
    "render_counterexample",
    "counterexamples_of",
    "render_failures",
    "pipeline_provenance",
]

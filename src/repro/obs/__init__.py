"""Span-based observability for the verification engine.

``repro.obs`` is the instrumentation seam of the system: a
zero-dependency span tracer (:mod:`repro.obs.tracer`), a named
counter/gauge registry (:mod:`repro.obs.metrics`), and trace
exporters (:mod:`repro.obs.export`) — Chrome ``chrome://tracing``
JSON, a flat JSONL event log, and a human summary tree.

Tracing is off by default and costs one branch per instrumentation
point when off.  Turn it on around a block::

    from repro import obs

    tracer = obs.Tracer()
    with obs.activate(tracer):
        report = framework.verify()
    print(obs.format_tree(tracer))
    obs.write_chrome_trace(tracer, "trace.json")

or from the CLI: ``python -m repro verify courses --trace trace.json``.

Worker processes forked by :mod:`repro.parallel` inherit the enabled
flag; their per-chunk span buffers are merged back **in deterministic
chunk order**, so traces are structurally identical for every worker
count.
"""

from repro.obs.export import (
    chrome_trace_events,
    format_tree,
    iter_flat_events,
    to_chrome_json,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import (
    OBS_STATE,
    Span,
    Tracer,
    activate,
    capture,
    count,
    current_tracer,
    disable,
    enable,
    is_enabled,
    span,
)

__all__ = [
    "Span",
    "Tracer",
    "OBS_STATE",
    "span",
    "count",
    "enable",
    "disable",
    "is_enabled",
    "current_tracer",
    "activate",
    "capture",
    "MetricsRegistry",
    "chrome_trace_events",
    "to_chrome_json",
    "write_chrome_trace",
    "iter_flat_events",
    "write_jsonl",
    "format_tree",
]

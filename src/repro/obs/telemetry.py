"""Live telemetry for the serving stack: histograms, rates, events.

:mod:`repro.obs.tracer` observes *batch* verification runs — one span
tree per ``verify()``.  The long-running processes (``repro serve``,
``repro worker``, ``repro watch``) need the complementary view:
continuously accumulated, queryable, low-overhead aggregates.  This
module provides the three primitives and the process-wide switch:

:class:`LatencyHistogram`
    Log-bucketed latency distribution over ``time.perf_counter_ns``
    durations.  Bucket boundaries are **deterministic integer
    functions of the value alone** (four sub-buckets per power of
    two), so histograms built on different workers, processes, or
    machines merge exactly: merging is bucket-count addition, which
    is commutative and associative — per-worker histograms merged in
    submission order give the same buckets and percentiles for every
    worker count and executor backend.

:class:`Telemetry`
    A named registry of histograms, windowed rate counters, and a
    fixed-capacity ring of structured JSON-serializable events.  Any
    observed duration at or above the slow-op threshold auto-captures
    a ``slow`` event carrying the op name and its fields — admission
    decisions, journal fsync batches, SQL transactions, and worker
    chunks all funnel through :meth:`Telemetry.observe`, so the slow
    tail of each is inspectable without a tracer.

:data:`TEL_STATE`
    The module-level switch, mirroring
    :data:`~repro.obs.tracer.OBS_STATE`: instrumentation points read
    ``TEL_STATE.enabled`` inline, so telemetry off costs one
    attribute load and one branch per site
    (``benchmarks/bench_obs.py`` gates telemetry *on* at <= 5% of the
    serving workload; off is strictly cheaper).

Snapshots (:meth:`Telemetry.snapshot`) are what the runtime server's
and worker protocol's ``telemetry`` ops return and what ``repro top``
renders; :func:`repro.obs.export.prometheus_text` turns the same
snapshot into Prometheus text exposition.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterator, Mapping

__all__ = [
    "LatencyHistogram",
    "Telemetry",
    "TEL_STATE",
    "telemetry_enabled",
    "current_telemetry",
    "enable_telemetry",
    "disable_telemetry",
    "activate_telemetry",
]

#: Sub-buckets per power of two (resolution ~ +25% per bucket).
_SUBBUCKETS = 4

#: Default slow-op threshold in milliseconds.
DEFAULT_SLOW_MS = 100.0

#: Default event-ring capacity.
DEFAULT_EVENT_CAPACITY = 256

#: Rate-window resolution: per-second buckets, enough for a 60s rate.
_RATE_SECONDS = 70


def bucket_index(ns: int) -> int:
    """The deterministic bucket index of a duration in nanoseconds.

    For ``v >= 1`` with ``e = v.bit_length() - 1`` (so ``2**e <= v <
    2**(e+1)``), the value falls in sub-bucket ``(v - 2**e) * 4 >>
    e`` of exponent ``e`` — pure integer arithmetic, identical on
    every platform and process.  Durations below 1ns clamp to
    bucket 0.
    """
    if ns < 1:
        return 0
    e = ns.bit_length() - 1
    return (e << 2) + (((ns - (1 << e)) << 2) >> e)


def bucket_upper_ns(index: int) -> int:
    """The exclusive upper bound (ns) of bucket ``index``."""
    e = index >> 2
    return ((index & 3) + 5 << e) >> 2


class LatencyHistogram:
    """A mergeable log-bucketed latency histogram.

    Buckets are keyed by :func:`bucket_index`; the histogram also
    tracks the exact count, sum, and maximum, so means are exact and
    percentile estimates never exceed the observed maximum.

    Thread safety is the owner's concern (:class:`Telemetry` guards
    all access with its registry lock).
    """

    __slots__ = ("buckets", "count", "sum_ns", "max_ns")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.sum_ns = 0
        self.max_ns = 0

    def observe(self, ns: int) -> None:
        """Record one duration in nanoseconds."""
        ns = int(ns)
        if ns < 0:
            ns = 0
        index = bucket_index(ns)
        buckets = self.buckets
        buckets[index] = buckets.get(index, 0) + 1
        self.count += 1
        self.sum_ns += ns
        if ns > self.max_ns:
            self.max_ns = ns

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram in (bucket-count addition).

        Merging is commutative and associative, so any merge order
        over the same observations yields identical buckets,
        counts, and percentiles.
        """
        buckets = self.buckets
        for index, n in other.buckets.items():
            buckets[index] = buckets.get(index, 0) + n
        self.count += other.count
        self.sum_ns += other.sum_ns
        if other.max_ns > self.max_ns:
            self.max_ns = other.max_ns

    def percentile_ns(self, q: float) -> int:
        """A deterministic upper-bound estimate of the ``q``-th
        percentile (``0 < q <= 100``) in nanoseconds.

        The estimate is the upper bound of the bucket where the
        cumulative count crosses ``ceil(count * q / 100)``, clamped
        to the exact maximum — a function of the bucket counts
        alone, so merged histograms agree bucket-for-bucket.
        """
        if self.count == 0:
            return 0
        rank = -(-self.count * q // 100)  # ceil without floats
        if rank < 1:
            rank = 1
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                return min(bucket_upper_ns(index), self.max_ns)
        return self.max_ns  # pragma: no cover - rank <= count always

    def cumulative_buckets(self) -> Iterator[tuple[int, int]]:
        """Yield ``(upper_bound_ns, cumulative_count)`` in bound
        order (the Prometheus ``le`` series, before the ``+Inf``
        bucket the exporter appends)."""
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            yield bucket_upper_ns(index), cumulative

    def to_dict(self) -> dict:
        """The JSON/pickle-portable form (crosses worker wires)."""
        return {
            "count": self.count,
            "sum_ns": self.sum_ns,
            "max_ns": self.max_ns,
            "buckets": {
                str(index): self.buckets[index]
                for index in sorted(self.buckets)
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LatencyHistogram":
        """Rebuild a histogram serialized by :meth:`to_dict`."""
        built = cls()
        built.count = int(payload.get("count", 0))
        built.sum_ns = int(payload.get("sum_ns", 0))
        built.max_ns = int(payload.get("max_ns", 0))
        built.buckets = {
            int(index): int(n)
            for index, n in payload.get("buckets", {}).items()
        }
        return built

    def summary(self) -> dict:
        """The display form: count, mean, and p50/p90/p99/max in
        milliseconds (max is exact; percentiles are deterministic
        bucket upper bounds)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean_ms": round(self.sum_ns / self.count / 1e6, 4),
            "p50_ms": round(self.percentile_ns(50) / 1e6, 4),
            "p90_ms": round(self.percentile_ns(90) / 1e6, 4),
            "p99_ms": round(self.percentile_ns(99) / 1e6, 4),
            "max_ms": round(self.max_ns / 1e6, 4),
        }

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(count={self.count}, "
            f"max_ns={self.max_ns})"
        )


class _RateWindow:
    """One counter's total plus a ring of per-second sub-counts."""

    __slots__ = ("total", "_ring")

    def __init__(self) -> None:
        self.total = 0
        #: ``{int(second): count}``, pruned on write.
        self._ring: dict[int, int] = {}

    def inc(self, now: float, n: int) -> None:
        second = int(now)
        ring = self._ring
        ring[second] = ring.get(second, 0) + n
        self.total += n
        if len(ring) > _RATE_SECONDS:
            horizon = second - _RATE_SECONDS
            for stale in [s for s in ring if s < horizon]:
                del ring[stale]

    def rate(self, now: float, window: int) -> float:
        """Events per second over the trailing ``window`` seconds."""
        horizon = int(now) - window
        hits = sum(
            count
            for second, count in self._ring.items()
            if second > horizon
        )
        return hits / window


class _EventRing:
    """Fixed-capacity ring of structured event records."""

    __slots__ = ("_capacity", "_events", "_seq")

    def __init__(self, capacity: int):
        self._capacity = max(1, capacity)
        self._events: list[dict] = []
        self._seq = 0

    def push(self, record: dict) -> None:
        self._seq += 1
        record["seq"] = self._seq
        events = self._events
        events.append(record)
        if len(events) > self._capacity:
            del events[: len(events) - self._capacity]

    def tail(self, limit: int) -> list[dict]:
        """The newest ``limit`` events, oldest first."""
        if limit <= 0:
            return []
        return [dict(event) for event in self._events[-limit:]]


class Telemetry:
    """One process's (or server's) live telemetry registry.

    Args:
        slow_ms: durations at or above this threshold auto-capture a
            ``slow`` event with the op name and fields.
        event_capacity: structured events retained (ring buffer).
        clock: monotonic time source (injectable for tests).

    All mutation happens under one lock, so a single instance can be
    shared by the worker's session threads; :meth:`observe` is one
    lock acquisition covering the histogram update, the optional
    rate increment, and the slow-op capture.
    """

    def __init__(
        self,
        slow_ms: float = DEFAULT_SLOW_MS,
        event_capacity: int = DEFAULT_EVENT_CAPACITY,
        clock=time.monotonic,
    ):
        self.slow_ns = int(slow_ms * 1e6)
        self._clock = clock
        self._started = clock()
        self._lock = threading.Lock()
        self._histograms: dict[str, LatencyHistogram] = {}
        self._rates: dict[str, _RateWindow] = {}
        self._events = _EventRing(event_capacity)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def observe(
        self,
        name: str,
        ns: int,
        counter: str | None = None,
        **fields: Any,
    ) -> None:
        """Record one duration into histogram ``name``.

        ``counter`` additionally increments a rate counter under the
        same lock (the hot-path combined form).  A duration at or
        above the slow-op threshold captures a ``slow`` event
        carrying ``fields``.
        """
        now = self._clock()
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            histogram.observe(ns)
            if counter is not None:
                window = self._rates.get(counter)
                if window is None:
                    window = self._rates[counter] = _RateWindow()
                window.inc(now, 1)
            if ns >= self.slow_ns:
                self._push_event("slow", name, ns / 1e6, fields, now)

    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to rate counter ``name``."""
        now = self._clock()
        with self._lock:
            window = self._rates.get(name)
            if window is None:
                window = self._rates[name] = _RateWindow()
            window.inc(now, n)

    def event(
        self,
        level: str,
        op: str,
        duration_ms: float | None = None,
        **fields: Any,
    ) -> None:
        """Record one structured event (``info``/``warn``/``slow``)."""
        now = self._clock()
        with self._lock:
            self._push_event(level, op, duration_ms, fields, now)

    def _push_event(
        self,
        level: str,
        op: str,
        duration_ms: float | None,
        fields: Mapping[str, Any],
        now: float,
    ) -> None:
        record: dict[str, Any] = {
            "uptime": round(now - self._started, 3),
            "level": level,
            "op": op,
        }
        if duration_ms is not None:
            record["duration_ms"] = round(duration_ms, 3)
        if fields:
            record["fields"] = dict(fields)
        self._events.push(record)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def uptime_seconds(self) -> float:
        """Seconds since this registry was created."""
        return self._clock() - self._started

    def histogram(self, name: str) -> LatencyHistogram | None:
        """A copy of histogram ``name`` (or ``None``)."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                return None
            return LatencyHistogram.from_dict(histogram.to_dict())

    def snapshot(self, events: int = 32) -> dict:
        """The full JSON-serializable state: uptime, every histogram
        (raw buckets plus the :meth:`LatencyHistogram.summary`
        percentiles), every rate counter (total, 10s and 60s rates),
        and the newest ``events`` event records."""
        now = self._clock()
        with self._lock:
            histograms = {
                name: {
                    **histogram.summary(),
                    **histogram.to_dict(),
                }
                for name, histogram in sorted(self._histograms.items())
            }
            counters = {
                name: {
                    "total": window.total,
                    "rate_10s": round(window.rate(now, 10), 3),
                    "rate_60s": round(window.rate(now, 60), 3),
                }
                for name, window in sorted(self._rates.items())
            }
            recent = self._events.tail(events)
        return {
            "uptime_seconds": round(now - self._started, 3),
            "slow_ms": round(self.slow_ns / 1e6, 3),
            "histograms": histograms,
            "counters": counters,
            "events": recent,
        }


class _TelState:
    """The module-level switch hot paths poll: one attribute load
    and one branch when disabled (the ``OBS_STATE`` discipline)."""

    __slots__ = ("enabled", "telemetry")

    def __init__(self) -> None:
        self.enabled = False
        self.telemetry: Telemetry | None = None


#: The process-wide telemetry switch.  Instrumentation points read
#: ``TEL_STATE.enabled`` inline; forked workers inherit it.
TEL_STATE = _TelState()


def telemetry_enabled() -> bool:
    """True iff telemetry is currently enabled in this process."""
    return TEL_STATE.enabled


def current_telemetry() -> Telemetry | None:
    """The active registry, or ``None`` when telemetry is disabled."""
    return TEL_STATE.telemetry if TEL_STATE.enabled else None


def enable_telemetry(
    telemetry: Telemetry | None = None,
) -> Telemetry:
    """Turn telemetry on (creating a registry if none is given) and
    return the active registry."""
    state = TEL_STATE
    state.telemetry = telemetry if telemetry is not None else Telemetry()
    state.enabled = True
    return state.telemetry


def disable_telemetry() -> Telemetry | None:
    """Turn telemetry off; returns the registry that was active."""
    state = TEL_STATE
    previous = state.telemetry
    state.enabled = False
    state.telemetry = None
    return previous


class _TelemetryActivation:
    """Context manager scoping enable/disable, restoring whatever
    state was active before (test- and CLI-friendly)."""

    __slots__ = ("_telemetry", "_saved")

    def __init__(self, telemetry: Telemetry | None):
        self._telemetry = telemetry
        self._saved: tuple[bool, Telemetry | None] | None = None

    def __enter__(self) -> Telemetry:
        state = TEL_STATE
        self._saved = (state.enabled, state.telemetry)
        return enable_telemetry(self._telemetry)

    def __exit__(self, exc_type, exc, tb) -> bool:
        state = TEL_STATE
        state.enabled, state.telemetry = self._saved
        return False


def activate_telemetry(
    telemetry: Telemetry | None = None,
) -> _TelemetryActivation:
    """Scoped telemetry: ``with activate_telemetry():`` enables the
    registry for the block and restores the previous state after."""
    return _TelemetryActivation(telemetry)

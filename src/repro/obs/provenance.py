"""Provenance records and counterexample rendering.

Every pipeline :class:`~repro.pipeline.check.Check` gets a provenance
record: which fingerprinted inputs it read, which parameter bounds it
ran under, and a digest of the coverage it exercised — the audit trail
that says *what a green check actually proved*.  On failure the same
module renders the witnesses as **minimal violating traces**: the
explorer's witness traces are breadth-first (shortest update count
from ``initiate``), so peeling a witness term yields the minimal state
sequence + update names the paper's Section 4.4 arguments reason
about, instead of a raw exception string.

Provenance records deliberately exclude anything that varies between
equivalent runs — wall times, cache hit/ran statuses, and the
``workers`` parameter — so the records (and the coverage documents
embedding them) are byte-identical across worker counts and across
cold/warm cache runs.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.logic.terms import App, Term
from repro.obs.coverage import payload_digest

__all__ = [
    "trace_updates",
    "render_counterexample",
    "counterexamples_of",
    "minimal_witnesses",
    "render_failures",
    "pipeline_provenance",
]

#: Canonical check order for failure rendering (the graph's
#: declaration order).
_CHECK_ORDER = (
    "explore",
    "completeness",
    "static",
    "inclusion",
    "transitions",
    "induction",
    "congruence",
    "grammar",
    "second-third",
    "agreement",
)


# ---------------------------------------------------------------------
# trace peeling and rendering
# ---------------------------------------------------------------------
def trace_updates(term: Term) -> list[tuple[str, tuple[str, ...]]]:
    """The update sequence of a ground trace, initial-first.

    A trace term nests as ``u_n(p, u_{n-1}(p', ... initiate))``; this
    peels it into ``[(update, params), ...]`` in application order.
    """
    steps: list[tuple[str, tuple[str, ...]]] = []
    while isinstance(term, App) and term.args:
        params = tuple(str(arg) for arg in term.args[:-1])
        steps.append((term.symbol.name, params))
        term = term.args[-1]
    steps.reverse()
    return steps


def _prefixes(term: Term) -> list[Term]:
    """Every prefix of a trace term, initial-first (the state
    sequence's witnesses)."""
    chain: list[Term] = []
    while isinstance(term, App) and term.args:
        chain.append(term)
        term = term.args[-1]
    chain.append(term)
    chain.reverse()
    return chain


def render_counterexample(
    term: Term, algebra=None, indent: str = "    "
) -> str:
    """A minimal violating trace as a state sequence + update names.

    Witness traces from the explorer are breadth-first, hence of
    minimal update count.  When ``algebra`` is given each line also
    shows the observational snapshot reached (the state sequence);
    snapshot evaluation failures degrade to the bare update line.
    """
    lines: list[str] = []
    for prefix in _prefixes(term):
        if isinstance(prefix, App) and prefix.args:
            params = ", ".join(str(arg) for arg in prefix.args[:-1])
            step = f"-> {prefix.symbol.name}({params})"
        else:
            step = str(prefix)
        snapshot = ""
        if algebra is not None:
            try:
                snapshot = f"  {algebra.snapshot(prefix)}"
            except Exception:
                snapshot = ""
        lines.append(f"{indent}{step}{snapshot}")
    return "\n".join(lines)


# ---------------------------------------------------------------------
# per-check counterexample extraction
# ---------------------------------------------------------------------
def counterexamples_of(
    name: str, report: Any, algebra=None, graph=None
) -> list[str]:
    """Rendered minimal counterexamples of one failed check's report.

    Returns an empty list for passing (or absent) reports.  ``graph``
    supplies breadth-first witness traces for violations stated on
    snapshots rather than traces (transition consistency).
    """
    if report is None or bool(getattr(report, "ok", report)):
        return []
    out: list[str] = []
    violations = getattr(report, "violations", None)
    if name == "static" and violations:
        for trace, axiom in violations:
            out.append(
                f"axiom {axiom} fails after the trace:\n"
                + render_counterexample(trace, algebra)
            )
    elif name == "transitions" and violations:
        for transition, axiom in violations:
            witness = graph.states.get(transition.source) if graph else None
            params = ", ".join(transition.params)
            update = f"{transition.update}({params})"
            if witness is not None:
                out.append(
                    f"axiom {axiom} fails for update {update} "
                    "applied after the trace:\n"
                    + render_counterexample(witness, algebra)
                )
            else:
                out.append(
                    f"axiom {axiom} fails for update {update} "
                    f"from state {transition.source}"
                )
    elif name == "congruence" and violations:
        for violation in violations:
            params = ", ".join(violation.params)
            out.append(
                f"{violation.update}({params}, .) separates the "
                "observationally equal traces:\n"
                + render_counterexample(violation.left, algebra)
                + "\n  and\n"
                + render_counterexample(violation.right, algebra)
            )
    elif name == "inclusion":
        for structure, trace in getattr(
            report, "invalid_reachable", ()
        ):
            out.append(
                "reachable but invalid structure "
                f"{structure} via the trace:\n"
                + render_counterexample(trace, algebra)
            )
        for structure in getattr(report, "unreachable_valid", ()):
            out.append(f"valid but unreachable structure: {structure}")
    elif name == "completeness":
        coverage = getattr(report, "coverage", None)
        if coverage is not None:
            for missing in getattr(coverage, "missing_constructors", ()):
                query, constructor = missing
                out.append(
                    f"no equation covers query {query!r} on "
                    f"constructor {constructor!r}"
                )
            for uncovered in getattr(coverage, "uncovered", ()):
                out.append(str(uncovered))
        termination = getattr(report, "termination", None)
        if termination is not None and not termination.ok:
            for equation, call in getattr(
                termination, "non_decreasing_calls", ()
            ):
                out.append(
                    f"non-decreasing call {call} in {equation.describe()}"
                )
            for cycle in getattr(termination, "cycles", ()):
                out.append(
                    "query dependency cycle: " + " -> ".join(cycle)
                )
    elif name == "induction":
        for counterexample in getattr(report, "counterexamples", ()):
            out.append(str(counterexample))
    elif name in ("second-third", "agreement"):
        for failure in getattr(report, "failures", ()):
            out.append(str(failure))
    elif name == "grammar" and report is False:
        out.append(
            "the schema source is not generated by the RPR W-grammar"
        )
    return out


def minimal_witnesses(
    rendered: list[str], limit: int = 1
) -> tuple[list[str], int]:
    """The ``limit`` shortest rendered witnesses, plus the count of
    witnesses dropped.

    Shortness is measured in trace steps (rendered lines) with the
    text itself as the deterministic tie-break, so the selection is
    stable across worker counts and cache states.
    """
    ordered = sorted(rendered, key=lambda s: (s.count("\n"), s))
    return ordered[:limit], max(0, len(ordered) - limit)


def render_failures(
    results: Mapping[str, Any],
    algebra=None,
    graph_provider: Callable[[], Any] | None = None,
) -> str | None:
    """The minimal counterexample for every failing check, or ``None``.

    Each failing check contributes its single shortest witness (the
    explorer's traces are breadth-first, so the shortest rendering is
    a genuinely minimal violation) plus a count of further witnesses.

    Args:
        results: check name -> report object.
        algebra: optional trace algebra for state-sequence rendering.
        graph_provider: lazily builds the state graph (only invoked
            when a snapshot-based violation needs a witness trace).
    """
    blocks: list[str] = []
    graph = None
    for name in _CHECK_ORDER:
        report = results.get(name)
        if report is None or bool(getattr(report, "ok", report)):
            continue
        if (
            name == "transitions"
            and graph is None
            and graph_provider is not None
        ):
            try:
                graph = graph_provider()
            except Exception:
                graph = None
        rendered = counterexamples_of(
            name, report, algebra=algebra, graph=graph
        )
        if rendered:
            picked, dropped = minimal_witnesses(rendered)
            body = "\n".join(picked)
            if dropped:
                body += (
                    f"\n    ... and {dropped} more "
                    f"counterexample{'s' if dropped != 1 else ''}"
                )
            blocks.append(f"[{name}] minimal counterexample:\n{body}")
    if not blocks:
        return None
    return "\n\n".join(blocks)


# ---------------------------------------------------------------------
# per-check provenance records
# ---------------------------------------------------------------------
def pipeline_provenance(
    framework, result, graph, algebra=None
) -> list[dict]:
    """Provenance records for every execution of a pipeline run.

    Args:
        framework: the verified
            :class:`~repro.core.framework.DesignFramework`.
        result: the :class:`~repro.pipeline.scheduler.PipelineResult`.
        graph: the :class:`~repro.pipeline.graph.CheckGraph` the run
            used (source of each check's declared inputs and params).
        algebra: optional trace algebra for witness rendering.

    Each record carries the check's input fingerprints, its parameter
    bounds (minus ``workers``), a combined fingerprint over both, the
    digest of the coverage the check recorded, and rendered witnesses
    on failure.  Statuses (hit vs ran) and timings are deliberately
    omitted — see the module docstring.
    """
    from repro.pipeline.fingerprint import (
        combine_fingerprint,
        framework_parts,
    )

    parts = framework_parts(framework)
    records: list[dict] = []
    for execution in result.executions:
        check = graph[execution.name]
        params = {
            key: value
            for key, value in check.params.items()
            if key != "workers"
        }
        run = execution.run
        record: dict[str, Any] = {
            "name": check.name,
            "title": check.title,
            "inputs": {key: parts[key] for key in check.inputs},
            "params": dict(sorted(params.items())),
            "fingerprint": combine_fingerprint(
                check.name, parts, check.inputs, params
            ),
            "ok": None if execution.status == "aborted" else execution.ok,
            "skipped": bool(run is not None and run.skipped),
            "aborted": execution.status == "aborted",
            "coverage_digest": (
                payload_digest(run.coverage)
                if run is not None and run.coverage is not None
                else None
            ),
        }
        if run is not None and not execution.ok:
            rendered = counterexamples_of(
                check.name, run.result, algebra=algebra
            )
            picked, dropped = minimal_witnesses(rendered, limit=3)
            record["witnesses"] = picked
            record["witnesses_dropped"] = dropped
        records.append(record)
    return records

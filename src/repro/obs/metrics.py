"""Named counters and gauges: the metrics registry.

The verification engine accumulates ad-hoc counters in several places
— :class:`~repro.algebraic.rewriting.RewriteEngine` attributes
(``cache_hits``/``cache_misses``/``rewrite_steps``/``dispatch_hits``),
the process-wide term-intern tables, per-worker
:class:`~repro.parallel.stats.WorkerStats` records and their
:class:`~repro.parallel.stats.VerificationStats` aggregates.  The
:class:`MetricsRegistry` subsumes them behind one namespace of *named*
counters (monotone integers) and gauges (point-in-time floats), so
exporters and the ``--metrics-json`` CLI flag have a single flat,
stable schema to emit:

========================== =========================================
``verify.items``           total work items over every check
``verify.wall_time``       summed per-check wall seconds (gauge)
``rewrite.cache.hits``     rewrite-engine memo hits
``rewrite.cache.misses``   rewrite-engine memo misses
``rewrite.steps``          conditional-equation firings
``rewrite.dispatch.hits``  compiled dispatch-table reuses
``kernel.interned_terms``  terms hash-consed during the run
``kernel.intern_table.*``  live intern-table sizes (gauges)
``kernel.arena.*``         packed term-arena sizes (gauges)
``kernel.delta.*``         delta-exploration totals (gauges)
``check.<label>.*``        the same counters, per check
========================== =========================================

Span counters recorded through the tracer (``rewrite.evaluate.calls``,
``wgrammar.steps``, ...) merge into the same namespace via
:meth:`MetricsRegistry.merge_tracer`.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Tracer
    from repro.parallel.stats import VerificationStats

__all__ = ["MetricsRegistry"]

#: VerificationStats counter fields and their registry names.
_STATS_COUNTERS = (
    ("states_checked", "items"),
    ("cache_hits", "rewrite.cache.hits"),
    ("cache_misses", "rewrite.cache.misses"),
    ("rewrite_steps", "rewrite.steps"),
    ("dispatch_hits", "rewrite.dispatch.hits"),
    ("interned_terms", "kernel.interned_terms"),
)


class MetricsRegistry:
    """A flat namespace of named counters and gauges.

    Counters are monotone integers (:meth:`inc`); gauges are
    point-in-time floats (:meth:`set_gauge`).  Registries merge
    (:meth:`merge`) by summing counters and keeping the latest gauge,
    so per-application registries fold into one run-level record.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self.gauges[name] = value

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, gauges overwrite."""
        for name, value in other.counters.items():
            self.inc(name, value)
        self.gauges.update(other.gauges)

    def merge_counters(
        self, counters: Mapping[str, int], prefix: str = ""
    ) -> None:
        """Fold a plain counter mapping in, optionally prefixed."""
        for name, value in counters.items():
            self.inc(prefix + name, value)

    def merge_tracer(self, tracer: "Tracer") -> None:
        """Fold a tracer's span-counter totals into the registry."""
        self.merge_counters(tracer.counter_totals())

    # ------------------------------------------------------------------
    def record_verification(self, stats: "VerificationStats") -> None:
        """Subsume a :class:`VerificationStats` bundle.

        The combined record lands under the flat names of the module
        docstring; each per-check part additionally lands under
        ``check.<label>.<counter>`` with a ``check.<label>.wall_time``
        gauge, so a trace viewer and the JSON consumer see the same
        decomposition the ``--stats`` tree prints.
        """
        for field, name in _STATS_COUNTERS:
            target = "verify.items" if name == "items" else name
            self.inc(target, getattr(stats, field))
        self.set_gauge("verify.wall_time", stats.wall_time)
        self.set_gauge("verify.workers", stats.workers)
        for part in stats.parts:
            prefix = f"check.{part.label}."
            for field, name in _STATS_COUNTERS:
                self.inc(prefix + name, getattr(part, field))
            self.set_gauge(prefix + "wall_time", part.wall_time)

    def record_runtime(self, stats: Mapping) -> None:
        """Subsume a :attr:`~repro.runtime.service.SpecRuntime.stats`
        dict under the ``runtime.*`` namespace.

        Counters: ``runtime.updates.accepted`` / ``.rejected``,
        ``runtime.queries``, and ``runtime.journal.*`` when the
        runtime journals.  Gauges: ``runtime.seq``, ``runtime.cells``,
        ``runtime.uptime_seconds`` — the one schema shared by
        ``--metrics-json`` files and the server's ``stats`` op.
        """
        self.inc("runtime.updates.accepted", stats.get("accepted", 0))
        self.inc("runtime.updates.rejected", stats.get("rejected", 0))
        self.inc("runtime.queries", stats.get("queries", 0))
        journal = stats.get("journal")
        if journal:
            self.inc("runtime.journal.appends", journal["appends"])
            self.inc("runtime.journal.syncs", journal["syncs"])
            self.inc(
                "runtime.journal.compactions", journal["compactions"]
            )
        self.set_gauge("runtime.seq", stats.get("seq", 0))
        self.set_gauge("runtime.cells", stats.get("cells", 0))
        self.set_gauge(
            "runtime.uptime_seconds", stats.get("uptime_seconds", 0.0)
        )

    def record_kernel(self) -> None:
        """Gauge the live term-kernel intern tables, the packed term
        arenas, and the delta-exploration totals."""
        from repro.algebraic.exploration import delta_counters
        from repro.logic.arena import arena_stats
        from repro.logic.terms import intern_stats, intern_table_size

        detail = intern_stats()
        self.set_gauge("kernel.intern_table.size", intern_table_size())
        self.set_gauge("kernel.intern_table.vars", detail["vars"])
        self.set_gauge("kernel.intern_table.apps", detail["apps"])
        arena = arena_stats()
        self.set_gauge("kernel.arena.terms", arena["terms"])
        self.set_gauge("kernel.arena.bytes", arena["bytes"])
        delta = delta_counters()
        self.set_gauge(
            "kernel.delta.reexplored_states",
            delta["reexplored_states"],
        )
        self.set_gauge(
            "kernel.delta.cached_transitions",
            delta["cached_transitions"],
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The JSON-serializable view: sorted counters and gauges."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The registry as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def __str__(self) -> str:
        lines = ["[metrics]"]
        for name, value in sorted(self.counters.items()):
            lines.append(f"  {name} = {value}")
        for name, value in sorted(self.gauges.items()):
            lines.append(f"  {name} = {value:g} (gauge)")
        return "\n".join(lines)

"""``repro top``: a live single-screen view of a serving process.

The subcommand polls the ``telemetry`` op of a running ``repro
serve`` (JSON-lines protocol) or ``repro worker`` (length-prefixed
frame protocol, with ``--worker``) and renders one refreshing
screen: uptime, per-counter rates, latency percentile rows per
histogram, the guard rejection breakdown, and the newest slow-op
events.  ``--once`` renders a single screen and exits; ``--once
--json`` prints the raw snapshot document instead — the scripting
and CI form (the smoke-distributed job asserts its keys).

Only the standard library is used, so ``repro top`` works anywhere
the CLI does; rendering degrades to plain text when the output is
not a terminal (no ANSI clear).
"""

from __future__ import annotations

import json
import socket
import time
from typing import IO

from repro.errors import ServingError

__all__ = [
    "fetch_runtime_snapshot",
    "fetch_worker_snapshot",
    "render_snapshot",
    "top",
]

#: ANSI: clear screen and home the cursor (refreshing display only).
_CLEAR = "\x1b[2J\x1b[H"


def parse_address(address: str) -> tuple[str, int]:
    """Split ``HOST:PORT`` (the form ``repro top`` takes).

    Raises:
        ServingError: when the port part is missing or non-numeric.
    """
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ServingError(
            f"address {address!r} is not of the form HOST:PORT"
        )
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ServingError(
            f"address {address!r} has a non-numeric port"
        ) from exc
    return host, port


def fetch_runtime_snapshot(
    host: str, port: int, events: int = 32, timeout: float = 10.0
) -> dict:
    """One ``telemetry`` response from a runtime server.

    Raises:
        ServingError: when the server refuses (telemetry disabled)
            or the connection fails.
    """
    from repro.runtime.client import RuntimeClient

    try:
        with RuntimeClient(host, port, timeout=timeout) as client:
            response = client.telemetry(events=events)
    except OSError as exc:
        raise ServingError(
            f"cannot reach runtime server at {host}:{port}: {exc}"
        ) from exc
    if not response.get("ok"):
        raise ServingError(
            f"server at {host}:{port} refused the telemetry op: "
            f"{response.get('error', 'unknown error')}"
        )
    snapshot = response["telemetry"]
    if "application" in response:
        snapshot = {
            "application": response["application"],
            **snapshot,
        }
    return snapshot


def fetch_worker_snapshot(
    host: str, port: int, events: int = 32, timeout: float = 10.0
) -> dict:
    """One ``telemetry`` response from a ``repro worker`` process
    (hello handshake, then the telemetry frame).

    Raises:
        ServingError: on connection, protocol, or refusal errors.
    """
    from repro.parallel import wire

    try:
        with socket.create_connection(
            (host, port), timeout=timeout
        ) as sock:
            stream = sock.makefile("rwb")
            wire.send_frame(
                stream,
                {"op": "hello", "version": wire.PROTOCOL_VERSION},
            )
            hello = wire.recv_frame(stream)
            if hello is None or not hello.get("ok"):
                raise ServingError(
                    f"worker at {host}:{port} refused the handshake: "
                    f"{(hello or {}).get('error', 'closed')}"
                )
            wire.send_frame(
                stream, {"op": "telemetry", "events": events}
            )
            reply = wire.recv_frame(stream)
            wire.send_frame(stream, {"op": "bye"})
    except (OSError, wire.WireError) as exc:
        raise ServingError(
            f"cannot reach worker at {host}:{port}: {exc}"
        ) from exc
    if reply is None or not reply.get("ok"):
        raise ServingError(
            f"worker at {host}:{port} refused the telemetry op: "
            f"{(reply or {}).get('error', 'closed')}"
        )
    return reply["telemetry"]


def _rejection_breakdown(counters: dict) -> list[tuple[str, dict]]:
    """The ``runtime.rejected.<kind>`` counter rows, by total."""
    rows = [
        (name.rpartition(".")[2], payload)
        for name, payload in counters.items()
        if name.startswith("runtime.rejected.")
    ]
    rows.sort(key=lambda row: -row[1]["total"])
    return rows


def render_snapshot(snapshot: dict, address: str = "") -> str:
    """One snapshot as the plain-text ``repro top`` screen."""
    lines: list[str] = []
    application = snapshot.get("application")
    heading = "repro top"
    if address:
        heading += f" — {address}"
    if application:
        heading += f" ({application})"
    uptime = snapshot.get("uptime_seconds", 0.0)
    lines.append(
        f"{heading}   up {uptime:.1f}s   "
        f"slow-op threshold {snapshot.get('slow_ms', 0):.0f}ms"
    )
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("")
        lines.append(
            f"  {'counter':34s} {'total':>10s} "
            f"{'rate/10s':>10s} {'rate/60s':>10s}"
        )
        for name, payload in counters.items():
            lines.append(
                f"  {name:34s} {payload['total']:>10d} "
                f"{payload['rate_10s']:>10.2f} "
                f"{payload['rate_60s']:>10.2f}"
            )
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append(
            f"  {'latency (ms)':34s} {'count':>8s} {'p50':>8s} "
            f"{'p90':>8s} {'p99':>8s} {'max':>8s}"
        )
        for name, payload in histograms.items():
            if not payload.get("count"):
                continue
            lines.append(
                f"  {name:34s} {payload['count']:>8d} "
                f"{payload['p50_ms']:>8.3f} {payload['p90_ms']:>8.3f} "
                f"{payload['p99_ms']:>8.3f} {payload['max_ms']:>8.3f}"
            )
    rejections = _rejection_breakdown(counters)
    if rejections:
        lines.append("")
        lines.append("  guard rejections:")
        for kind, payload in rejections:
            lines.append(
                f"    {kind:20s} {payload['total']:>8d} "
                f"({payload['rate_60s']:.2f}/s over 60s)"
            )
    events = snapshot.get("events", [])
    slow = [e for e in events if e.get("level") == "slow"]
    if slow:
        lines.append("")
        lines.append("  recent slow ops:")
        for event in slow[-8:]:
            fields = event.get("fields", {})
            rendered = " ".join(
                f"{key}={value}" for key, value in fields.items()
            )
            lines.append(
                f"    +{event.get('uptime', 0):.1f}s "
                f"{event.get('op', '?'):30s} "
                f"{event.get('duration_ms', 0):>9.2f}ms "
                f"{rendered}"
            )
    return "\n".join(lines) + "\n"


def top(
    address: str,
    worker: bool = False,
    interval: float = 2.0,
    once: bool = False,
    as_json: bool = False,
    events: int = 32,
    out: IO[str] | None = None,
) -> int:
    """The ``repro top`` loop; returns the process exit code.

    Args:
        address: ``HOST:PORT`` of the serving process.
        worker: poll a ``repro worker`` instead of a runtime server.
        interval: seconds between refreshes.
        once: render a single screen and exit.
        as_json: with ``once``, print the raw snapshot document.
        events: recent events to request per poll.
        out: output stream (defaults to stdout).
    """
    import sys

    stream = out if out is not None else sys.stdout
    host, port = parse_address(address)
    fetch = fetch_worker_snapshot if worker else fetch_runtime_snapshot
    refreshing = (
        not once
        and out is None
        and hasattr(stream, "isatty")
        and stream.isatty()
    )
    while True:
        try:
            snapshot = fetch(host, port, events=events)
        except ServingError as exc:
            print(f"repro top: {exc}", file=stream, flush=True)
            return 2
        if once and as_json:
            print(
                json.dumps(snapshot, indent=2, sort_keys=True),
                file=stream,
                flush=True,
            )
            return 0
        screen = render_snapshot(snapshot, address)
        if refreshing:
            stream.write(_CLEAR)
        stream.write(screen)
        stream.flush()
        if once:
            return 0
        try:
            time.sleep(max(0.1, interval))
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0

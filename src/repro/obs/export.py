"""Trace exporters: Chrome tracing JSON, flat JSONL, summary tree,
Prometheus text exposition.

Four views for four audiences:

* :func:`write_chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` / Perfetto: one complete (``"ph": "X"``) event
  per span, microsecond timestamps normalized to the earliest span,
  worker chunks on their own ``tid`` rows so per-worker rewrite
  activity lines up visually against the parent's checks.
* :func:`write_jsonl` — one JSON object per line per span, preorder,
  with the materialized ``path`` from the root; greppable and
  streamable into any log pipeline.
* :func:`format_tree` — the human ``--stats``-style summary: an
  indented tree of span names, durations, attributes and counters.
* :func:`prometheus_text` — a live :class:`~repro.obs.telemetry.
  Telemetry` snapshot in the Prometheus text exposition format
  (histograms with cumulative ``le`` buckets in seconds, counter
  totals, uptime), ready to serve from a metrics endpoint or dump
  with ``--telemetry-json``-style tooling.

The trace exporters accept either a :class:`~repro.obs.tracer.Tracer`
or a list of root :class:`~repro.obs.tracer.Span` objects.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator, Mapping

from repro.obs.telemetry import LatencyHistogram, Telemetry
from repro.obs.tracer import Span, Tracer

__all__ = [
    "chrome_trace_events",
    "to_chrome_json",
    "write_chrome_trace",
    "iter_flat_events",
    "write_jsonl",
    "format_tree",
    "prometheus_text",
]


def _roots(trace: Tracer | Iterable[Span]) -> list[Span]:
    """Normalize a tracer-or-spans argument to a list of root spans."""
    if isinstance(trace, Tracer):
        return list(trace.roots)
    return list(trace)


def _earliest_start(roots: list[Span]) -> float:
    """The minimum start time over the whole forest (0.0 if empty)."""
    starts = [root.start for root in roots]
    return min(starts) if starts else 0.0


def chrome_trace_events(
    trace: Tracer | Iterable[Span], workers: int | None = None
) -> list[dict]:
    """The span forest as Trace Event Format complete events.

    Timestamps are microseconds relative to the earliest span, so the
    viewer's timeline starts at zero.  Each event carries the span's
    attributes and counters under ``args``.  A span with a ``worker``
    attribute (chunk spans) is emitted on ``tid = worker + 1``; all
    other spans share ``tid = 0`` — Chrome renders nesting per ``tid``
    from the timestamps alone, so rows stay readable.

    ``workers`` pins the ``tid`` rows for pool backends whose chunk
    spans carry the *chunk index* as the ``worker`` attribute (the
    socket backend's virtual workers): with ``workers=W`` the tid is
    the stable virtual-worker index ``(worker % W) + 1``, never a
    pid and never unbounded in the chunk count.
    """
    roots = _roots(trace)
    epoch = _earliest_start(roots)
    events: list[dict] = []

    def emit(current: Span, tid: int) -> None:
        own_tid = tid
        worker = current.attrs.get("worker")
        if isinstance(worker, int):
            if workers is not None and workers > 0:
                own_tid = (worker % workers) + 1
            else:
                own_tid = worker + 1
        end = current.end if current.end is not None else current.start
        args: dict = {}
        if current.attrs:
            args.update(current.attrs)
        if current.counters:
            args["counters"] = dict(current.counters)
        events.append(
            {
                "name": current.name,
                "cat": "repro",
                "ph": "X",
                "ts": round((current.start - epoch) * 1e6, 3),
                "dur": round((end - current.start) * 1e6, 3),
                "pid": 0,
                "tid": own_tid,
                "args": args,
            }
        )
        for child in current.children:
            emit(child, own_tid)

    for root in roots:
        emit(root, 0)
    return events


def to_chrome_json(
    trace: Tracer | Iterable[Span], workers: int | None = None
) -> dict:
    """The full ``chrome://tracing``-loadable document."""
    return {
        "traceEvents": chrome_trace_events(trace, workers=workers),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }


def write_chrome_trace(
    trace: Tracer | Iterable[Span],
    target: str | IO[str],
    workers: int | None = None,
) -> None:
    """Write the Chrome tracing JSON document to a path or stream."""
    document = to_chrome_json(trace, workers=workers)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
            handle.write("\n")
    else:
        json.dump(document, target)
        target.write("\n")


def iter_flat_events(
    trace: Tracer | Iterable[Span],
) -> Iterator[dict]:
    """Yield one flat dict per span, preorder.

    Each event carries ``name``, the ``/``-joined ``path`` from its
    root, ``depth``, start/end/duration in seconds (relative to the
    earliest span), and the span's attributes and counters.
    """
    roots = _roots(trace)
    epoch = _earliest_start(roots)

    def emit(current: Span, path: str, depth: int) -> Iterator[dict]:
        end = current.end if current.end is not None else current.start
        yield {
            "name": current.name,
            "path": path,
            "depth": depth,
            "start": round(current.start - epoch, 9),
            "end": round(end - epoch, 9),
            "duration": round(end - current.start, 9),
            "attrs": current.attrs,
            "counters": current.counters,
        }
        for child in current.children:
            yield from emit(child, f"{path}/{child.name}", depth + 1)

    for root in roots:
        yield from emit(root, root.name, 0)


def write_jsonl(
    trace: Tracer | Iterable[Span], target: str | IO[str]
) -> None:
    """Write the flat event log, one JSON object per line."""
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            for event in iter_flat_events(trace):
                handle.write(json.dumps(event))
                handle.write("\n")
    else:
        for event in iter_flat_events(trace):
            target.write(json.dumps(event))
            target.write("\n")


def _prom_name(name: str) -> str:
    """A dotted telemetry name as a legal Prometheus metric name."""
    return "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )


def prometheus_text(
    telemetry: "Telemetry | Mapping",
) -> str:
    """A telemetry snapshot in Prometheus text exposition format.

    Accepts a live :class:`~repro.obs.telemetry.Telemetry` or a
    snapshot dict (as returned by the servers' ``telemetry`` op).
    Histograms are exposed as ``repro_<name>_seconds`` with
    cumulative ``le`` buckets (bucket upper bounds converted from
    nanoseconds to seconds) plus ``_sum`` and ``_count``; rate
    counters as ``repro_<name>_total``; uptime as the
    ``repro_uptime_seconds`` gauge.
    """
    if isinstance(telemetry, Telemetry):
        snapshot = telemetry.snapshot(events=0)
    else:
        snapshot = telemetry
    lines: list[str] = []
    uptime = snapshot.get("uptime_seconds", 0.0)
    lines.append(
        "# HELP repro_uptime_seconds Seconds since telemetry started."
    )
    lines.append("# TYPE repro_uptime_seconds gauge")
    lines.append(f"repro_uptime_seconds {uptime}")
    for name, payload in snapshot.get("histograms", {}).items():
        metric = f"repro_{_prom_name(name)}_seconds"
        histogram = LatencyHistogram.from_dict(payload)
        lines.append(f"# HELP {metric} Latency of {name}.")
        lines.append(f"# TYPE {metric} histogram")
        for upper_ns, cumulative in histogram.cumulative_buckets():
            lines.append(
                f'{metric}_bucket{{le="{upper_ns / 1e9:.9f}"}} '
                f"{cumulative}"
            )
        lines.append(
            f'{metric}_bucket{{le="+Inf"}} {histogram.count}'
        )
        lines.append(f"{metric}_sum {histogram.sum_ns / 1e9:.9f}")
        lines.append(f"{metric}_count {histogram.count}")
    for name, payload in snapshot.get("counters", {}).items():
        metric = f"repro_{_prom_name(name)}_total"
        lines.append(f"# HELP {metric} Total {name} events.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {payload['total']}")
    return "\n".join(lines) + "\n"


def format_tree(
    trace: Tracer | Iterable[Span],
    max_counters: int = 6,
) -> str:
    """The human-readable summary tree (the ``--trace-summary`` view).

    One line per span: indented name, duration in milliseconds,
    attributes, and up to ``max_counters`` counters (the rest
    summarized as ``+N more``).
    """
    lines: list[str] = []

    def emit(current: Span, depth: int) -> None:
        indent = "  " * depth
        parts = [f"{indent}{current.name}"]
        parts.append(f"{current.duration * 1e3:.2f}ms")
        if current.attrs:
            rendered = " ".join(
                f"{key}={value}"
                for key, value in current.attrs.items()
            )
            parts.append(rendered)
        if current.counters:
            shown = sorted(current.counters.items())
            rendered = " ".join(
                f"{name}={value}" for name, value in shown[:max_counters]
            )
            if len(shown) > max_counters:
                rendered += f" +{len(shown) - max_counters} more"
            parts.append(f"[{rendered}]")
        lines.append("  ".join(parts))
        for child in current.children:
            emit(child, depth + 1)

    for root in _roots(trace):
        emit(root, 0)
    return "\n".join(lines)

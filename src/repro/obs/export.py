"""Trace exporters: Chrome tracing JSON, flat JSONL, summary tree.

Three views of one span tree, for three audiences:

* :func:`write_chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` / Perfetto: one complete (``"ph": "X"``) event
  per span, microsecond timestamps normalized to the earliest span,
  worker chunks on their own ``tid`` rows so per-worker rewrite
  activity lines up visually against the parent's checks.
* :func:`write_jsonl` — one JSON object per line per span, preorder,
  with the materialized ``path`` from the root; greppable and
  streamable into any log pipeline.
* :func:`format_tree` — the human ``--stats``-style summary: an
  indented tree of span names, durations, attributes and counters.

All exporters accept either a :class:`~repro.obs.tracer.Tracer` or a
list of root :class:`~repro.obs.tracer.Span` objects.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator

from repro.obs.tracer import Span, Tracer

__all__ = [
    "chrome_trace_events",
    "to_chrome_json",
    "write_chrome_trace",
    "iter_flat_events",
    "write_jsonl",
    "format_tree",
]


def _roots(trace: Tracer | Iterable[Span]) -> list[Span]:
    """Normalize a tracer-or-spans argument to a list of root spans."""
    if isinstance(trace, Tracer):
        return list(trace.roots)
    return list(trace)


def _earliest_start(roots: list[Span]) -> float:
    """The minimum start time over the whole forest (0.0 if empty)."""
    starts = [root.start for root in roots]
    return min(starts) if starts else 0.0


def chrome_trace_events(trace: Tracer | Iterable[Span]) -> list[dict]:
    """The span forest as Trace Event Format complete events.

    Timestamps are microseconds relative to the earliest span, so the
    viewer's timeline starts at zero.  Each event carries the span's
    attributes and counters under ``args``.  A span with a ``worker``
    attribute (chunk spans) is emitted on ``tid = worker + 1``; all
    other spans share ``tid = 0`` — Chrome renders nesting per ``tid``
    from the timestamps alone, so rows stay readable.
    """
    roots = _roots(trace)
    epoch = _earliest_start(roots)
    events: list[dict] = []

    def emit(current: Span, tid: int) -> None:
        own_tid = tid
        worker = current.attrs.get("worker")
        if isinstance(worker, int):
            own_tid = worker + 1
        end = current.end if current.end is not None else current.start
        args: dict = {}
        if current.attrs:
            args.update(current.attrs)
        if current.counters:
            args["counters"] = dict(current.counters)
        events.append(
            {
                "name": current.name,
                "cat": "repro",
                "ph": "X",
                "ts": round((current.start - epoch) * 1e6, 3),
                "dur": round((end - current.start) * 1e6, 3),
                "pid": 0,
                "tid": own_tid,
                "args": args,
            }
        )
        for child in current.children:
            emit(child, own_tid)

    for root in roots:
        emit(root, 0)
    return events


def to_chrome_json(trace: Tracer | Iterable[Span]) -> dict:
    """The full ``chrome://tracing``-loadable document."""
    return {
        "traceEvents": chrome_trace_events(trace),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }


def write_chrome_trace(
    trace: Tracer | Iterable[Span], target: str | IO[str]
) -> None:
    """Write the Chrome tracing JSON document to a path or stream."""
    document = to_chrome_json(trace)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
            handle.write("\n")
    else:
        json.dump(document, target)
        target.write("\n")


def iter_flat_events(
    trace: Tracer | Iterable[Span],
) -> Iterator[dict]:
    """Yield one flat dict per span, preorder.

    Each event carries ``name``, the ``/``-joined ``path`` from its
    root, ``depth``, start/end/duration in seconds (relative to the
    earliest span), and the span's attributes and counters.
    """
    roots = _roots(trace)
    epoch = _earliest_start(roots)

    def emit(current: Span, path: str, depth: int) -> Iterator[dict]:
        end = current.end if current.end is not None else current.start
        yield {
            "name": current.name,
            "path": path,
            "depth": depth,
            "start": round(current.start - epoch, 9),
            "end": round(end - epoch, 9),
            "duration": round(end - current.start, 9),
            "attrs": current.attrs,
            "counters": current.counters,
        }
        for child in current.children:
            yield from emit(child, f"{path}/{child.name}", depth + 1)

    for root in roots:
        yield from emit(root, root.name, 0)


def write_jsonl(
    trace: Tracer | Iterable[Span], target: str | IO[str]
) -> None:
    """Write the flat event log, one JSON object per line."""
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            for event in iter_flat_events(trace):
                handle.write(json.dumps(event))
                handle.write("\n")
    else:
        for event in iter_flat_events(trace):
            target.write(json.dumps(event))
            target.write("\n")


def format_tree(
    trace: Tracer | Iterable[Span],
    max_counters: int = 6,
) -> str:
    """The human-readable summary tree (the ``--trace-summary`` view).

    One line per span: indented name, duration in milliseconds,
    attributes, and up to ``max_counters`` counters (the rest
    summarized as ``+N more``).
    """
    lines: list[str] = []

    def emit(current: Span, depth: int) -> None:
        indent = "  " * depth
        parts = [f"{indent}{current.name}"]
        parts.append(f"{current.duration * 1e3:.2f}ms")
        if current.attrs:
            rendered = " ".join(
                f"{key}={value}"
                for key, value in current.attrs.items()
            )
            parts.append(rendered)
        if current.counters:
            shown = sorted(current.counters.items())
            rendered = " ".join(
                f"{name}={value}" for name, value in shown[:max_counters]
            )
            if len(shown) > max_counters:
                rendered += f" +{len(shown) - max_counters} more"
            parts.append(f"[{rendered}]")
        lines.append("  ".join(parts))
        for child in current.children:
            emit(child, depth + 1)

    for root in _roots(trace):
        emit(root, 0)
    return "\n".join(lines)

"""Proof-coverage recording: *what* a verification run exercised.

A green report says every check passed; this module records what the
checks actually visited, so a pass can be audited for vacuity:

* **Equation dispatch cells** — the rewrite engine reports, per
  ``(query, constructor)`` pair, how often a top-level evaluation
  dispatched into the cell and which equations fired inside it.  The
  universe of cells is ``queries × (updates ∪ initials)``; a cell with
  no equation is a *sufficient-completeness hole* (Section 4.4a), and
  a cell whose equations never fired is dead weight the bounded sweeps
  never exercised.
* **State-graph census** — per BFS depth, how many states were
  discovered and how many transitions left them: the frontier
  saturation curve that shows whether exploration exhausted the space
  or was truncated mid-growth.
* **W-grammar usage** — per-hyperrule application counts and
  per-metanotion membership-query counts from the schema recognizer.

The recorder follows the tracer's one-branch discipline
(:data:`repro.obs.tracer.OBS_STATE`): hot paths poll
``COV_STATE.enabled`` — one attribute load and one branch when
coverage is off — and only then touch the recorder.

**Determinism.**  Everything exported here is invariant under the
worker count and under cache warmth, by construction:

* per-engine *sets* of fired equations and touched cells union-merge
  to the serial sets (the set of memo-missed terms is the set of
  needed terms, and need distributes over workload unions), while raw
  per-engine fire *counts* would not (forked memos overlap) — so
  counts of equation firings are deliberately **not** exported;
* top-level dispatch counts are sums over the exact workload
  partition, hence partition-invariant;
* the census is computed from the merged
  :class:`~repro.algebraic.algebra.StateGraph`, which is identical at
  every worker count;
* W-grammar usage is recorded at the recognizer's membership call
  sites, not inside the (memoized) membership recursion, so counts do
  not depend on cache warmth.

Merging is a commutative monoid (sums and unions), so per-check and
per-chunk payloads can be folded in any order; the pipeline stores a
payload per check and replays it on a cache hit, making warm coverage
byte-identical to cold.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from typing import Any, Mapping

__all__ = [
    "CoverageRecorder",
    "COV_STATE",
    "coverage_enabled",
    "enable_coverage",
    "disable_coverage",
    "activate_coverage",
    "capture_coverage",
    "state_graph_census",
    "coverage_document",
    "coverage_digest",
    "invariant_payload",
    "payload_digest",
    "coverage_json",
]

#: Separator between query and constructor in serialized cell keys
#: (both are identifiers, so ``|`` cannot collide).
_CELL_SEP = "|"


class CoverageRecorder:
    """Accumulates the coverage facts of one scope (a run, a check, a
    worker chunk).

    Attributes:
        dispatch: top-level evaluation counts per ``(query,
            constructor)`` cell (partition-invariant).
        hyperrules: W-grammar rule-application counts by rule label.
        metanotions: membership-query counts by metanotion name.
        explore: the state-graph census of the run's exploration, or
            ``None`` while no explore has been recorded.

    Per-equation fire sets (which Q-/U-equation indices fired inside
    each dispatch cell; union-invariant) are exposed through the
    stable accessors :meth:`fire_set`, :meth:`fire_sets`,
    :meth:`u_fire_set` and :meth:`u_fire_sets`.  The legacy ``fired``
    / ``fired_u`` attributes still resolve to the internal mutable
    dicts but emit :class:`DeprecationWarning`.
    """

    __slots__ = (
        "dispatch",
        "_fired",
        "_fired_u",
        "hyperrules",
        "metanotions",
        "explore",
    )

    def __init__(self) -> None:
        self.dispatch: dict[tuple[str, str], int] = {}
        self._fired: dict[tuple[str, str], set[int]] = {}
        self._fired_u: dict[str, set[int]] = {}
        self.hyperrules: dict[str, int] = {}
        self.metanotions: dict[str, int] = {}
        self.explore: dict | None = None

    # ------------------------------------------------------------------
    # per-equation fire sets (the stable public interface)
    # ------------------------------------------------------------------
    def fire_set(
        self, query: str, constructor: str
    ) -> frozenset[int]:
        """The Q-equation indices (into ``spec.equations``) recorded as
        fired inside the ``(query, constructor)`` dispatch cell; empty
        when the cell was never entered."""
        return frozenset(self._fired.get((query, constructor), ()))

    def fire_sets(self) -> dict[tuple[str, str], frozenset[int]]:
        """Every non-empty per-cell Q-equation fire set, as an
        immutable copy (the interface the delta explorer and external
        tools consume)."""
        return {
            cell: frozenset(indices)
            for cell, indices in self._fired.items()
        }

    def u_fire_set(self, constructor: str) -> frozenset[int]:
        """The U-equation indices recorded as fired on a constructor."""
        return frozenset(self._fired_u.get(constructor, ()))

    def u_fire_sets(self) -> dict[str, frozenset[int]]:
        """Every non-empty per-constructor U-equation fire set, as an
        immutable copy."""
        return {
            name: frozenset(indices)
            for name, indices in self._fired_u.items()
        }

    @property
    def fired(self) -> dict[tuple[str, str], set[int]]:
        """Deprecated: the internal per-cell fire-set dict.  Use
        :meth:`fire_set` / :meth:`fire_sets` instead."""
        warnings.warn(
            "CoverageRecorder.fired is deprecated; use fire_set() / "
            "fire_sets()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._fired

    @property
    def fired_u(self) -> dict[str, set[int]]:
        """Deprecated: the internal per-constructor U-fire-set dict.
        Use :meth:`u_fire_set` / :meth:`u_fire_sets` instead."""
        warnings.warn(
            "CoverageRecorder.fired_u is deprecated; use u_fire_set() "
            "/ u_fire_sets()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._fired_u

    # ------------------------------------------------------------------
    # recording (hot paths; called only when COV_STATE.enabled)
    # ------------------------------------------------------------------
    def record_dispatch(self, query: str, constructor: str) -> None:
        """Count one top-level evaluation entering a dispatch cell."""
        key = (query, constructor)
        dispatch = self.dispatch
        dispatch[key] = dispatch.get(key, 0) + 1

    def record_fire(
        self, query: str, constructor: str, index: int
    ) -> None:
        """Mark Q-equation ``index`` as fired inside a cell."""
        key = (query, constructor)
        fired = self._fired.get(key)
        if fired is None:
            fired = self._fired[key] = set()
        fired.add(index)

    def record_u_fire(self, constructor: str, index: int) -> None:
        """Mark U-equation ``index`` as fired on a constructor."""
        fired = self._fired_u.get(constructor)
        if fired is None:
            fired = self._fired_u[constructor] = set()
        fired.add(index)

    def record_hyperrule(self, label: str) -> None:
        """Count one admissible application of a W-grammar hyperrule."""
        rules = self.hyperrules
        rules[label] = rules.get(label, 0) + 1

    def record_metanotion(self, name: str) -> None:
        """Count one membership query against a metanotion."""
        metas = self.metanotions
        metas[name] = metas.get(name, 0) + 1

    def record_explore(self, census: dict) -> None:
        """Attach a state-graph census (first census wins: each
        application explores once per run, cold or replayed)."""
        if self.explore is None:
            self.explore = census

    # ------------------------------------------------------------------
    # merging and serialization
    # ------------------------------------------------------------------
    def merge(self, other: "CoverageRecorder") -> None:
        """Fold another recorder in (sum counts, union sets)."""
        for key, value in other.dispatch.items():
            self.dispatch[key] = self.dispatch.get(key, 0) + value
        for key, indices in other._fired.items():
            self._fired.setdefault(key, set()).update(indices)
        for name, indices in other._fired_u.items():
            self._fired_u.setdefault(name, set()).update(indices)
        for name, value in other.hyperrules.items():
            self.hyperrules[name] = self.hyperrules.get(name, 0) + value
        for name, value in other.metanotions.items():
            self.metanotions[name] = (
                self.metanotions.get(name, 0) + value
            )
        if other.explore is not None:
            self.record_explore(other.explore)

    def merge_payload(self, payload: Mapping[str, Any]) -> None:
        """Fold a serialized recorder in (the cache-replay and
        worker-chunk merge path)."""
        self.merge(CoverageRecorder.from_payload(payload))

    def to_payload(self) -> dict:
        """A JSON-portable rendering (sets become sorted lists; cell
        keys become ``"query|constructor"`` strings)."""
        return {
            "dispatch": {
                _CELL_SEP.join(key): value
                for key, value in sorted(self.dispatch.items())
            },
            "fired": {
                _CELL_SEP.join(key): sorted(indices)
                for key, indices in sorted(self._fired.items())
            },
            "fired_u": {
                name: sorted(indices)
                for name, indices in sorted(self._fired_u.items())
            },
            "hyperrules": dict(sorted(self.hyperrules.items())),
            "metanotions": dict(sorted(self.metanotions.items())),
            "explore": self.explore,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "CoverageRecorder":
        """Rebuild a recorder serialized by :meth:`to_payload`."""
        recorder = cls()
        for key, value in payload.get("dispatch", {}).items():
            query, _, constructor = key.partition(_CELL_SEP)
            recorder.dispatch[(query, constructor)] = int(value)
        for key, indices in payload.get("fired", {}).items():
            query, _, constructor = key.partition(_CELL_SEP)
            recorder._fired[(query, constructor)] = {
                int(i) for i in indices
            }
        for name, indices in payload.get("fired_u", {}).items():
            recorder._fired_u[name] = {int(i) for i in indices}
        for name, value in payload.get("hyperrules", {}).items():
            recorder.hyperrules[name] = int(value)
        for name, value in payload.get("metanotions", {}).items():
            recorder.metanotions[name] = int(value)
        explore = payload.get("explore")
        if explore is not None:
            recorder.explore = explore
        return recorder

    def is_empty(self) -> bool:
        """True iff nothing has been recorded yet."""
        return not (
            self.dispatch
            or self._fired
            or self._fired_u
            or self.hyperrules
            or self.metanotions
            or self.explore is not None
        )


# ---------------------------------------------------------------------
# the process-wide switch (mirrors repro.obs.tracer.OBS_STATE)
# ---------------------------------------------------------------------
class _CovState:
    """The module-level switch hot paths poll: one attribute load and
    one branch when coverage is disabled."""

    __slots__ = ("enabled", "recorder")

    def __init__(self) -> None:
        self.enabled = False
        self.recorder: CoverageRecorder | None = None


#: The process-wide coverage switch.  Hot paths read
#: ``COV_STATE.enabled`` inline; forked workers inherit it.
COV_STATE = _CovState()


def coverage_enabled() -> bool:
    """True iff coverage recording is on in this process."""
    return COV_STATE.enabled


def enable_coverage(
    recorder: CoverageRecorder | None = None,
) -> CoverageRecorder:
    """Turn coverage recording on (creating a recorder if none is
    given) and return the active recorder."""
    state = COV_STATE
    state.recorder = recorder if recorder is not None else CoverageRecorder()
    state.enabled = True
    return state.recorder


def disable_coverage() -> CoverageRecorder | None:
    """Turn coverage recording off; returns the recorder that was
    active."""
    state = COV_STATE
    previous = state.recorder
    state.enabled = False
    state.recorder = None
    return previous


class _CovActivation:
    """Context manager scoping :func:`enable_coverage`, restoring
    whatever state was active before (re-entrant, like the tracer's
    ``activate``)."""

    __slots__ = ("_recorder", "_saved")

    def __init__(self, recorder: CoverageRecorder | None):
        self._recorder = recorder
        self._saved: tuple[bool, CoverageRecorder | None] | None = None

    def __enter__(self) -> CoverageRecorder:
        state = COV_STATE
        self._saved = (state.enabled, state.recorder)
        return enable_coverage(self._recorder)

    def __exit__(self, exc_type, exc, tb) -> bool:
        state = COV_STATE
        state.enabled, state.recorder = self._saved
        return False


def activate_coverage(
    recorder: CoverageRecorder | None = None,
) -> _CovActivation:
    """Scoped coverage: enable for the block, restore afterwards."""
    return _CovActivation(recorder)


class _CovCapture:
    """Context manager giving a block its own fresh recorder.

    With ``merge=True`` the captured facts are folded into the
    previously active recorder on exit (the per-check isolation the
    result cache needs: each check's payload is a function of that
    check alone, not of schedule context).  With ``merge=False`` the
    facts are *only* in the capture (the worker-chunk path: the parent
    merges the shipped payload exactly once, and the in-process
    fallback must not double-count).
    """

    __slots__ = ("_merge", "_saved", "recorder")

    def __init__(self, merge: bool):
        self._merge = merge
        self._saved: CoverageRecorder | None = None
        self.recorder: CoverageRecorder | None = None

    def __enter__(self) -> CoverageRecorder:
        state = COV_STATE
        self._saved = state.recorder
        self.recorder = CoverageRecorder()
        state.recorder = self.recorder
        return self.recorder

    def __exit__(self, exc_type, exc, tb) -> bool:
        state = COV_STATE
        state.recorder = self._saved
        if self._merge and self._saved is not None:
            self._saved.merge(self.recorder)
        return False


def capture_coverage(merge: bool = True) -> _CovCapture:
    """Run a block under a fresh, isolated recorder.

    Only call when coverage is enabled.  See :class:`_CovCapture` for
    the ``merge`` discipline.
    """
    return _CovCapture(merge)


# ---------------------------------------------------------------------
# state-graph census
# ---------------------------------------------------------------------
def state_graph_census(graph) -> dict:
    """Per-depth census of an explored state graph.

    Breadth-first from the initial snapshot over the graph's adjacency
    (the same discovery order exploration used, so the census is
    identical for every worker count).  Each level reports the states
    *discovered* at that depth (the frontier), the transitions leaving
    them (including back and cross edges), and the cumulative state
    count — the frontier saturation curve.  The final level always has
    zero new states unless the graph was truncated mid-growth.
    """
    depths: dict = {graph.initial: 0}
    frontier = [graph.initial]
    levels: list[dict] = []
    cumulative = 1
    depth = 0
    while frontier:
        edges = 0
        discovered = []
        for snapshot in frontier:
            for transition in graph.successors(snapshot):
                edges += 1
                if transition.target not in depths:
                    depths[transition.target] = depth + 1
                    discovered.append(transition.target)
        levels.append(
            {
                "depth": depth,
                "frontier": len(frontier),
                "transitions": edges,
                "cumulative_states": cumulative,
            }
        )
        cumulative += len(discovered)
        frontier = discovered
        depth += 1
    return {
        "states": len(graph.states),
        "transitions": len(graph.transitions),
        "truncated": bool(graph.truncated),
        "depth": len(levels) - 1 if levels else 0,
        "levels": levels,
    }


# ---------------------------------------------------------------------
# the coverage document (what coverage.json serializes)
# ---------------------------------------------------------------------
def coverage_document(
    recorder: CoverageRecorder,
    spec,
    application: str | None = None,
    params: Mapping[str, Any] | None = None,
    grammar_labels: list[str] | None = None,
    checks: list[dict] | None = None,
) -> dict:
    """Assemble the machine-readable coverage document.

    Args:
        recorder: the run's merged coverage facts.
        spec: the :class:`~repro.algebraic.spec.AlgebraicSpec` whose
            signature fixes the dispatch-cell universe.
        application: application name recorded in the document.
        params: the run's parameter bounds (depths, state caps).
        grammar_labels: every hyperrule label of the grammar used, so
            unused rules can be listed (omitted when ``None``).
        checks: per-check provenance records
            (:func:`repro.obs.provenance.pipeline_provenance`).

    The document contains only worker-count- and cache-warmth-
    invariant data; serialize with :func:`coverage_json` for the
    byte-stable emission.
    """
    signature = spec.signature
    constructors = [s.name for s in signature.updates] + [
        s.name for s in signature.initials
    ]
    queries = [s.name for s in signature.queries]

    cells = []
    covered = uncovered = missing = 0
    for query in queries:
        for constructor in constructors:
            equations = spec.equations_for(query, constructor)
            fired = recorder.fire_set(query, constructor)
            entries = []
            for equation in equations:
                index = _equation_index(spec, equation)
                entries.append(
                    {
                        "index": index,
                        "label": equation.label,
                        "fired": index in fired,
                    }
                )
            if not equations:
                status = "missing"
                missing += 1
            elif fired:
                status = "covered"
                covered += 1
            else:
                status = "uncovered"
                uncovered += 1
            cells.append(
                {
                    "query": query,
                    "constructor": constructor,
                    "status": status,
                    "dispatches": recorder.dispatch.get(
                        (query, constructor), 0
                    ),
                    "equations": entries,
                }
            )

    equations = []
    for index, equation in enumerate(spec.equations):
        if equation.is_q_equation:
            kind = "Q"
            fired_flag = any(
                index in indices
                for indices in recorder.fire_sets().values()
            )
        else:
            kind = "U"
            fired_flag = any(
                index in indices
                for indices in recorder.u_fire_sets().values()
            )
        equations.append(
            {
                "index": index,
                "kind": kind,
                "label": equation.label,
                "rule": equation.describe(),
                "fired": fired_flag,
            }
        )

    total = len(cells)
    rewrite = {
        "cells": cells,
        "equations": equations,
        "summary": {
            "total_cells": total,
            "covered": covered,
            "uncovered": uncovered,
            "missing": missing,
            "coverage": round(covered / total, 6) if total else 1.0,
            "uncovered_cells": sorted(
                f"{cell['query']}({cell['constructor']})"
                for cell in cells
                if cell["status"] != "covered"
            ),
        },
    }

    wgrammar: dict[str, Any] = {
        "hyperrules": dict(sorted(recorder.hyperrules.items())),
        "metanotions": dict(sorted(recorder.metanotions.items())),
    }
    if grammar_labels is not None:
        wgrammar["unused_hyperrules"] = sorted(
            set(grammar_labels) - set(recorder.hyperrules)
        )

    document: dict[str, Any] = {
        "format": 1,
        "application": application,
        "params": dict(sorted((params or {}).items())),
        "rewrite": rewrite,
        "explore": recorder.explore,
        "wgrammar": wgrammar,
    }
    document["digest"] = coverage_digest(document)
    if checks is not None:
        document["checks"] = checks
    return document


def _equation_index(spec, equation) -> int:
    """Index of ``equation`` within ``spec.equations`` (by identity —
    ``equations_for`` returns the declaration objects themselves)."""
    for index, candidate in enumerate(spec.equations):
        if candidate is equation:
            return index
    return -1


def coverage_digest(document: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical rendering of the invariant sections
    (everything except the digest itself and the provenance records,
    which embed digests of their own)."""
    core = {
        key: value
        for key, value in document.items()
        if key not in ("digest", "checks")
    }
    canonical = json.dumps(core, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def invariant_payload(payload: Mapping[str, Any]) -> dict:
    """The worker-count-invariant projection of one *per-check*
    recorder payload.

    Per-check fired-equation sets depend on rewrite-memo warmth at the
    moment the check starts, and memo state evolves differently under
    serial and forked execution — only their union over the whole run
    is invariant.  Per-check dispatch counts, the census, and the
    W-grammar usage are exact for any partition, so provenance records
    digest this projection.
    """
    return {
        "dispatch": payload.get("dispatch", {}),
        "hyperrules": payload.get("hyperrules", {}),
        "metanotions": payload.get("metanotions", {}),
        "explore": payload.get("explore"),
    }


def payload_digest(payload: Mapping[str, Any]) -> str:
    """SHA-256 over the invariant projection of one per-check recorder
    payload (the coverage digest provenance records carry)."""
    canonical = json.dumps(
        invariant_payload(payload),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def coverage_json(document: Mapping[str, Any] | list) -> str:
    """The byte-stable JSON emission of one document (or a list of
    per-application documents): sorted keys, fixed separators."""
    return json.dumps(document, sort_keys=True, indent=2) + "\n"

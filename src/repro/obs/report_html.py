"""Self-contained HTML rendering of coverage documents.

One static page per run — inline CSS, no scripts, no external assets —
so the artifact can be archived next to ``coverage.json`` and opened
anywhere (CI artifact viewers included).  The page renders, per
application: the equation-dispatch-cell matrix (covered / uncovered /
missing), the per-equation fire table, the frontier saturation curve
of the state-graph census, W-grammar usage, and the per-check
provenance records with any counterexample witnesses.

Rendering is a pure function of the documents, so the HTML inherits
their byte-stability across worker counts and cache warmth.
"""

from __future__ import annotations

from html import escape
from typing import Any, Iterable, Mapping

__all__ = ["coverage_html"]

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
       color: #1a1a2e; }
h1 { border-bottom: 2px solid #1a1a2e; padding-bottom: .3rem; }
h2 { margin-top: 2.2rem; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #ccc; padding: .3rem .6rem;
         text-align: left; font-size: .9rem; }
th { background: #f0f0f5; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.covered { background: #d8f3dc; }
.uncovered { background: #ffe0e0; font-weight: bold; }
.missing { background: #eee; color: #888; }
.ok { color: #2d6a4f; font-weight: bold; }
.fail { color: #c1121f; font-weight: bold; }
.skip { color: #888; }
.summary { font-size: 1.05rem; }
.bar { display: inline-block; height: .7rem; background: #4895ef;
       vertical-align: middle; }
code, pre { font-family: ui-monospace, 'SF Mono', Menlo, monospace;
            font-size: .85rem; }
pre.witness { background: #fff4f4; border-left: 3px solid #c1121f;
              padding: .5rem .8rem; overflow-x: auto; }
.digest { color: #888; font-size: .78rem; word-break: break-all; }
"""


def _cell_matrix(rewrite: Mapping[str, Any]) -> str:
    """The (query, constructor) dispatch-cell matrix as a table."""
    cells = rewrite["cells"]
    queries: list[str] = []
    constructors: list[str] = []
    by_key: dict[tuple[str, str], Mapping[str, Any]] = {}
    for cell in cells:
        if cell["query"] not in queries:
            queries.append(cell["query"])
        if cell["constructor"] not in constructors:
            constructors.append(cell["constructor"])
        by_key[(cell["query"], cell["constructor"])] = cell
    head = "".join(
        f"<th>{escape(constructor)}</th>" for constructor in constructors
    )
    rows = []
    for query in queries:
        tds = []
        for constructor in constructors:
            cell = by_key[(query, constructor)]
            status = cell["status"]
            if status == "missing":
                text = "&mdash;"
            else:
                fired = sum(
                    1 for entry in cell["equations"] if entry["fired"]
                )
                text = (
                    f"{fired}/{len(cell['equations'])} eq &middot; "
                    f"{cell['dispatches']} disp"
                )
            title = f"{escape(query)}({escape(constructor)}): {status}"
            tds.append(
                f'<td class="{status}" title="{title}">{text}</td>'
            )
        rows.append(
            f"<tr><th>{escape(query)}</th>{''.join(tds)}</tr>"
        )
    return (
        "<table><tr><th>query \\ constructor</th>"
        + head
        + "</tr>"
        + "".join(rows)
        + "</table>"
    )


def _equation_table(rewrite: Mapping[str, Any]) -> str:
    """Per-equation fire table."""
    rows = []
    for equation in rewrite["equations"]:
        fired = (
            '<span class="ok">fired</span>'
            if equation["fired"]
            else '<span class="fail">never fired</span>'
        )
        rows.append(
            f"<tr><td class=\"num\">{equation['index']}</td>"
            f"<td>{equation['kind']}</td>"
            f"<td>{escape(equation['label'] or '')}</td>"
            f"<td><code>{escape(equation['rule'])}</code></td>"
            f"<td>{fired}</td></tr>"
        )
    return (
        "<table><tr><th>#</th><th>kind</th><th>label</th>"
        "<th>rule</th><th>status</th></tr>" + "".join(rows) + "</table>"
    )


def _census_table(explore: Mapping[str, Any] | None) -> str:
    """Frontier saturation curve of the state-graph census."""
    if explore is None:
        return "<p>No exploration recorded.</p>"
    peak = max(
        (level["frontier"] for level in explore["levels"]), default=1
    )
    rows = []
    for level in explore["levels"]:
        width = max(2, round(160 * level["frontier"] / peak))
        rows.append(
            f"<tr><td class=\"num\">{level['depth']}</td>"
            f"<td class=\"num\">{level['frontier']}</td>"
            f"<td class=\"num\">{level['transitions']}</td>"
            f"<td class=\"num\">{level['cumulative_states']}</td>"
            f'<td><span class="bar" style="width:{width}px"></span>'
            "</td></tr>"
        )
    truncated = (
        ' <span class="fail">(truncated by the state cap)</span>'
        if explore["truncated"]
        else " (saturated: the frontier emptied)"
    )
    return (
        f"<p>{explore['states']} states, "
        f"{explore['transitions']} transitions, "
        f"depth {explore['depth']}{truncated}</p>"
        "<table><tr><th>depth</th><th>frontier</th>"
        "<th>transitions</th><th>cumulative</th><th></th></tr>"
        + "".join(rows)
        + "</table>"
    )


def _wgrammar_table(wgrammar: Mapping[str, Any]) -> str:
    """Hyperrule and metanotion usage tables."""
    parts = []
    rows = "".join(
        f"<tr><td><code>{escape(label)}</code></td>"
        f'<td class="num">{count}</td></tr>'
        for label, count in wgrammar["hyperrules"].items()
    )
    if rows:
        parts.append(
            "<table><tr><th>hyperrule</th><th>applications</th></tr>"
            + rows
            + "</table>"
        )
    unused = wgrammar.get("unused_hyperrules")
    if unused:
        labels = ", ".join(f"<code>{escape(u)}</code>" for u in unused)
        parts.append(f"<p>Unused hyperrules: {labels}</p>")
    elif unused is not None:
        parts.append("<p>Every hyperrule was applied.</p>")
    rows = "".join(
        f"<tr><td><code>{escape(name)}</code></td>"
        f'<td class="num">{count}</td></tr>'
        for name, count in wgrammar["metanotions"].items()
    )
    if rows:
        parts.append(
            "<table><tr><th>metanotion</th>"
            "<th>membership queries</th></tr>" + rows + "</table>"
        )
    if not parts:
        parts.append("<p>No W-grammar activity recorded.</p>")
    return "".join(parts)


def _provenance_section(checks: Iterable[Mapping[str, Any]]) -> str:
    """Per-check provenance records with witnesses."""
    rows = []
    witnesses_html = []
    for check in checks:
        if check.get("aborted"):
            verdict = '<span class="skip">aborted</span>'
        elif check.get("skipped"):
            verdict = '<span class="skip">skipped</span>'
        elif check.get("ok"):
            verdict = '<span class="ok">ok</span>'
        else:
            verdict = '<span class="fail">FAILED</span>'
        params = ", ".join(
            f"{key}={value}"
            for key, value in check.get("params", {}).items()
        )
        digest = check.get("coverage_digest") or ""
        rows.append(
            f"<tr><td>{escape(check['name'])}</td>"
            f"<td>{escape(check.get('title', ''))}</td>"
            f"<td>{verdict}</td>"
            f"<td><code>{escape(params)}</code></td>"
            f"<td class=\"digest\">{escape(check['fingerprint'][:16])}"
            "</td>"
            f'<td class="digest">{escape(digest[:16])}</td></tr>'
        )
        for witness in check.get("witnesses", ()):
            witnesses_html.append(
                f"<h4>{escape(check['name'])}</h4>"
                f'<pre class="witness">{escape(witness)}</pre>'
            )
    table = (
        "<table><tr><th>check</th><th>title</th><th>verdict</th>"
        "<th>params</th><th>fingerprint</th><th>coverage</th></tr>"
        + "".join(rows)
        + "</table>"
    )
    if witnesses_html:
        table += "<h3>Counterexample witnesses</h3>" + "".join(
            witnesses_html
        )
    return table


def _document_section(document: Mapping[str, Any]) -> str:
    """One application's full section."""
    rewrite = document["rewrite"]
    summary = rewrite["summary"]
    name = document.get("application") or "specification"
    pct = f"{summary['coverage'] * 100:.1f}%"
    uncovered = summary["uncovered_cells"]
    if uncovered:
        holes = ", ".join(
            f"<code>{escape(cell)}</code>" for cell in uncovered
        )
        verdict = (
            f'<span class="fail">{pct} cell coverage</span> &mdash; '
            f"not exercised: {holes}"
        )
    else:
        verdict = (
            f'<span class="ok">{pct} cell coverage</span> &mdash; '
            "every dispatch cell exercised"
        )
    parts = [
        f"<h2>{escape(name)}</h2>",
        f'<p class="summary">{verdict}</p>',
        f"<p class=\"digest\">digest {escape(document['digest'])}</p>",
        "<h3>Equation dispatch cells</h3>",
        _cell_matrix(rewrite),
        "<h3>Equations</h3>",
        _equation_table(rewrite),
        "<h3>State-graph census</h3>",
        _census_table(document.get("explore")),
        "<h3>W-grammar usage</h3>",
        _wgrammar_table(document["wgrammar"]),
    ]
    checks = document.get("checks")
    if checks:
        parts.append("<h3>Check provenance</h3>")
        parts.append(_provenance_section(checks))
    return "".join(parts)


def coverage_html(
    documents: Mapping[str, Any] | list,
    title: str = "Proof coverage report",
) -> str:
    """Render one document (or a list of per-application documents) as
    a single self-contained HTML page."""
    if isinstance(documents, Mapping):
        documents = [documents]
    sections = "".join(
        _document_section(document) for document in documents
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>{escape(title)}</title>"
        f"<style>{_STYLE}</style></head><body>"
        f"<h1>{escape(title)}</h1>"
        f"{sections}</body></html>\n"
    )

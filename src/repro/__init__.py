"""repro — an executable reproduction of *Formal Data Base
Specification: An Eclectic Perspective* (Casanova, Veloso & Furtado,
PODS 1984).

The paper proposes specifying a database application at three levels —
information (temporal first-order logic), functions (algebraic
abstract data types) and representation (the RPR programming language,
with W-grammar syntax and denotational semantics) — each a formally
checked refinement of the previous one.  This library implements every
formalism executably and mechanizes every verification the paper does
by hand.

Quickstart::

    from repro import DesignFramework
    from repro.applications import courses

    framework = DesignFramework.from_sources(
        information=courses.courses_information(),
        algebraic=courses.courses_algebraic(),
        schema_source=courses.courses_schema_source(),
        carriers=courses.courses_information_carriers(),
        name="courses registrar",
    )
    print(framework.verify())

Subpackages:

* :mod:`repro.logic` — many-sorted first-order logic substrate.
* :mod:`repro.temporal` — modal/temporal extension, Kripke universes.
* :mod:`repro.information` — level 1: constraints and consistency.
* :mod:`repro.algebraic` — level 2: equations, rewriting, algebras.
* :mod:`repro.rpr` — level 3: the RPR language and its semantics.
* :mod:`repro.wgrammar` — two-level grammars; RPR's W-grammar.
* :mod:`repro.refinement` — the level-binding correctness checks.
* :mod:`repro.core` — the combined design framework.
* :mod:`repro.applications` — worked applications (the paper's
  courses registrar and more).
"""

from repro.core.framework import DesignFramework, FrameworkReport
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["DesignFramework", "FrameworkReport", "ReproError", "__version__"]

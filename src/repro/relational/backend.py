"""Backends executing lowered relational realizations.

:class:`Backend` is the minimal engine-facing surface — DDL scripts,
parameterless statements, scalar queries, explicit transaction
control.  SQLite (:mod:`repro.relational.sqlite`) is the first
implementation; anything speaking SQL with multi-statement
transactions can slot in behind the same interface.

:class:`RelationalDatabase` is the engine-independent orchestrator:
it lowers one application's specification to a schema, seeds the
initial state from the trace algebra's initial snapshot, compiles and
caches one transaction program per ground update instance, and runs
the §4.4 guard / stage / check / apply protocol against whichever
backend it was given.  Its :meth:`snapshot` returns the same interned
:class:`~repro.algebraic.algebra.Snapshot` objects the trace algebra
produces, so snapshot equality *is* agreement on every observation —
the property the differential oracle leans on.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Iterable

from repro.errors import IncompletenessError, RelationalError
from repro.algebraic.algebra import Snapshot
from repro.algebraic.compiler import Cell
from repro.algebraic.description import StructuredDescription
from repro.algebraic.spec import AlgebraicSpec
from repro.obs.telemetry import TEL_STATE as _TEL
from repro.obs.tracer import OBS_STATE as _OBS, span as _span
from repro.relational.lowering import (
    GuardLowering,
    TransactionLowerer,
    TransactionProgram,
)

__all__ = ["Backend", "RelationalDatabase", "build_database"]


class Backend(ABC):
    """Abstract SQL execution engine.

    Implementations own a single connection; the orchestrator drives
    transactions explicitly through :meth:`begin` / :meth:`commit` /
    :meth:`rollback`, so autocommit must be off (or emulated).
    """

    #: Engine name, for reporting ("sqlite", ...).
    name: str = "abstract"

    @abstractmethod
    def execute(self, sql: str) -> None:
        """Run one statement for effect."""

    @abstractmethod
    def query_value(self, sql: str) -> object:
        """Run one scalar query and return the single value."""

    @abstractmethod
    def query_rows(self, sql: str) -> list[tuple]:
        """Run a query and return all result rows."""

    @abstractmethod
    def begin(self) -> None:
        """Open a transaction."""

    @abstractmethod
    def commit(self) -> None:
        """Commit the open transaction."""

    @abstractmethod
    def rollback(self) -> None:
        """Abort the open transaction."""

    @abstractmethod
    def close(self) -> None:
        """Release the connection."""

    def execute_script(self, statements: Iterable[str]) -> None:
        """Run a statement sequence for effect (DDL, seeding)."""
        for statement in statements:
            self.execute(statement)


class RelationalDatabase:
    """One application's level-3 realization on a SQL backend.

    Args:
        spec: the algebraic specification to lower.
        backend: the SQL engine (e.g.
            :class:`~repro.relational.sqlite.SQLiteBackend`).
        descriptions: structured descriptions; their preconditions
            become pre-transaction guards (omit for raw trace
            semantics).
        guard: an optional compiled
            :class:`~repro.runtime.guards.AdmissionGuard` whose
            decision tables are stored and auditable via
            :meth:`check_constraints`.
        lowerer: an optional :class:`TransactionLowerer` override —
            the oracle's deliberately-wrong fixture injects one here.
        initial: the initial-state constant's name.

    Raises:
        RelationalError: the specification does not lower (outside
            the canonical fragment).
    """

    def __init__(
        self,
        spec: AlgebraicSpec,
        backend: Backend,
        descriptions: list[StructuredDescription] | None = None,
        guard=None,
        lowerer: TransactionLowerer | None = None,
        initial: str = "initiate",
    ):
        self.spec = spec
        self.backend = backend
        self.lowerer = lowerer or TransactionLowerer(
            spec, descriptions
        )
        self.schema = self.lowerer.schema
        self.guards = (
            GuardLowering(guard, self.schema)
            if guard is not None
            else None
        )
        self._initial = initial
        self._programs: dict[
            tuple[str, tuple[str, ...]], TransactionProgram
        ] = {}
        self.stats: dict[str, int] = {
            "programs_compiled": 0,
            "transactions": 0,
            "noops_precondition": 0,
            "queries": 0,
        }
        self._initialize()

    # ------------------------------------------------------------------
    # initialization
    # ------------------------------------------------------------------
    def _initial_entries(self):
        from repro.algebraic.algebra import TraceAlgebra

        algebra = TraceAlgebra(self.spec, initial=self._initial)
        return algebra.snapshot(algebra.initial_trace()).entries

    def _initialize(self) -> None:
        with _span(
            "relational.initialize", application=self.spec.name
        ):
            statements = list(self.schema.ddl())
            statements += self.schema.seed_sql(
                self._initial_entries()
            )
            if self.guards is not None:
                statements += self.guards.ddl()
                statements += self.guards.seed_sql()
            self.backend.begin()
            try:
                self.backend.execute_script(statements)
            except Exception:
                self.backend.rollback()
                raise
            self.backend.commit()

    # ------------------------------------------------------------------
    # programs
    # ------------------------------------------------------------------
    def program(
        self, update: str, params: tuple[str, ...]
    ) -> TransactionProgram:
        """The (cached) transaction program of one update instance."""
        key = (update, tuple(params))
        cached = self._programs.get(key)
        if cached is not None:
            return cached
        with _span(
            "relational.compile", update=update, params=params
        ):
            program = self.lowerer.lower(update, tuple(params))
        self._programs[key] = program
        self.stats["programs_compiled"] += 1
        if _OBS.enabled:
            _OBS.tracer.count("relational.programs.compiled")
        return program

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def apply(self, update: str, *params: str) -> bool:
        """Run one update's transaction program.

        Returns:
            True when the transaction committed; False when the §4.4
            precondition guard evaluated false and the update was a
            no-op (the trace semantics of a failing precondition).

        Raises:
            IncompletenessError: a staged cell had no firing dispatch
                entry (sufficient-completeness failure; the
                transaction rolls back).
            RelationalError: the instance does not lower, or the
                backend failed mid-transaction (after rollback).
        """
        program = self.program(update, tuple(params))
        if program.precondition_sql is not None:
            admitted = self.backend.query_value(
                program.precondition_sql
            )
            if not admitted:
                self.stats["noops_precondition"] += 1
                if _OBS.enabled:
                    _OBS.tracer.count(
                        "relational.noops.precondition"
                    )
                return False
        t0 = time.perf_counter_ns() if _TEL.enabled else 0
        self.backend.begin()
        try:
            for _query, statement in program.stages:
                self.backend.execute(statement)
            for query, check in program.checks:
                missing = self.backend.query_value(check)
                if missing:
                    raise IncompletenessError(
                        f"no equation applies to {missing} cell(s) "
                        f"of {query} under "
                        f"{update}({', '.join(params)})"
                    )
            for statement in program.applies:
                self.backend.execute(statement)
            for statement in program.cleanups:
                self.backend.execute(statement)
        except IncompletenessError:
            self.backend.rollback()
            raise
        except Exception as exc:
            self.backend.rollback()
            raise RelationalError(
                f"backend {self.backend.name} failed applying "
                f"{update}({', '.join(params)}): {exc}"
            ) from exc
        self.backend.commit()
        self.stats["transactions"] += 1
        if _OBS.enabled:
            _OBS.tracer.count("relational.transactions")
        if t0:
            _TEL.telemetry.observe(
                f"relational.txn.{update}",
                time.perf_counter_ns() - t0,
                counter="relational.transactions",
                update=update,
                backend=self.backend.name,
            )
        return True

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def query(self, query: str, *params: str):
        """One observation's current value, decoded."""
        cell: Cell = (query, tuple(params))
        raw = self.backend.query_value(
            "SELECT " + self.schema.cell_subquery(cell)
        )
        self.stats["queries"] += 1
        return self.schema.decode(query, raw)

    def snapshot(self) -> Snapshot:
        """The whole state as an interned
        :class:`~repro.algebraic.algebra.Snapshot` (directly
        comparable to trace-algebra snapshots)."""
        entries = []
        for symbol in self.schema.signature.queries:
            table = self.schema.table_for_query(symbol.name)
            keys = table.primary_key
            select = ", ".join(
                [f'"{k}"' for k in keys] + ["value"]
            )
            for row in self.backend.query_rows(
                f'SELECT {select} FROM "{symbol.name}"'
            ):
                params = tuple(str(v) for v in row[:-1])
                value = self.schema.decode(symbol.name, row[-1])
                entries.append(((symbol.name, params), value))
        return Snapshot(tuple(sorted(entries)))

    # ------------------------------------------------------------------
    # constraint auditing
    # ------------------------------------------------------------------
    def check_constraints(self) -> list[str]:
        """Audit the live state against the stored decision tables
        (transition tables on the identity step) and any untabulated
        guard groups (checked through their closures over a
        SQL-backed cell reader).  Returns human-readable failure
        descriptions; an empty list means the state is consistent.
        """
        if self.guards is None:
            return []
        failures: list[str] = []
        for kind, index, sql in self.guards.audit_queries():
            if not self.backend.query_value(sql):
                failures.append(
                    f"{kind} decision table {index}: live valuation "
                    "not in the stored allowed set"
                )
        get = self._cell_reader
        for table in self.guards.fallback_static:
            for instance in table.members:
                if not instance.closure(get):
                    failures.append(str(instance.violation()))
        for table in self.guards.fallback_transition:
            gets = (get, get)
            for instance in table.members:
                if not instance.closure(gets):
                    failures.append(str(instance.violation()))
        return failures

    def _cell_reader(self, cell: Cell):
        raw = self.backend.query_value(
            "SELECT " + self.schema.cell_subquery(cell)
        )
        return self.schema.decode(cell[0], raw)

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def compile_sql_script(
        self, include_programs: bool = True
    ) -> str:
        """The whole realization as portable SQL text: DDL, initial
        state, stored guard tables, and (optionally) every update
        instance's transaction program."""
        sections = [
            f"-- relational realization of {self.spec.name}",
            "-- generated by repro.relational "
            "(spec -> schema + transaction programs)",
            "",
        ]
        sections.extend(s + ";" for s in self.schema.ddl())
        sections.append("")
        sections.extend(
            s + ";"
            for s in self.schema.seed_sql(self._initial_entries())
        )
        if self.guards is not None:
            sections.append("")
            sections.extend(s + ";" for s in self.guards.ddl())
            sections.extend(
                s + ";" for s in self.guards.seed_sql()
            )
            sections.append("")
            for kind, index, sql in self.guards.audit_queries():
                sections.append(
                    f"-- audit ({kind} table {index}):"
                )
                sections.append(sql + ";")
        if include_programs:
            from repro.algebraic.algebra import TraceAlgebra

            algebra = TraceAlgebra(self.spec, initial=self._initial)
            for update, params in algebra.update_instances():
                sections.append("")
                sections.append(
                    self.program(update, params).script()
                )
        return "\n".join(sections) + "\n"

    def close(self) -> None:
        """Release the backend connection."""
        self.backend.close()


def build_database(
    application: str,
    backend: Backend | None = None,
    with_guard: bool = True,
) -> RelationalDatabase:
    """Lower one shipped application onto a backend (SQLite in-memory
    by default) — the registry-driven convenience the CLI and the
    oracle use.

    Args:
        application: a name from
            :func:`repro.runtime.apps.available_applications`.
        backend: the engine; default is in-memory SQLite.
        with_guard: also compile, store and audit the admission
            guard's decision tables.
    """
    from repro.runtime.apps import build_app
    from repro.runtime.guards import AdmissionGuard
    from repro.relational.sqlite import SQLiteBackend

    app = build_app(application)
    framework = app.framework
    guard = None
    if with_guard:
        guard = AdmissionGuard(
            framework.information,
            framework.algebraic,
            framework.carriers,
            framework.interpretation,
        )
    return RelationalDatabase(
        framework.algebraic,
        backend or SQLiteBackend(),
        descriptions=app.descriptions,
        guard=guard,
    )

"""SQLite as the first concrete relational backend.

The standard library's :mod:`sqlite3` in autocommit mode
(``isolation_level=None``) with explicit ``BEGIN`` / ``COMMIT`` /
``ROLLBACK`` — the orchestrator, not the driver, decides transaction
boundaries, because a lowered transaction program *is* a transaction
(stage, check, apply, clean must be atomic).  Foreign-key enforcement
is switched on so the schema's domain references are live
constraints, not documentation.
"""

from __future__ import annotations

import sqlite3

from repro.errors import RelationalError
from repro.relational.backend import Backend

__all__ = ["SQLiteBackend"]


class SQLiteBackend(Backend):
    """A SQLite connection implementing the :class:`Backend` surface.

    Args:
        path: database location; the default ``":memory:"`` is a
            fresh private database (what the oracle and the tests
            use).

    Raises:
        RelationalError: the database file could not be opened.
    """

    name = "sqlite"

    def __init__(self, path: str = ":memory:"):
        self.path = path
        try:
            self._connection = sqlite3.connect(
                path, isolation_level=None
            )
        except sqlite3.Error as exc:
            raise RelationalError(
                f"cannot open SQLite database {path!r}: {exc}"
            ) from exc
        self._connection.execute("PRAGMA foreign_keys = ON")

    def execute(self, sql: str) -> None:
        """Run one statement for effect."""
        self._connection.execute(sql)

    def query_value(self, sql: str) -> object:
        """Run one scalar query and return the single value."""
        row = self._connection.execute(sql).fetchone()
        if row is None:
            raise RelationalError(
                f"scalar query returned no row: {sql}"
            )
        return row[0]

    def query_rows(self, sql: str) -> list[tuple]:
        """Run a query and return all result rows."""
        return self._connection.execute(sql).fetchall()

    def begin(self) -> None:
        """Open an explicit transaction."""
        self._connection.execute("BEGIN")

    def commit(self) -> None:
        """Commit the open transaction."""
        self._connection.execute("COMMIT")

    def rollback(self) -> None:
        """Abort the open transaction."""
        self._connection.execute("ROLLBACK")

    def close(self) -> None:
        """Close the connection."""
        self._connection.close()

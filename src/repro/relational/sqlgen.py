"""Ground L2 terms and formulas lowered to SQL scalar expressions.

This is the SQL twin of :mod:`repro.algebraic.compiler`: the same
canonical fragment, the same grounding environments, but the target
representation is a SQL expression over the relational schema of
:mod:`repro.relational.schema` instead of a Python closure over a cell
reader.  The correspondence is exact:

=====================================  ==============================
closure compiler                       SQL lowering
=====================================  ==============================
``get((query, values))``               scalar subquery on the query's
                                       table, ``WHERE`` pinned to the
                                       ground parameter values
Boolean constants ``True``/``False``   the integers ``1``/``0``
connectives / equality tests           ``AND``/``OR``/``NOT``/``=``
interpreted parameter functions        scalar subquery on the stored
                                       function table (the shipped
                                       bank realizes arithmetic as a
                                       stored ``NEXT`` relation — the
                                       lowering generalizes exactly
                                       that move)
quantifiers                            unrolled over the finite
                                       parameter domains into
                                       ``AND``/``OR`` chains
=====================================  ==============================

Because every query table is total (one row per ground cell, value
column ``NOT NULL``), the scalar subqueries can never produce SQL
``NULL``, so three-valued logic never diverges from the two-valued
closure semantics.

Anything outside the fragment raises
:class:`~repro.algebraic.compiler.UnsupportedTermError`, exactly like
the closure compiler — callers translate it into a
:class:`~repro.errors.RelationalError`.
"""

from __future__ import annotations

from repro.algebraic.compiler import (
    Cell,
    DomainOf,
    UnsupportedTermError,
    compile_ground_term,
)
from repro.algebraic.signature import AlgebraicSignature
from repro.logic import formulas as fm
from repro.logic.sorts import BOOLEAN, STATE
from repro.logic.terms import App, Term, Var

__all__ = [
    "lower_formula",
    "lower_term",
    "quote_identifier",
    "quote_literal",
]


def quote_identifier(name: str) -> str:
    """Quote a SQL identifier (doubling embedded double quotes)."""
    return '"' + name.replace('"', '""') + '"'


def quote_literal(value: str) -> str:
    """Quote a SQL text literal (doubling embedded single quotes)."""
    return "'" + value.replace("'", "''") + "'"


def _encode_value(value) -> str:
    """A Python carrier value as a SQL literal: booleans become the
    integers the value columns store, strings become text literals."""
    if isinstance(value, bool):
        return "1" if value else "0"
    return quote_literal(str(value))


def lower_term(
    term: Term,
    env: dict[Var, str],
    schema,
) -> tuple[str, frozenset[Cell]]:
    """Lower a ground-under-``env`` L2 term to a SQL expression.

    Args:
        term: a term of parameter or Boolean sort, in the canonical
            fragment (query applications at the bare pre-state
            variable, read-free query arguments).
        env: values for every non-state free variable of ``term``.
        schema: the :class:`~repro.relational.schema.RelationalSchema`
            naming the tables the expression reads.

    Returns:
        ``(sql, reads)`` — the scalar SQL expression (Boolean-sorted
        terms evaluate to the integers 0/1) and the cells it reads.

    Raises:
        UnsupportedTermError: outside the canonical fragment.
    """
    sql, reads = _lower_term(term, env, schema)
    return sql, frozenset(reads)


def _lower_term(
    term: Term, env: dict[Var, str], schema
) -> tuple[str, set[Cell]]:
    signature: AlgebraicSignature = schema.signature
    if isinstance(term, Var):
        if term.sort == STATE:
            raise UnsupportedTermError(
                "a bare state variable is not a value term"
            )
        try:
            value = env[term]
        except KeyError:
            raise UnsupportedTermError(
                f"unbound variable {term} in SQL lowering"
            ) from None
        return _encode_value(value), set()
    if not isinstance(term, App):
        raise UnsupportedTermError(f"not a lowerable term: {term!r}")

    symbol = term.symbol
    name = symbol.name
    if symbol.result_sort == BOOLEAN and name in ("True", "False"):
        return ("1" if name == "True" else "0"), set()

    if signature.is_query(symbol):
        state_arg = term.args[-1]
        if not isinstance(state_arg, Var) or state_arg.sort != STATE:
            raise UnsupportedTermError(
                f"query {name} is not applied to the pre-state "
                "variable; only single-state right-hand sides lower"
            )
        values = []
        for arg in term.args[:-1]:
            # Parameter arguments must be read-free (the closure
            # compiler enforces the same), so the cell — and hence the
            # subquery's WHERE clause — is known at lowering time.
            closure, reads = compile_ground_term(arg, env, signature)
            if reads:
                raise UnsupportedTermError(
                    f"query {name} has a state-dependent parameter "
                    "argument; its cell is not statically known"
                )
            values.append(str(closure(None)))
        cell: Cell = (name, tuple(values))
        return schema.cell_subquery(cell), {cell}

    if signature.is_connective(symbol):
        if name == "not":
            one, reads = _lower_term(term.args[0], env, schema)
            return f"(NOT {one})", reads
        lhs, lreads = _lower_term(term.args[0], env, schema)
        rhs, rreads = _lower_term(term.args[1], env, schema)
        return _combine_sql(name, lhs, rhs), lreads | rreads

    if signature.is_equality_test(symbol):
        lhs, lreads = _lower_term(term.args[0], env, schema)
        rhs, rreads = _lower_term(term.args[1], env, schema)
        return f"({lhs} = {rhs})", lreads | rreads

    if signature.interpretation(name) is not None:
        parts = [_lower_term(arg, env, schema) for arg in term.args]
        reads: set[Cell] = set()
        for _, sub_reads in parts:
            reads |= sub_reads
        return (
            schema.function_subquery(name, [sql for sql, _ in parts]),
            reads,
        )

    if symbol.is_constant and symbol.result_sort != STATE:
        return _encode_value(name), set()

    raise UnsupportedTermError(
        f"cannot lower {term}: {name} is neither a connective, "
        "equality test, interpreted function, parameter name, nor "
        "query on the pre-state"
    )


def _combine_sql(name: str, lhs: str, rhs: str) -> str:
    if name == "and":
        return f"({lhs} AND {rhs})"
    if name == "or":
        return f"({lhs} OR {rhs})"
    if name == "implies":
        return f"((NOT {lhs}) OR {rhs})"
    if name == "iff":
        return f"(({lhs}) = ({rhs}))"
    raise UnsupportedTermError(f"unknown connective {name!r}")


def lower_formula(
    formula: fm.Formula,
    env: dict[Var, str],
    schema,
    domain_of: DomainOf | None = None,
) -> tuple[str, frozenset[Cell]]:
    """Lower a (single-state) formula to a SQL Boolean expression.

    Quantifiers are unrolled over ``domain_of(var.sort)`` (defaulting
    to the signature's parameter domains) exactly like
    :func:`~repro.algebraic.compiler.compile_ground_formula`;
    equalities are over L2 terms and lower through :func:`lower_term`.

    Returns ``(sql, reads)``.
    """
    domain_of = domain_of or schema.signature.domain
    sql, reads = _lower_formula(formula, env, schema, domain_of)
    return sql, frozenset(reads)


def _lower_formula(
    formula: fm.Formula,
    env: dict[Var, str],
    schema,
    domain_of: DomainOf,
) -> tuple[str, set[Cell]]:
    if isinstance(formula, fm.TrueF):
        return "1", set()
    if isinstance(formula, fm.FalseF):
        return "0", set()
    if isinstance(formula, fm.Equals):
        lhs, lreads = _lower_term(formula.lhs, env, schema)
        rhs, rreads = _lower_term(formula.rhs, env, schema)
        return f"({lhs} = {rhs})", lreads | rreads
    if isinstance(formula, fm.Not):
        body, reads = _lower_formula(
            formula.body, env, schema, domain_of
        )
        return f"(NOT {body})", reads
    if isinstance(formula, (fm.And, fm.Or, fm.Implies, fm.Iff)):
        lhs, lreads = _lower_formula(
            formula.lhs, env, schema, domain_of
        )
        rhs, rreads = _lower_formula(
            formula.rhs, env, schema, domain_of
        )
        name = {
            fm.And: "and",
            fm.Or: "or",
            fm.Implies: "implies",
            fm.Iff: "iff",
        }[type(formula)]
        return _combine_sql(name, lhs, rhs), lreads | rreads
    if isinstance(formula, (fm.Forall, fm.Exists)):
        var = formula.var
        conjunctive = isinstance(formula, fm.Forall)
        parts: list[str] = []
        reads: set[Cell] = set()
        for value in domain_of(var.sort):
            inner = dict(env)
            inner[var] = value
            sql, sub_reads = _lower_formula(
                formula.body, inner, schema, domain_of
            )
            parts.append(sql)
            reads |= sub_reads
        if not parts:
            return ("1" if conjunctive else "0"), set()
        if len(parts) == 1:
            return parts[0], reads
        joiner = " AND " if conjunctive else " OR "
        return f"({joiner.join(parts)})", reads
    raise UnsupportedTermError(
        f"cannot lower formula construct {formula!r}"
    )

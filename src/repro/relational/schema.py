"""Observation queries and carriers mapped to relational tables.

The paper's algebraic level is representation-independent: a state is
*only* the value of every simple observation (Section 4.1's
observability condition).  The relational realization takes that
literally — the schema has one table per query function::

    q: <s1, ..., sn, state, r>   ⇒   TABLE q (
        <s1 column>, ..., <sn column>,   -- the ground parameters
        value,                           -- the observation's value
        PRIMARY KEY (<s1>, ..., <sn>))

with one row per ground cell, so the table is **total**: every
parameter combination is present and ``value`` is never NULL.  Key
constraints carry the representation invariants: the primary key is
the paper's functionality of observation (one value per cell), foreign
keys pin every parameter column to its sort's domain table, and a
``CHECK`` constraint restricts ``value`` to the query's result domain
(Booleans are stored as the integers 0/1).

Three kinds of auxiliary tables complete the schema:

* **domain tables** ``_dom_<sort>`` — one row per declared parameter
  name (the finite carriers, stored);
* **function tables** ``_fn_<name>`` — interpreted parameter functions
  materialized over their finite argument domains, generalizing the
  shipped bank design where level-3 arithmetic is a stored ``NEXT``
  successor relation;
* **staging tables** ``_stage_<query>`` — per-transaction scratch
  space for the two-phase update programs of
  :mod:`repro.relational.lowering` (stage against the pre-state, then
  apply), which is how the programs reproduce the trace semantics'
  simultaneous-assignment reading of the Q-equations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RelationalError
from repro.algebraic.compiler import Cell
from repro.algebraic.spec import AlgebraicSpec
from repro.logic.sorts import BOOLEAN, Sort
from repro.relational.sqlgen import quote_identifier, quote_literal

__all__ = ["Column", "RelationalSchema", "TableDef"]

#: Prefixes of the auxiliary (non-observation) tables.
DOMAIN_PREFIX = "_dom_"
FUNCTION_PREFIX = "_fn_"
STAGE_PREFIX = "_stage_"


@dataclass(frozen=True)
class Column:
    """One column of a lowered table.

    Attributes:
        name: the column name.
        affinity: the declared SQL type (``TEXT`` or ``INTEGER``).
        check: an optional per-column ``CHECK`` expression.
        references: an optional ``(table, column)`` foreign-key
            target.
    """

    name: str
    affinity: str = "TEXT"
    check: str | None = None
    references: tuple[str, str] | None = None

    def definition(self) -> str:
        """The column's fragment of a ``CREATE TABLE`` statement."""
        parts = [quote_identifier(self.name), self.affinity, "NOT NULL"]
        if self.check is not None:
            parts.append(f"CHECK ({self.check})")
        if self.references is not None:
            table, column = self.references
            parts.append(
                f"REFERENCES {quote_identifier(table)} "
                f"({quote_identifier(column)})"
            )
        return " ".join(parts)


@dataclass(frozen=True)
class TableDef:
    """One lowered table: name, columns, keys and provenance.

    Attributes:
        name: the table name.
        columns: the ordered column definitions.
        primary_key: names of the primary-key columns (may be empty
            for a parameterless query's single-row table).
        kind: ``"query"``, ``"domain"``, ``"function"`` or
            ``"stage"``.
        comment: one-line provenance, emitted as a SQL comment above
            the ``CREATE TABLE``.
        nullable_value: staging tables allow NULL values (an unsealed
            dispatch stages NULL, which the completeness check turns
            into an :class:`~repro.errors.IncompletenessError`).
    """

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = ()
    kind: str = "query"
    comment: str = ""
    nullable_value: bool = False

    def create_sql(self) -> str:
        """The ``CREATE TABLE`` statement."""
        lines = []
        for column in self.columns:
            definition = column.definition()
            if self.nullable_value and column.name == "value":
                definition = definition.replace(" NOT NULL", "")
            lines.append("  " + definition)
        if self.primary_key:
            keys = ", ".join(
                quote_identifier(k) for k in self.primary_key
            )
            lines.append(f"  PRIMARY KEY ({keys})")
        body = ",\n".join(lines)
        head = ""
        if self.comment:
            head = f"-- {self.comment}\n"
        return (
            f"{head}CREATE TABLE {quote_identifier(self.name)} (\n"
            f"{body}\n)"
        )


def _value_column(
    result_sort: Sort, domain: tuple[str, ...] | None
) -> Column:
    if result_sort == BOOLEAN:
        return Column("value", "INTEGER", check="value IN (0, 1)")
    literals = ", ".join(quote_literal(v) for v in domain or ())
    return Column(
        "value",
        "TEXT",
        check=f"value IN ({literals})" if literals else None,
        references=(DOMAIN_PREFIX + result_sort.name, "value"),
    )


class RelationalSchema:
    """The relational lowering of one algebraic specification's
    observation schema.

    Args:
        spec: the algebraic specification whose queries, parameter
            sorts and interpreted functions define the tables.

    Raises:
        RelationalError: on a name collision between two lowered
            tables (cannot happen for signatures whose query names are
            distinct, which the signature already enforces).
    """

    def __init__(self, spec: AlgebraicSpec):
        self.spec = spec
        self.signature = spec.signature
        self._tables: dict[str, TableDef] = {}
        self._query_tables: dict[str, TableDef] = {}
        self._build_domain_tables()
        self._build_function_tables()
        self._build_query_tables()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _add(self, table: TableDef) -> None:
        if table.name in self._tables:
            raise RelationalError(
                f"table name collision lowering the schema: "
                f"{table.name!r}"
            )
        self._tables[table.name] = table

    def _build_domain_tables(self) -> None:
        for sort in self.signature.parameter_sorts:
            self._add(
                TableDef(
                    DOMAIN_PREFIX + sort.name,
                    (Column("value", "TEXT"),),
                    ("value",),
                    kind="domain",
                    comment=(
                        f"carrier of parameter sort {sort.name} "
                        f"({len(self.signature.domain(sort))} values)"
                    ),
                )
            )

    def _build_function_tables(self) -> None:
        for name in self.signature.interpreted_functions:
            symbol = self.signature.logic.function(name)
            columns = []
            for i, sort in enumerate(symbol.arg_sorts):
                columns.append(self._argument_column(f"a{i}", sort))
            domain = (
                None
                if symbol.result_sort == BOOLEAN
                else self.signature.domain(symbol.result_sort)
            )
            columns.append(_value_column(symbol.result_sort, domain))
            self._add(
                TableDef(
                    FUNCTION_PREFIX + name,
                    tuple(columns),
                    tuple(f"a{i}" for i in range(len(symbol.arg_sorts))),
                    kind="function",
                    comment=(
                        f"interpreted parameter function {name}: "
                        + " x ".join(s.name for s in symbol.arg_sorts)
                        + f" -> {symbol.result_sort.name}, stored"
                    ),
                )
            )

    def _argument_column(self, name: str, sort: Sort) -> Column:
        if sort == BOOLEAN:
            return Column(name, "INTEGER", check=f"{name} IN (0, 1)")
        return Column(
            name, "TEXT", references=(DOMAIN_PREFIX + sort.name, "value")
        )

    def _build_query_tables(self) -> None:
        for symbol in self.signature.queries:
            param_sorts = symbol.arg_sorts[:-1]
            taken = {"value"}
            columns: list[Column] = []
            names: list[str] = []
            for sort in param_sorts:
                base = sort.name
                name = base
                counter = 2
                while name in taken:
                    name = f"{base}{counter}"
                    counter += 1
                taken.add(name)
                names.append(name)
                columns.append(self._argument_column(name, sort))
            domain = (
                None
                if symbol.result_sort == BOOLEAN
                else self.signature.domain(symbol.result_sort)
            )
            columns.append(_value_column(symbol.result_sort, domain))
            table = TableDef(
                symbol.name,
                tuple(columns),
                tuple(names),
                kind="query",
                comment=(
                    f"observation query {symbol.name}: "
                    + (
                        " x ".join(s.name for s in param_sorts)
                        + " -> "
                        if param_sorts
                        else "-> "
                    )
                    + symbol.result_sort.name
                    + " (one row per ground cell, total)"
                ),
            )
            self._add(table)
            self._query_tables[symbol.name] = table
            stage = TableDef(
                STAGE_PREFIX + symbol.name,
                tuple(
                    Column(c.name, c.affinity) for c in columns
                ),
                tuple(names),
                kind="stage",
                comment=(
                    f"per-transaction staging for {symbol.name} "
                    "(stage against the pre-state, then apply)"
                ),
                nullable_value=True,
            )
            self._add(stage)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def tables(self) -> tuple[TableDef, ...]:
        """Every lowered table, in creation order."""
        return tuple(self._tables.values())

    def table_for_query(self, query: str) -> TableDef:
        """The observation table of one query.

        Raises:
            RelationalError: for an undeclared query.
        """
        try:
            return self._query_tables[query]
        except KeyError:
            raise RelationalError(
                f"no table lowered for query {query!r}"
            ) from None

    def stage_table_for(self, query: str) -> str:
        """The staging table's name for one query."""
        self.table_for_query(query)
        return STAGE_PREFIX + query

    def key_columns(self, query: str) -> tuple[str, ...]:
        """The parameter (primary key) columns of a query's table."""
        return self.table_for_query(query).primary_key

    # ------------------------------------------------------------------
    # value encoding
    # ------------------------------------------------------------------
    def is_boolean(self, query: str) -> bool:
        """True iff the query's result sort is Boolean."""
        return self.signature.query(query).result_sort == BOOLEAN

    def encode(self, query: str, value) -> object:
        """A Python observation value as its stored representation."""
        if self.is_boolean(query):
            return int(bool(value))
        return str(value)

    def decode(self, query: str, raw) -> object:
        """A stored value back as the Python observation value."""
        if self.is_boolean(query):
            return bool(raw)
        return str(raw)

    # ------------------------------------------------------------------
    # SQL fragments
    # ------------------------------------------------------------------
    def cell_predicate(
        self, cell: Cell, alias: str | None = None
    ) -> str:
        """The ``WHERE`` conjunction pinning a table to one ground
        cell (empty string for a parameterless query)."""
        query, values = cell
        prefix = f"{quote_identifier(alias)}." if alias else ""
        parts = [
            f"{prefix}{quote_identifier(column)} = "
            + quote_literal(value)
            for column, value in zip(self.key_columns(query), values)
        ]
        return " AND ".join(parts)

    def cell_subquery(self, cell: Cell) -> str:
        """The scalar subquery reading one cell's current value."""
        query, _values = cell
        table = quote_identifier(query)
        predicate = self.cell_predicate(cell)
        where = f" WHERE {predicate}" if predicate else ""
        return f"(SELECT value FROM {table}{where})"

    def function_subquery(self, name: str, args: list[str]) -> str:
        """The scalar subquery applying a stored function table."""
        table = quote_identifier(FUNCTION_PREFIX + name)
        predicate = " AND ".join(
            f"{quote_identifier(f'a{i}')} = {sql}"
            for i, sql in enumerate(args)
        )
        where = f" WHERE {predicate}" if predicate else ""
        return f"(SELECT value FROM {table}{where})"

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def ddl(self) -> tuple[str, ...]:
        """The ``CREATE TABLE`` statements, dependency-ordered."""
        order = {"domain": 0, "function": 1, "query": 2, "stage": 3}
        tables = sorted(
            self._tables.values(),
            key=lambda t: (order[t.kind], t.name),
        )
        return tuple(table.create_sql() for table in tables)

    def seed_sql(self, entries) -> tuple[str, ...]:
        """``INSERT`` statements loading the carriers, the stored
        function tables, and one initial-state row per ground cell.

        Args:
            entries: the initial snapshot's
                ``((query, params), value)`` pairs (from
                :meth:`repro.algebraic.algebra.TraceAlgebra.snapshot`).
        """
        statements: list[str] = []
        for sort in self.signature.parameter_sorts:
            table = quote_identifier(DOMAIN_PREFIX + sort.name)
            for value in self.signature.domain(sort):
                statements.append(
                    f"INSERT INTO {table} (value) VALUES "
                    f"({quote_literal(value)})"
                )
        statements.extend(self._function_rows())
        for (query, params), value in entries:
            table = self.table_for_query(query)
            columns = ", ".join(
                quote_identifier(c) for c in table.primary_key
            ) or None
            encoded = self.encode(query, value)
            literal = (
                str(encoded)
                if isinstance(encoded, int)
                else quote_literal(encoded)
            )
            values = [quote_literal(p) for p in params] + [literal]
            column_list = (
                f"({columns}, value)" if columns else "(value)"
            )
            statements.append(
                f"INSERT INTO {quote_identifier(query)} "
                f"{column_list} VALUES ({', '.join(values)})"
            )
        return tuple(statements)

    def _function_rows(self) -> list[str]:
        import itertools

        statements: list[str] = []
        for name in self.signature.interpreted_functions:
            symbol = self.signature.logic.function(name)
            interp = self.signature.interpretation(name)
            table = quote_identifier(FUNCTION_PREFIX + name)
            domains = []
            for sort in symbol.arg_sorts:
                if sort == BOOLEAN:
                    domains.append((False, True))
                else:
                    domains.append(self.signature.domain(sort))
            for combo in itertools.product(*domains):
                result = interp(*combo)
                row = [
                    _literal_of(argument) for argument in combo
                ] + [_literal_of(result)]
                statements.append(
                    f"INSERT INTO {table} VALUES ({', '.join(row)})"
                )
        return statements


def _literal_of(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    return quote_literal(str(value))

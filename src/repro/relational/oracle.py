"""Differential oracle: rewrite semantics vs the SQL realization.

Representation independence (paper, Section 4.1) says the algebraic
level pins down states *only* up to their observable content — so two
realizations agree exactly when every observation query answers the
same at every step.  The oracle makes that operational: it replays
one trace through both

* the **trace algebra** (conditional rewriting over ground trace
  terms — the semantics the verification pipeline checked), and
* a **relational database** (the lowered schema + transaction
  programs on a SQL backend),

and after every step compares the two full observation snapshots.
Snapshots are interned (:class:`~repro.algebraic.algebra.Snapshot`),
so the comparison literally is "identical answers on every query".
Admission must agree too: a precondition-false update has to be a
no-op on both sides.

Traces come from :meth:`DifferentialOracle.replay` (a given step
list) or :meth:`DifferentialOracle.random_trace` (seeded uniform
choice over the ground update instances, the same generator the
runtime's differential tests use).  A lowering bug — the test suite
injects one deliberately — surfaces as a :class:`Divergence` naming
the step, the update instance, and the disagreeing cells.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.algebraic.algebra import Snapshot, TraceAlgebra
from repro.algebraic.plans import UpdatePlanner
from repro.obs.tracer import OBS_STATE as _OBS, span as _span
from repro.relational.backend import RelationalDatabase

__all__ = [
    "DifferentialOracle",
    "Divergence",
    "OracleReport",
    "run_oracle",
]


@dataclass(frozen=True)
class Divergence:
    """One disagreement between the two realizations.

    Attributes:
        step: 0-based index of the diverging step in the trace.
        update: the update applied at that step.
        params: its ground parameters.
        kind: ``"admission"`` (one side admitted, the other
            no-opped) or ``"snapshot"`` (observation answers
            differ).
        detail: human-readable explanation.
        cells: the observation cells that disagree (snapshot
            divergences only).
    """

    step: int
    update: str
    params: tuple[str, ...]
    kind: str
    detail: str
    cells: tuple = ()

    def __str__(self) -> str:
        where = f"{self.update}({', '.join(self.params)})"
        return (
            f"step {self.step} [{where}] {self.kind} divergence: "
            f"{self.detail}"
        )


@dataclass(frozen=True)
class OracleReport:
    """The outcome of one differential run.

    Attributes:
        application: the specification's name.
        backend: the SQL engine's name.
        steps: number of trace steps replayed.
        applied: steps admitted (committed) by both sides.
        noops: steps rejected by the precondition on both sides.
        divergences: disagreements found (the run stops at the
            first one).
    """

    application: str
    backend: str
    steps: int
    applied: int
    noops: int
    divergences: tuple[Divergence, ...] = field(
        default_factory=tuple
    )

    @property
    def passed(self) -> bool:
        """True when the realizations agreed at every step."""
        return not self.divergences

    def to_dict(self) -> dict:
        """JSON-ready form (what ``repro diff-oracle`` prints)."""
        return {
            "application": self.application,
            "backend": self.backend,
            "steps": self.steps,
            "applied": self.applied,
            "noops": self.noops,
            "passed": self.passed,
            "divergences": [str(d) for d in self.divergences],
        }


def _differing_cells(left: Snapshot, right: Snapshot) -> tuple:
    right_values = dict(right.entries)
    return tuple(
        cell
        for cell, value in left.entries
        if right_values.get(cell, object()) != value
    )


class DifferentialOracle:
    """Replays traces through both realizations and compares.

    Args:
        database: the relational realization under test (its
            specification also drives the trace-algebra side, so the
            two sides are lowered from the *same* object).
        seed_algebra: optionally a pre-built trace algebra (defaults
            to a fresh one over the database's spec).
    """

    def __init__(
        self,
        database: RelationalDatabase,
        seed_algebra: TraceAlgebra | None = None,
    ):
        self.database = database
        self.algebra = seed_algebra or TraceAlgebra(database.spec)
        # The lowerer's planner carries the same structured
        # descriptions the SQL side lowered, so both sides decide
        # admission from one grounding.
        self._planner: UpdatePlanner = database.lowerer.planner
        self._instances = tuple(self.algebra.update_instances())

    # ------------------------------------------------------------------
    # trace generation
    # ------------------------------------------------------------------
    def random_trace(
        self, steps: int, seed: int = 0
    ) -> list[tuple[str, tuple[str, ...]]]:
        """A seeded random step list over the ground update
        instances (uniform, like the runtime's differential
        tests)."""
        rng = random.Random(seed)
        return [
            rng.choice(self._instances) for _ in range(steps)
        ]

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def _admits(self, update, params, snapshot: Snapshot) -> bool:
        plan = self._planner.ground(update, params)
        if plan.precondition is None:
            return True
        return bool(
            plan.precondition.closure(
                lambda cell: snapshot.value(cell[0], cell[1])
            )
        )

    def replay(
        self, steps: list[tuple[str, tuple[str, ...]]]
    ) -> OracleReport:
        """Replay one step list through both sides, comparing the
        admission decision and the full snapshot after every step;
        stops at the first divergence."""
        divergences: list[Divergence] = []
        applied = 0
        noops = 0
        trace = self.algebra.initial_trace()
        with _span(
            "relational.oracle.replay",
            application=self.database.spec.name,
            steps=len(steps),
        ):
            for i, (update, params) in enumerate(steps):
                reference = self.algebra.snapshot(trace)
                admits = self._admits(update, params, reference)
                committed = self.database.apply(update, *params)
                if committed != admits:
                    divergences.append(
                        Divergence(
                            i,
                            update,
                            params,
                            "admission",
                            f"SQL side {'committed' if committed else 'no-opped'}, "
                            f"rewrite side "
                            f"{'admitted' if admits else 'rejected'}",
                        )
                    )
                    break
                if admits:
                    trace = self.algebra.apply(
                        update, *params, trace=trace
                    )
                    applied += 1
                else:
                    noops += 1
                expected = self.algebra.snapshot(trace)
                actual = self.database.snapshot()
                if actual != expected:
                    cells = _differing_cells(expected, actual)
                    shown = ", ".join(
                        f"{q}({', '.join(p)})" for q, p in cells[:5]
                    )
                    divergences.append(
                        Divergence(
                            i,
                            update,
                            params,
                            "snapshot",
                            f"{len(cells)} cell(s) disagree: "
                            f"{shown}",
                            cells,
                        )
                    )
                    break
            if _OBS.enabled:
                _OBS.tracer.count(
                    "relational.oracle.steps", applied + noops
                )
                if divergences:
                    _OBS.tracer.count(
                        "relational.oracle.divergences",
                        len(divergences),
                    )
        return OracleReport(
            self.database.spec.name,
            self.database.backend.name,
            len(steps),
            applied,
            noops,
            tuple(divergences),
        )

    def run(self, steps: int = 40, seed: int = 0) -> OracleReport:
        """Replay a seeded random trace of ``steps`` steps."""
        return self.replay(self.random_trace(steps, seed))


def run_oracle(
    application: str,
    steps: int = 40,
    seed: int = 0,
    database: RelationalDatabase | None = None,
) -> OracleReport:
    """Build one shipped application's relational realization and run
    the differential oracle against a seeded random trace (the CLI
    and CI smoke entry point).

    Args:
        application: a registry name (courses, projects, bank,
            library).
        steps: trace length.
        seed: random seed.
        database: optionally a pre-built (possibly deliberately
            mis-lowered) realization to test instead.
    """
    from repro.relational.backend import build_database

    db = database or build_database(application)
    try:
        return DifferentialOracle(db).run(steps=steps, seed=seed)
    finally:
        if database is None:
            db.close()

"""Spec→relational compiler: level 3 on a real SQL engine.

The paper's third level realizes a specification as relational
schemas plus transaction programs.  This package compiles a verified
algebraic specification (with its structured descriptions and
admission guards) down to exactly that:

* :mod:`~repro.relational.schema` — observation queries, carriers,
  interpreted functions and staging space as tables with key, domain
  and CHECK constraints;
* :mod:`~repro.relational.sqlgen` — ground L2 terms and formulas as
  SQL scalar expressions (the closure compiler's SQL twin);
* :mod:`~repro.relational.lowering` — ground update instances as
  two-phase transaction programs, §4.4 preconditions as guard
  queries, admission decision tables as stored relations with audit
  queries;
* :mod:`~repro.relational.backend` / :mod:`~repro.relational.sqlite`
  — the abstract engine surface and its SQLite implementation;
* :mod:`~repro.relational.oracle` — the differential harness
  checking, step by step, that the SQL realization answers every
  observation exactly like the rewrite semantics.
"""

from repro.relational.backend import (
    Backend,
    RelationalDatabase,
    build_database,
)
from repro.relational.lowering import (
    GuardLowering,
    TransactionLowerer,
    TransactionProgram,
)
from repro.relational.oracle import (
    DifferentialOracle,
    Divergence,
    OracleReport,
    run_oracle,
)
from repro.relational.schema import RelationalSchema
from repro.relational.sqlite import SQLiteBackend

__all__ = [
    "Backend",
    "DifferentialOracle",
    "Divergence",
    "GuardLowering",
    "OracleReport",
    "RelationalDatabase",
    "RelationalSchema",
    "SQLiteBackend",
    "TransactionLowerer",
    "TransactionProgram",
    "build_database",
    "run_oracle",
]

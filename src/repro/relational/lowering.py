"""Update instances and admission guards lowered to SQL programs.

Each ground update instance becomes a **two-phase transaction
program** over the schema of :mod:`repro.relational.schema`:

1. *Guard* — the structured description's §4.4 precondition, lowered
   to one scalar query evaluated against the pre-state.  False means
   the update is a no-op (exactly the trace semantics, where a failing
   precondition leaves the trace unchanged).
2. *Stage* — one ``INSERT`` per candidate write cell computes the
   post-state value into the query's ``_stage_`` table as a ``CASE``
   over the cell's dispatch entries (first matching condition fires,
   like the rewrite engine).  Every stage statement reads only the
   live tables, so all reads see the pre-state — the relational twin
   of the simultaneous-assignment reading the closure plans get from
   :meth:`~repro.runtime.state.MaterializedState.compute_writes`.
3. *Check* — an unsealed dispatch (no unconditional final entry) may
   stage SQL ``NULL``; a count of staged NULLs turns into
   :class:`~repro.errors.IncompletenessError`, preserving the
   sufficient-completeness failure of the trace semantics.
4. *Apply + clean* — each staged table is merged into its live table
   and emptied, all inside one transaction.

The programs come from the **same symbolic plans**
(:class:`~repro.algebraic.plans.SymbolicPlan`) the serving runtime
compiles to closures, so the two realizations cannot drift at the
grounding stage — only the expression lowering differs, and the
differential oracle (:mod:`repro.relational.oracle`) checks that.

:class:`GuardLowering` translates the admission guard's decision
tables (:class:`~repro.runtime.guards.AdmissionGuard`) into stored
membership tables plus audit queries — the level-1 constraints as
data, queryable in the backend itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RelationalError
from repro.algebraic.compiler import UnsupportedTermError
from repro.algebraic.description import StructuredDescription
from repro.algebraic.plans import GroundExpr, SymbolicPlan, UpdatePlanner
from repro.algebraic.spec import AlgebraicSpec
from repro.relational.schema import RelationalSchema
from repro.relational.sqlgen import (
    lower_formula,
    lower_term,
    quote_identifier,
    quote_literal,
)

__all__ = ["GuardLowering", "TransactionLowerer", "TransactionProgram"]


@dataclass(frozen=True)
class TransactionProgram:
    """The lowered SQL program of one ground update instance.

    Attributes:
        update: the update function's name.
        params: its ground parameter values.
        precondition_sql: the §4.4 guard as a scalar ``SELECT``
            returning 1 (admit) or 0 (no-op), or ``None`` when the
            update has no precondition.
        precondition_text: the precondition formula, printed (for
            rejection reporting).
        stages: ``(query, INSERT statement)`` pairs staging each
            written query's post-state rows against the pre-state.
        checks: ``(query, SELECT statement)`` pairs counting staged
            NULLs — a non-zero count is a sufficient-completeness
            failure.
        applies: the ``UPDATE ... FROM stage`` merge statements.
        cleanups: the ``DELETE FROM stage`` statements.
        cells: the candidate write cells (for guard re-checking and
            delta reporting).
    """

    update: str
    params: tuple[str, ...]
    precondition_sql: str | None
    precondition_text: str
    stages: tuple[tuple[str, str], ...]
    checks: tuple[tuple[str, str], ...]
    applies: tuple[str, ...]
    cleanups: tuple[str, ...]
    cells: tuple

    def script(self) -> str:
        """The whole program as annotated SQL text (what
        ``repro compile-sql`` prints)."""
        name = f"{self.update}({', '.join(self.params)})"
        lines = [f"-- transaction program: {name}"]
        if self.precondition_sql is not None:
            lines.append(
                f"-- guard (precondition: {self.precondition_text});"
                " 0 means no-op"
            )
            lines.append(self.precondition_sql + ";")
        lines.append("BEGIN;")
        for query, statement in self.stages:
            lines.append(f"-- stage {query} against the pre-state")
            lines.append(statement + ";")
        for query, statement in self.checks:
            lines.append(
                f"-- completeness check for {query}; a non-zero "
                "count aborts (IncompletenessError)"
            )
            lines.append(statement + ";")
        for statement in self.applies:
            lines.append(statement + ";")
        for statement in self.cleanups:
            lines.append(statement + ";")
        lines.append("COMMIT;")
        return "\n".join(lines)


class TransactionLowerer:
    """Compiles ground update instances to SQL transaction programs.

    Args:
        spec: the algebraic specification (shared with the serving
            runtime's planner — one grounding semantics).
        descriptions: the structured descriptions whose preconditions
            become pre-transaction guard queries; ``None`` lowers
            guard-free programs (raw trace semantics).

    The expression hooks :meth:`condition_sql` and :meth:`rhs_sql`
    are the seams the differential oracle's deliberately-wrong
    fixture overrides — everything else stays identical, proving the
    oracle detects a lowering bug rather than a harness artifact.
    """

    def __init__(
        self,
        spec: AlgebraicSpec,
        descriptions: list[StructuredDescription] | None = None,
    ):
        self.spec = spec
        self.schema = RelationalSchema(spec)
        self.planner = UpdatePlanner(spec, descriptions)

    # ------------------------------------------------------------------
    # expression hooks (overridable seams)
    # ------------------------------------------------------------------
    def condition_sql(self, condition: GroundExpr) -> str:
        """A dispatch entry's firing condition as a SQL Boolean."""
        sql, _reads = lower_formula(
            condition.node, dict(condition.env), self.schema
        )
        return sql

    def rhs_sql(self, rhs: GroundExpr) -> str:
        """A dispatch entry's right-hand side as a SQL scalar."""
        sql, _reads = lower_term(
            rhs.node, dict(rhs.env), self.schema
        )
        return sql

    def precondition_sql(self, precondition: GroundExpr) -> str:
        """The §4.4 admission guard as a 0/1 scalar query."""
        sql, _reads = lower_formula(
            precondition.node, dict(precondition.env), self.schema
        )
        return f"SELECT CASE WHEN {sql} THEN 1 ELSE 0 END"

    # ------------------------------------------------------------------
    # lowering
    # ------------------------------------------------------------------
    def lower(
        self, update: str, params: tuple[str, ...]
    ) -> TransactionProgram:
        """Lower one ground update instance.

        Raises:
            RelationalError: the instance's equations fall outside the
                canonical fragment (the closure runtime would fall
                back to the rewrite engine; SQL has no such escape
                hatch).
        """
        try:
            plan = self.planner.ground(update, tuple(params))
        except UnsupportedTermError as exc:
            raise RelationalError(
                f"cannot lower {update}{tuple(params)} to SQL: {exc}"
            ) from exc
        return self.lower_plan(plan)

    def lower_plan(self, plan: SymbolicPlan) -> TransactionProgram:
        """Lower an already-grounded symbolic plan."""
        try:
            return self._lower_plan(plan)
        except UnsupportedTermError as exc:
            raise RelationalError(
                f"cannot lower {plan.update}{plan.params} to SQL: "
                f"{exc}"
            ) from exc

    def _lower_plan(self, plan: SymbolicPlan) -> TransactionProgram:
        precondition_sql = None
        precondition_text = ""
        if plan.precondition is not None:
            precondition_sql = self.precondition_sql(plan.precondition)
            precondition_text = str(plan.precondition.node)

        # One staged row per candidate cell; every CASE reads only
        # live tables, so all reads see the pre-state.
        stages: list[tuple[str, str]] = []
        unsealed: set[str] = set()
        staged_queries: list[str] = []
        for cell, entries in plan.actions:
            query, values = cell
            if query not in staged_queries:
                staged_queries.append(query)
            dispatch, sealed = self._dispatch_sql(cell, entries)
            if not sealed:
                unsealed.add(query)
            table = self.schema.stage_table_for(query)
            key_columns = self.schema.key_columns(query)
            columns = ", ".join(
                quote_identifier(c)
                for c in (*key_columns, "value")
            )
            row = [quote_literal(v) for v in values] + [dispatch]
            stages.append(
                (
                    query,
                    f"INSERT INTO {quote_identifier(table)} "
                    f"({columns}) VALUES ({', '.join(row)})",
                )
            )

        checks = tuple(
            (
                query,
                "SELECT COUNT(*) FROM "
                + quote_identifier(self.schema.stage_table_for(query))
                + " WHERE value IS NULL",
            )
            for query in staged_queries
            if query in unsealed
        )
        applies = tuple(
            self._apply_sql(query) for query in staged_queries
        )
        cleanups = tuple(
            "DELETE FROM "
            + quote_identifier(self.schema.stage_table_for(query))
            for query in staged_queries
        )
        return TransactionProgram(
            plan.update,
            plan.params,
            precondition_sql,
            precondition_text,
            tuple(stages),
            checks,
            applies,
            cleanups,
            plan.candidate_cells,
        )

    def _dispatch_sql(self, cell, entries) -> tuple[str, bool]:
        """The staged value of one cell as a ``CASE`` over its
        dispatch entries; returns ``(sql, sealed)``."""

        def value_of(entry) -> str:
            if entry.rhs is None:
                # identity entry: keep the pre-state value
                return self.schema.cell_subquery(cell)
            return self.rhs_sql(entry.rhs)

        sealed = bool(entries) and entries[-1].condition is None
        if len(entries) == 1 and sealed:
            return value_of(entries[0]), True
        parts = ["CASE"]
        for entry in entries:
            if entry.condition is None:
                parts.append(f"ELSE {value_of(entry)}")
                break
            parts.append(
                f"WHEN {self.condition_sql(entry.condition)} "
                f"THEN {value_of(entry)}"
            )
        if not sealed:
            parts.append("ELSE NULL")
        parts.append("END")
        return " ".join(parts), sealed

    def _apply_sql(self, query: str) -> str:
        live = quote_identifier(query)
        stage = quote_identifier(self.schema.stage_table_for(query))
        keys = self.schema.key_columns(query)
        match = " AND ".join(
            f"s.{quote_identifier(k)} = {live}.{quote_identifier(k)}"
            for k in keys
        )
        where = f" WHERE {match}" if match else ""
        return (
            f"UPDATE {live} SET value = "
            f"(SELECT s.value FROM {stage} s{where}) "
            f"WHERE EXISTS (SELECT 1 FROM {stage} s{where})"
        )


#: Prefixes of the lowered guard membership tables.
STATIC_GUARD_PREFIX = "_guard_s"
TRANSITION_GUARD_PREFIX = "_guard_t"


class GuardLowering:
    """Admission decision tables lowered to membership tables.

    The guard's tabulation stage (:mod:`repro.runtime.guards`) already
    turned every small read-set group of constraint instances into an
    explicit set of allowed cell valuations.  Those sets are plain
    finite relations, so the relational backend stores them: static
    table *i* becomes ``_guard_s<i>`` with one row per allowed
    valuation, transition table *j* becomes ``_guard_t<j>`` with one
    row per allowed ``(before, after)`` pair.  An **audit query** per
    table then checks the live state by membership — ``EXISTS`` over a
    join of scalar subqueries — turning "the database is consistent"
    into a query the backend itself can answer (transition tables are
    audited on the identity step, the induction base the incremental
    admission path relies on).

    Groups whose valuation space exceeded the tabulation limit have no
    stored relation; they are exposed via :attr:`fallback_static` /
    :attr:`fallback_transition` and the backend checks them with the
    original instance closures over a SQL-backed cell reader.

    Args:
        guard: the compiled admission guard.
        schema: the relational schema naming the observation tables.
    """

    def __init__(self, guard, schema: RelationalSchema):
        self.guard = guard
        self.schema = schema
        self.static_tables = tuple(
            t for t in guard.static_tables if t.allowed is not None
        )
        self.transition_tables = tuple(
            t
            for t in guard.transition_tables
            if t.allowed is not None
        )
        self.fallback_static = tuple(
            t for t in guard.static_tables if t.allowed is None
        )
        self.fallback_transition = tuple(
            t
            for t in guard.transition_tables
            if t.allowed is None
        )

    def _column(self, prefix: str, index: int, cell) -> str:
        affinity = (
            "INTEGER" if self.schema.is_boolean(cell[0]) else "TEXT"
        )
        return (
            f"{quote_identifier(f'{prefix}{index}')} {affinity} "
            "NOT NULL"
        )

    def _encode(self, cell, value) -> str:
        encoded = self.schema.encode(cell[0], value)
        if isinstance(encoded, int):
            return str(encoded)
        return quote_literal(encoded)

    def ddl(self) -> tuple[str, ...]:
        """``CREATE TABLE`` statements for the stored decision
        tables."""
        statements: list[str] = []
        for i, table in enumerate(self.static_tables):
            columns = ",\n".join(
                "  " + self._column("c", j, cell)
                for j, cell in enumerate(table.cells)
            )
            name = quote_identifier(STATIC_GUARD_PREFIX + str(i))
            statements.append(
                f"-- static decision table {i}: allowed valuations "
                f"of {len(table.cells)} cell(s)\n"
                f"CREATE TABLE {name} (\n{columns}\n)"
            )
        for i, table in enumerate(self.transition_tables):
            columns = ",\n".join(
                ["  " + self._column("b", j, cell)
                 for j, cell in enumerate(table.cells)]
                + ["  " + self._column("a", j, cell)
                   for j, cell in enumerate(table.cells)]
            )
            name = quote_identifier(
                TRANSITION_GUARD_PREFIX + str(i)
            )
            statements.append(
                f"-- transition decision table {i}: allowed "
                f"(before, after) pairs over {len(table.cells)} "
                "cell(s)\n"
                f"CREATE TABLE {name} (\n{columns}\n)"
            )
        return tuple(statements)

    def seed_sql(self) -> tuple[str, ...]:
        """``INSERT`` statements storing the allowed valuations."""
        statements: list[str] = []
        for i, table in enumerate(self.static_tables):
            name = quote_identifier(STATIC_GUARD_PREFIX + str(i))
            for values in sorted(table.allowed, key=repr):
                row = ", ".join(
                    self._encode(cell, value)
                    for cell, value in zip(table.cells, values)
                )
                statements.append(
                    f"INSERT INTO {name} VALUES ({row})"
                )
        for i, table in enumerate(self.transition_tables):
            name = quote_identifier(
                TRANSITION_GUARD_PREFIX + str(i)
            )
            for before, after in sorted(table.allowed, key=repr):
                row = ", ".join(
                    [
                        self._encode(cell, value)
                        for cell, value in zip(table.cells, before)
                    ]
                    + [
                        self._encode(cell, value)
                        for cell, value in zip(table.cells, after)
                    ]
                )
                statements.append(
                    f"INSERT INTO {name} VALUES ({row})"
                )
        return tuple(statements)

    def audit_queries(self) -> tuple[tuple[str, int, str], ...]:
        """``(kind, index, sql)`` triples; each scalar query returns
        1 when the live state satisfies the stored table (transition
        tables audited on the identity step)."""
        audits: list[tuple[str, int, str]] = []
        for i, table in enumerate(self.static_tables):
            name = quote_identifier(STATIC_GUARD_PREFIX + str(i))
            match = " AND ".join(
                f"g.{quote_identifier(f'c{j}')} = "
                + self.schema.cell_subquery(cell)
                for j, cell in enumerate(table.cells)
            )
            audits.append(
                (
                    "static",
                    i,
                    "SELECT CASE WHEN EXISTS (SELECT 1 FROM "
                    f"{name} g WHERE {match}) THEN 1 ELSE 0 END",
                )
            )
        for i, table in enumerate(self.transition_tables):
            name = quote_identifier(
                TRANSITION_GUARD_PREFIX + str(i)
            )
            match = " AND ".join(
                f"g.{quote_identifier(f'{half}{j}')} = "
                + self.schema.cell_subquery(cell)
                for half in ("b", "a")
                for j, cell in enumerate(table.cells)
            )
            audits.append(
                (
                    "transition",
                    i,
                    "SELECT CASE WHEN EXISTS (SELECT 1 FROM "
                    f"{name} g WHERE {match}) THEN 1 ELSE 0 END",
                )
            )
        return tuple(audits)

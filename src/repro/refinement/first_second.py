"""Refinement of the information level by the functions level.

Paper, Section 4.3: "we say that T2 refines T1 iff the axioms in A2
are sufficient to guarantee that the updates preserve consistency with
respect to the static and transition constraints in A1."  Section 4.4
decomposes the proof obligation for the running example into:

  (a) sufficient completeness         — :mod:`repro.algebraic.completeness`
  (b) every reachable state is valid  — :func:`check_static_consistency`
  (c) every valid state is reachable  — :mod:`repro.refinement.reachability`
  (d) transition consistency          — :func:`check_transition_consistency`

"Parts (b) and (d) are equivalent to saying that the refinement is
correct."  This module implements (b) and (d) over the observational
state graph — the semantical characterization of correct refinement
the paper describes via the induced structure mapping M — plus the
syntactic extension of I to wffs (Section 4.3), which maps modal
formulas of L1 into first-order formulas of L2 extended with the
reachability predicate F.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.algebraic.algebra import StateGraph, TraceAlgebra, Transition
from repro.algebraic.completeness import (
    CompletenessReport,
    check_sufficient_completeness,
)
from repro.errors import RefinementError
from repro.information.consistency import (
    check_state,
    check_transition,
)
from repro.information.spec import InformationSpec
from repro.logic import formulas as fm
from repro.logic.signature import PredicateSymbol
from repro.logic.sorts import STATE, Sort
from repro.logic.substitution import Substitution
from repro.logic.terms import Term, Var
from repro.obs.tracer import span as _span
from repro.parallel.executor import run_chunked
from repro.parallel.partition import chunk_ranges
from repro.parallel.stats import (
    StatsSink,
    VerificationStats,
    WorkerStats,
    counter_delta,
    engine_counters,
)
from repro.refinement.interpretation import Interpretation
from repro.refinement.reachability import (
    InclusionReport,
    compare_valid_reachable,
)
from repro.temporal.formulas import Necessarily, Possibly

__all__ = [
    "StaticConsistencyReport",
    "TransitionConsistencyReport",
    "FirstToSecondReport",
    "check_static_consistency",
    "prove_static_consistency",
    "check_transition_consistency",
    "check_refinement",
    "translate_axiom",
    "REACHABILITY_PREDICATE",
]

#: The predicate symbol F of sort <state, state> that the wff
#: translation adds to L2 (paper, Section 4.3: "we must extend L2 by
#: adding a predicate symbol F of sort <state, state>, which will stand
#: for the reachability relation R").
REACHABILITY_PREDICATE = PredicateSymbol("F", (STATE, STATE))


# ---------------------------------------------------------------------
# (b) static consistency over the reachable states
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class StaticConsistencyReport:
    """Outcome of check (b): every reachable state is valid.

    Attributes:
        ok: True iff no reachable state violates a static constraint.
        states_checked: number of distinct reachable states examined.
        violations: (witness trace, axiom description) pairs.
    """

    ok: bool
    states_checked: int
    violations: tuple[tuple[Term, str], ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        if self.ok:
            return (
                f"every reachable state is valid ({self.states_checked} "
                "states)"
            )
        lines = ["reachable-but-invalid states found:"]
        for trace, axiom in self.violations[:10]:
            lines.append(f"  {trace} violates {axiom}")
        return "\n".join(lines)


def _static_chunk(context, index_range):
    """Worker chunk: violated-axiom strings per state of the range."""
    information, carriers, algebra, interpretation, traces = context
    before = engine_counters(algebra.engine)
    per_state: list[list[str]] = []
    for index in index_range:
        structure = interpretation.structure_of_trace(
            information, carriers, algebra, traces[index]
        )
        report = check_state(information, structure)
        per_state.append(
            [str(axiom) for axiom, _ in report.violations]
        )
    after = engine_counters(algebra.engine)
    return per_state, counter_delta(before, after, len(per_state))


def check_static_consistency(
    information: InformationSpec,
    carriers: dict[Sort, list[str]],
    algebra: TraceAlgebra,
    interpretation: Interpretation,
    graph: StateGraph | None = None,
    workers: int = 1,
    stats: StatsSink | None = None,
) -> StaticConsistencyReport:
    """Check G ⊆ V: every reachable state satisfies every static
    constraint (Section 4.4b).

    Args:
        workers: check states on this many processes; the merge
            replays the state order, so the report is identical for
            every worker count.
        stats: optional sink receiving one ``"static"`` record.
    """
    started = time.perf_counter()
    if graph is None:
        graph = algebra.explore(workers=workers, stats=stats)
    traces = list(graph.states.values())
    violations: list[tuple[Term, str]] = []
    with _span("static", workers=workers) as obs_span:
        if workers <= 1:
            before = engine_counters(algebra.engine)
            for trace in traces:
                structure = interpretation.structure_of_trace(
                    information, carriers, algebra, trace
                )
                report = check_state(information, structure)
                for axiom, _ in report.violations:
                    violations.append((trace, str(axiom)))
            delta = counter_delta(
                before, engine_counters(algebra.engine), len(traces)
            )
            obs_span.record(delta)
            per_worker = [
                WorkerStats(
                    worker=0,
                    wall_time=time.perf_counter() - started,
                    **delta,
                )
            ]
        else:
            context = (
                information, carriers, algebra, interpretation, traces
            )
            chunked, per_worker = run_chunked(
                _static_chunk,
                context,
                chunk_ranges(len(traces), workers),
                workers,
            )
            per_state = [entry for chunk in chunked for entry in chunk]
            for trace, axioms in zip(traces, per_state):
                for axiom in axioms:
                    violations.append((trace, axiom))
        obs_span.count("static.violations", len(violations))
    if stats is not None:
        stats.add(
            VerificationStats.merge(
                "static",
                max(1, workers),
                per_worker,
                time.perf_counter() - started,
            )
        )
    return StaticConsistencyReport(
        ok=not violations,
        states_checked=len(graph.states),
        violations=tuple(violations),
    )


def prove_static_consistency(
    information: InformationSpec,
    carriers: dict[Sort, list[str]],
    spec,
    interpretation: Interpretation | None = None,
    max_abstract_states: int = 1_000_000,
):
    """Check (b) as the paper actually proves it: by structural
    induction.

    "Consider the set V of all valid states (...)  The set G of
    reachable states is the least set of states containing initiate
    and closed under all the other update functions.  So, in order to
    show that the static constraint is satisfied at the functions
    level, i.e., G ⊆ V, it suffices to show that V contains initiate
    and is closed under all other update functions."  (Section 4.4b)

    The invariant is "the state satisfies every static constraint";
    the step is checked over *every abstract state* satisfying it —
    exactly the closure of V — via
    :func:`repro.algebraic.induction.prove_invariant`.

    Returns:
        An :class:`~repro.algebraic.induction.InductionReport`; if it
        is ok, G ⊆ V is *proved*, not merely enumerated.
    """
    from repro.algebraic.induction import prove_invariant
    from repro.logic.semantics import satisfies

    if interpretation is None:
        interpretation = Interpretation.homonym(
            information, spec.signature
        )

    def invariant(snapshot) -> bool:
        structure = interpretation.structure_of_snapshot(
            information, carriers, spec, snapshot
        )
        return all(
            satisfies(structure, axiom)
            for axiom in information.static_constraints
        )

    return prove_invariant(
        spec, invariant, max_abstract_states=max_abstract_states
    )


# ---------------------------------------------------------------------
# (d) transition consistency over the update edges
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class TransitionConsistencyReport:
    """Outcome of check (d): every single-update transition obeys the
    transition constraints.  (The paper notes that consistency of all
    multi-step transitions then follows by induction.)

    Attributes:
        ok: True iff every edge passed.
        transitions_checked: number of update edges examined.
        violations: offending transitions with the violated axiom.
    """

    ok: bool
    transitions_checked: int
    violations: tuple[tuple[Transition, str], ...] = field(
        default_factory=tuple
    )

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        if self.ok:
            return (
                f"every transition is acceptable "
                f"({self.transitions_checked} update edges)"
            )
        lines = ["unacceptable transitions found:"]
        for transition, axiom in self.violations[:10]:
            lines.append(
                f"  {transition.update}({', '.join(transition.params)}) "
                f"violates {axiom}"
            )
        return "\n".join(lines)


def _edge_violations(
    information, carriers, algebra, interpretation, graph, structures,
    transition,
) -> list[str]:
    """Violated-axiom strings of one update edge."""
    before = structures[transition.source]
    after = structures.get(transition.target)
    if after is None:
        # Target beyond the truncation horizon; realize it directly.
        witness = graph.states[transition.source]
        after = interpretation.structure_of_trace(
            information,
            carriers,
            algebra,
            algebra.apply(
                transition.update, *transition.params, trace=witness
            ),
        )
    report = check_transition(information, before, after)
    return [str(axiom) for axiom, _ in report.violations]


def _transition_chunk(context, index_range):
    """Worker chunk: violated-axiom strings per edge of the range."""
    (
        information,
        carriers,
        algebra,
        interpretation,
        graph,
        structures,
    ) = context
    before = engine_counters(algebra.engine)
    per_edge = [
        _edge_violations(
            information,
            carriers,
            algebra,
            interpretation,
            graph,
            structures,
            graph.transitions[index],
        )
        for index in index_range
    ]
    after = engine_counters(algebra.engine)
    return per_edge, counter_delta(before, after, len(per_edge))


def check_transition_consistency(
    information: InformationSpec,
    carriers: dict[Sort, list[str]],
    algebra: TraceAlgebra,
    interpretation: Interpretation,
    graph: StateGraph | None = None,
    workers: int = 1,
    stats: StatsSink | None = None,
) -> TransitionConsistencyReport:
    """Check (d): every update edge of the reachable state graph is an
    acceptable transition of the information-level theory.

    Args:
        workers: check edges on this many processes; the merge replays
            the edge order, so the report is identical for every
            worker count.
        stats: optional sink receiving one ``"transitions"`` record.
    """
    started = time.perf_counter()
    if graph is None:
        graph = algebra.explore(workers=workers, stats=stats)
    with _span("transitions", workers=workers) as obs_span:
        counters_before = engine_counters(algebra.engine)
        structures = {
            snapshot: interpretation.structure_of_trace(
                information, carriers, algebra, trace
            )
            for snapshot, trace in graph.states.items()
        }
        violations: list[tuple[Transition, str]] = []
        if workers <= 1:
            # Walk states in discovery order and chain their outgoing
            # edges via the adjacency index; for breadth-first graphs
            # this replays graph.transitions exactly (edges of a state
            # are contiguous there), so reports are unchanged.
            for snapshot in graph.states:
                for transition in graph.successors(snapshot):
                    for axiom in _edge_violations(
                        information,
                        carriers,
                        algebra,
                        interpretation,
                        graph,
                        structures,
                        transition,
                    ):
                        violations.append((transition, axiom))
            delta = counter_delta(
                counters_before,
                engine_counters(algebra.engine),
                len(graph.transitions),
            )
            obs_span.record(delta)
            per_worker = [
                WorkerStats(
                    worker=0,
                    wall_time=time.perf_counter() - started,
                    **delta,
                )
            ]
        else:
            context = (
                information,
                carriers,
                algebra,
                interpretation,
                graph,
                structures,
            )
            chunked, per_worker = run_chunked(
                _transition_chunk,
                context,
                chunk_ranges(len(graph.transitions), workers),
                workers,
            )
            per_edge = [entry for chunk in chunked for entry in chunk]
            for transition, axioms in zip(graph.transitions, per_edge):
                for axiom in axioms:
                    violations.append((transition, axiom))
        obs_span.count("transitions.edges", len(graph.transitions))
        obs_span.count("transitions.violations", len(violations))
    if stats is not None:
        stats.add(
            VerificationStats.merge(
                "transitions",
                max(1, workers),
                per_worker,
                time.perf_counter() - started,
            )
        )
    return TransitionConsistencyReport(
        ok=not violations,
        transitions_checked=len(graph.transitions),
        violations=tuple(violations),
    )


# ---------------------------------------------------------------------
# combined report
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class FirstToSecondReport:
    """The full Section 4.4 verification bundle.

    Attributes:
        completeness: check (a) — sufficient completeness.
        static: check (b) — every reachable state valid.
        inclusion: checks (b) + (c) — G = V comparison.
        transitions: check (d) — transition consistency.
    """

    completeness: CompletenessReport
    static: StaticConsistencyReport
    inclusion: InclusionReport
    transitions: TransitionConsistencyReport

    @property
    def correct(self) -> bool:
        """True iff the refinement is correct: (b) and (d) hold.

        (The paper: "Parts (b) and (d) are equivalent to saying that
        the refinement is correct.")
        """
        return self.static.ok and self.transitions.ok

    @property
    def ok(self) -> bool:
        """True iff all four properties (a)-(d) hold."""
        return (
            self.completeness.ok
            and self.static.ok
            and self.inclusion.ok
            and self.transitions.ok
        )

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        return "\n".join(
            [
                "First-to-second level refinement check (Section 4.4):",
                f"(a) {self.completeness}",
                f"(b) {self.static}",
                f"(c) {self.inclusion}",
                f"(d) {self.transitions}",
                f"=> refinement correct: {self.correct}",
            ]
        )


def check_refinement(
    information: InformationSpec,
    carriers: dict[Sort, list[str]],
    algebra: TraceAlgebra,
    interpretation: Interpretation | None = None,
    completeness_depth: int = 2,
    max_states: int = 100_000,
    workers: int = 1,
    stats: StatsSink | None = None,
) -> FirstToSecondReport:
    """Run the entire Section 4.4 proof plan mechanically.

    Args:
        information: the level-1 theory T1.
        carriers: finite carriers for T1's sorts (must match the
            algebraic parameter domains).
        algebra: the trace algebra of the level-2 spec T2.
        interpretation: the interpretation I (homonym by default).
        completeness_depth: trace depth for the coverage half of the
            sufficient-completeness check.
        max_states: exploration bound for the state graph.
        workers: fan every bounded sweep (exploration, coverage,
            state/edge checks, validity enumeration) out over this
            many processes.  The report is identical for every worker
            count; the sub-checks run in sequence, each using the full
            worker pool.
        stats: optional sink receiving one record per sub-check.
    """
    if interpretation is None:
        interpretation = Interpretation.homonym(
            information, algebra.signature
        )
    graph = algebra.explore(
        max_states=max_states, workers=workers, stats=stats
    )
    completeness = check_sufficient_completeness(
        algebra.spec, depth=completeness_depth, workers=workers, stats=stats
    )
    static = check_static_consistency(
        information,
        carriers,
        algebra,
        interpretation,
        graph,
        workers=workers,
        stats=stats,
    )
    inclusion = compare_valid_reachable(
        information,
        carriers,
        algebra,
        interpretation,
        graph,
        workers=workers,
        stats=stats,
    )
    transitions = check_transition_consistency(
        information,
        carriers,
        algebra,
        interpretation,
        graph,
        workers=workers,
        stats=stats,
    )
    return FirstToSecondReport(completeness, static, inclusion, transitions)


# ---------------------------------------------------------------------
# the syntactic extension of I to wffs (Section 4.3)
# ---------------------------------------------------------------------
def translate_axiom(
    interpretation: Interpretation,
    axiom: fm.Formula,
    state_var: Var | None = None,
) -> fm.Formula:
    """Extend I to map a wff of L1 into a wff of L2 + F.

    Db-predicate atoms become equalities ``I(p)[args, σ] = True``;
    the modal operators become quantifications over F-successors::

        <>P  |->  exists σ'. F(σ, σ') & I(P)[σ']
        []P  |->  forall σ'. F(σ, σ') -> I(P)[σ']

    The result is a first-order formula over L2 extended with the
    reachability predicate :data:`REACHABILITY_PREDICATE`; its free
    state variable is ``state_var`` (default ``sigma``).  This is the
    formula the paper displays in Section 4.4d for the transition
    constraint.
    """
    state_var = state_var or Var("sigma", STATE)
    counter = [0]

    def fresh_state() -> Var:
        counter[0] += 1
        return Var(f"sigma{counter[0]}", STATE)

    def walk(formula: fm.Formula, sigma: Var) -> fm.Formula:
        if isinstance(formula, (fm.TrueF, fm.FalseF)):
            return formula
        if isinstance(formula, fm.Atom):
            try:
                pred = interpretation.of(formula.predicate.name)
            except RefinementError:
                # Non-db predicate: kept unchanged (identity image).
                return formula
            substitution = Substitution(
                dict(zip(pred.variables, formula.args))
            ).bind(pred.state_var, sigma)
            return fm.Equals(
                substitution.apply(pred.term),
                _true_term(pred.term),
            )
        if isinstance(formula, fm.Equals):
            return formula
        if isinstance(formula, fm.Not):
            return fm.Not(walk(formula.body, sigma))
        if isinstance(formula, (fm.And, fm.Or, fm.Implies, fm.Iff)):
            return type(formula)(
                walk(formula.lhs, sigma), walk(formula.rhs, sigma)
            )
        if isinstance(formula, (fm.Forall, fm.Exists)):
            return type(formula)(formula.var, walk(formula.body, sigma))
        if isinstance(formula, Possibly):
            successor = fresh_state()
            return fm.Exists(
                successor,
                fm.And(
                    fm.Atom(REACHABILITY_PREDICATE, (sigma, successor)),
                    walk(formula.body, successor),
                ),
            )
        if isinstance(formula, Necessarily):
            successor = fresh_state()
            return fm.Forall(
                successor,
                fm.Implies(
                    fm.Atom(REACHABILITY_PREDICATE, (sigma, successor)),
                    walk(formula.body, successor),
                ),
            )
        raise TypeError(f"cannot translate {formula!r}")

    return walk(axiom, state_var)


def _true_term(example: Term) -> Term:
    """Build the Boolean constant True compatible with ``example``'s
    signature (the interpretation terms are Boolean by construction)."""
    from repro.logic.signature import FunctionSymbol
    from repro.logic.sorts import BOOLEAN
    from repro.logic.terms import App

    return App(FunctionSymbol("True", (), BOOLEAN), ())

"""Interpretations I from the information level into the functions
level.

Paper, Section 4.3: "The notion of refinement is formally defined by
specifying an interpretation I mapping the non-logical symbols of L1
into terms of L2": each n-ary db-predicate symbol p of sort
``<s1,...,sn>`` is mapped to a Boolean term of L2 with free variables
``x1,...,xn, σ`` of sorts ``s1,...,sn, state``.  (In the running
example, ``offered`` maps to the term ``offered(c, σ)`` and ``takes``
to ``takes(s, c, σ)``.)

Given I, a trace induces a level-1 structure: the extension of p is
the set of parameter tuples on which I(p) evaluates to True.  This is
the mapping M "from structures of L2 into universes of L1" that the
paper uses for the semantical characterization of correct refinement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RefinementError
from repro.algebraic.algebra import TraceAlgebra
from repro.algebraic.signature import AlgebraicSignature
from repro.information.spec import InformationSpec
from repro.logic.sorts import BOOLEAN, STATE, Sort
from repro.logic.structures import Structure
from repro.logic.substitution import Substitution
from repro.logic.terms import App, Term, Var

__all__ = ["PredicateInterpretation", "Interpretation"]

import itertools


@dataclass(frozen=True)
class PredicateInterpretation:
    """The image I(p) of one db-predicate symbol.

    Attributes:
        variables: the free parameter variables x1,...,xn, in the
            db-predicate's argument order.
        state_var: the free state variable σ.
        term: a Boolean term of L2 over those variables.
    """

    variables: tuple[Var, ...]
    state_var: Var
    term: Term

    def __post_init__(self) -> None:
        if self.term.sort != BOOLEAN:
            raise RefinementError(
                f"interpretation term must have Boolean sort, got "
                f"{self.term.sort}"
            )
        if self.state_var.sort != STATE:
            raise RefinementError("state variable must have sort state")
        allowed = set(self.variables) | {self.state_var}
        extra = self.term.free_vars() - allowed
        if extra:
            names = sorted(v.name for v in extra)
            raise RefinementError(
                f"interpretation term has unexpected free variables: "
                f"{names}"
            )


class Interpretation:
    """An interpretation I of L1's db-predicates as L2 Boolean terms.

    Args:
        assignments: map from db-predicate name to its
            :class:`PredicateInterpretation`.
    """

    def __init__(self, assignments: dict[str, PredicateInterpretation]):
        self._assignments = dict(assignments)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name!r}: {self._assignments[name]!r}"
            for name in sorted(self._assignments)
        )
        return f"Interpretation({{{inner}}})"

    @classmethod
    def homonym(
        cls,
        information: InformationSpec,
        signature: AlgebraicSignature,
    ) -> "Interpretation":
        """The canonical interpretation mapping each db-predicate ``p``
        to the homonym query term ``p(x1,...,xn, σ)``.

        The paper calls this one-to-one correspondence "a certain
        uniformity (...) convenient" (Section 6).

        Raises:
            RefinementError: if a db-predicate has no homonym query or
                the sorts disagree.
        """
        assignments: dict[str, PredicateInterpretation] = {}
        state_var = Var("sigma", STATE)
        for predicate in information.db_predicates:
            try:
                query = signature.query(predicate.name)
            except Exception as exc:
                raise RefinementError(
                    f"no query named {predicate.name!r} for the homonym "
                    "interpretation"
                ) from exc
            if tuple(query.arg_sorts[:-1]) != tuple(predicate.arg_sorts):
                raise RefinementError(
                    f"query {predicate.name!r} has parameter sorts "
                    f"{[str(s) for s in query.arg_sorts[:-1]]}, but the "
                    f"db-predicate needs {[str(s) for s in predicate.arg_sorts]}"
                )
            variables = tuple(
                Var(f"x{i + 1}", sort)
                for i, sort in enumerate(predicate.arg_sorts)
            )
            term = App(query, (*variables, state_var))
            assignments[predicate.name] = PredicateInterpretation(
                variables, state_var, term
            )
        return cls(assignments)

    def of(self, predicate_name: str) -> PredicateInterpretation:
        """The image of a db-predicate, by name."""
        try:
            return self._assignments[predicate_name]
        except KeyError:
            raise RefinementError(
                f"interpretation does not cover db-predicate "
                f"{predicate_name!r}"
            ) from None

    @property
    def predicate_names(self) -> tuple[str, ...]:
        """Names of the interpreted db-predicates."""
        return tuple(self._assignments)

    # ------------------------------------------------------------------
    # the induced structure map M
    # ------------------------------------------------------------------
    def realize(
        self,
        algebra: TraceAlgebra,
        predicate_name: str,
        params: tuple[str, ...],
        trace: Term,
    ) -> bool:
        """Evaluate I(p) at parameter values and a trace."""
        interp = self.of(predicate_name)
        signature = algebra.signature
        substitution = Substitution(
            {
                var: signature.value(var.sort, value)
                for var, value in zip(interp.variables, params)
            }
        ).bind(interp.state_var, trace)
        return bool(algebra.engine.evaluate(
            substitution.apply(interp.term)
        ))

    def structure_of_snapshot(
        self,
        information: InformationSpec,
        carriers: dict[Sort, list[str]],
        spec,
        snapshot,
    ) -> Structure:
        """The level-1 structure an *abstract* state (snapshot)
        denotes under I — used by the structural-induction proofs,
        where states need not be realized by any trace.

        ``spec`` is the :class:`~repro.algebraic.spec.AlgebraicSpec`
        whose signature interprets the terms of I.
        """
        from repro.algebraic.induction import (
            AbstractState,
            make_abstract_engine,
        )

        engine = make_abstract_engine(spec)
        signature = spec.signature
        abstract = AbstractState(snapshot)
        relations: dict[str, set[tuple[str, ...]]] = {}
        for predicate in information.db_predicates:
            extension: set[tuple[str, ...]] = set()
            domains = [carriers[sort] for sort in predicate.arg_sorts]
            interp = self.of(predicate.name)
            for params in itertools.product(*domains):
                substitution = Substitution(
                    {
                        var: signature.value(var.sort, value)
                        for var, value in zip(interp.variables, params)
                    }
                ).bind(interp.state_var, abstract)
                if bool(
                    engine.evaluate(substitution.apply(interp.term))
                ):
                    extension.add(params)
            relations[predicate.name] = extension
        return Structure(
            information.signature, carriers, relations=relations
        )

    def structure_of_trace(
        self,
        information: InformationSpec,
        carriers: dict[Sort, list[str]],
        algebra: TraceAlgebra,
        trace: Term,
    ) -> Structure:
        """The level-1 structure a trace denotes under I.

        The extension of each db-predicate p is the set of carrier
        tuples on which I(p) evaluates to True at ``trace``.
        Non-db predicates are left empty (the running examples use
        only db-predicates in their axioms).
        """
        relations: dict[str, set[tuple[str, ...]]] = {}
        for predicate in information.db_predicates:
            extension: set[tuple[str, ...]] = set()
            domains = [carriers[sort] for sort in predicate.arg_sorts]
            for params in itertools.product(*domains):
                if self.realize(algebra, predicate.name, params, trace):
                    extension.add(params)
            relations[predicate.name] = extension
        return Structure(
            information.signature, carriers, relations=relations
        )

"""Refinement of the functions level by the representation level.

Paper, Section 5.3: the mapping K sends each update function of L2 to
a procedure declaration of T3, each Boolean query function to a wff of
L3, and parameter symbols to themselves.  "To circumvent this
difficulty [L3 cannot express the wff translation], we adopt a
*semantic* definition of correct refinement": K induces a mapping N
from universes of L3 into finitely generated structures of L2, and "T3
is a correct refinement of T2 iff for every universe of L3, N(U) is a
model of T2".

Section 5.4 proves this for the running example by induction on the
length of the trace ``u_n(u_{n-1}(...(initiate)...))``.  Here the
check is mechanized over the reachable fragment: because every
equation side evaluates through the database state a trace realizes,
validity of A2 in N(U) is decided by checking each equation at every
*reachable database state* (with the equation's state variable valued
at that state) for every parameter instantiation — the same coverage
as the paper's induction, without enumerating syntactic traces.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Mapping

from repro.errors import ExecutionError, RefinementError
from repro.algebraic.algebra import TraceAlgebra
from repro.algebraic.equations import ConditionalEquation
from repro.algebraic.signature import AlgebraicSignature
from repro.algebraic.spec import AlgebraicSpec
from repro.logic import formulas as fm
from repro.logic.sorts import BOOLEAN, STATE, Sort
from repro.logic.terms import App, Term, Var
from repro.obs.tracer import span as _span
from repro.parallel.executor import run_chunked
from repro.parallel.partition import chunk_ranges
from repro.parallel.stats import (
    StatsSink,
    VerificationStats,
    WorkerStats,
)
from repro.rpr.ast import Schema, is_deterministic
from repro.rpr.semantics import (
    DatabaseState,
    initial_state,
    run_proc,
    satisfies,
)

__all__ = [
    "QueryRealization",
    "RepresentationMap",
    "InducedStructure",
    "EquationFailure",
    "SecondToThirdReport",
    "check_refinement",
    "check_agreement",
]


@dataclass(frozen=True)
class QueryRealization:
    """The image K(q) of one query function: a wff of L3.

    For a Boolean query the wff has one free variable per query
    parameter (e.g. K(offered) = ``OFFERED(c)``).  For a query of a
    parameter result sort, ``result_var`` names one extra free
    variable and the wff must be *functional* in it: the query's value
    at a state is the unique value of ``result_var`` satisfying the
    wff (e.g. K(balance) = ``BALANCE(a, m)`` with result variable
    ``m``).

    Attributes:
        variables: free variables x1,...,xn (with L3 sorts), one per
            query parameter, in order.
        formula: the L3 wff.
        result_var: the result variable for a non-Boolean query, or
            ``None`` for a Boolean one.
    """

    variables: tuple[Var, ...]
    formula: fm.Formula
    result_var: Var | None = None

    def __post_init__(self) -> None:
        allowed = set(self.variables)
        if self.result_var is not None:
            allowed.add(self.result_var)
        extra = self.formula.free_vars() - allowed
        if extra:
            names = sorted(v.name for v in extra)
            raise RefinementError(
                f"realization wff has unexpected free variables: {names}"
            )


class RepresentationMap:
    """The mapping K from L2 symbols into the schema T3.

    Args:
        query_map: L2 query name -> :class:`QueryRealization`.
        update_map: L2 update name -> procedure name.
        sort_map: L2 parameter sort -> L3 sort (carriers are shared
            value strings).
        initial_proc: procedure implementing the initial constant
            (default ``initiate``); K(initiate) is this procedure run
            on the all-empty state.
    """

    def __init__(
        self,
        query_map: Mapping[str, QueryRealization],
        update_map: Mapping[str, str],
        sort_map: Mapping[Sort, Sort],
        initial_proc: str = "initiate",
    ):
        self.query_map = dict(query_map)
        self.update_map = dict(update_map)
        self.sort_map = dict(sort_map)
        self.initial_proc = initial_proc

    def __repr__(self) -> str:
        queries = ", ".join(
            f"{name!r}: {self.query_map[name]!r}"
            for name in sorted(self.query_map)
        )
        updates = ", ".join(
            f"{name!r}: {self.update_map[name]!r}"
            for name in sorted(self.update_map)
        )
        sorts = ", ".join(
            f"{source!r}: {self.sort_map[source]!r}"
            for source in sorted(self.sort_map, key=lambda s: s.name)
        )
        return (
            f"RepresentationMap(query_map={{{queries}}}, "
            f"update_map={{{updates}}}, sort_map={{{sorts}}}, "
            f"initial_proc={self.initial_proc!r})"
        )

    @classmethod
    def homonym(
        cls, signature: AlgebraicSignature, schema: Schema
    ) -> "RepresentationMap":
        """The canonical correspondence of the running example:

        * each L2 parameter sort maps to the L3 sort whose
          (lower-cased) name starts with the L2 sort's name
          (``student`` -> ``Students``);
        * each query ``q`` maps to the membership wff of the relation
          whose lower-cased name equals ``q`` (``offered`` ->
          ``OFFERED(x1)``);
        * each update maps to the homonym procedure.

        Raises:
            RefinementError: when a correspondence is missing or
                ambiguous — supply the maps explicitly then.
        """
        sort_map: dict[Sort, Sort] = {}
        l3_sorts = schema.sorts
        for l2_sort in signature.parameter_sorts:
            matches = [
                sort
                for sort in l3_sorts
                if sort.name.lower().startswith(l2_sort.name.lower())
            ]
            if len(matches) != 1:
                raise RefinementError(
                    f"cannot map parameter sort {l2_sort} onto a schema "
                    f"sort (candidates: {[s.name for s in matches]})"
                )
            sort_map[l2_sort] = matches[0]

        query_map: dict[str, QueryRealization] = {}
        for query in signature.queries:
            if query.result_sort != BOOLEAN:
                raise RefinementError(
                    f"homonym map only covers Boolean queries; realize "
                    f"{query.name!r} explicitly"
                )
            matches = [
                decl
                for decl in schema.relations
                if decl.name.lower() == query.name.lower()
            ]
            if len(matches) != 1:
                raise RefinementError(
                    f"no unique relation for query {query.name!r}"
                )
            decl = matches[0]
            expected = tuple(
                sort_map[sort] for sort in query.arg_sorts[:-1]
            )
            if decl.column_sorts != expected:
                raise RefinementError(
                    f"relation {decl.name} columns "
                    f"{[s.name for s in decl.column_sorts]} do not match "
                    f"query {query.name} parameters"
                )
            variables = tuple(
                Var(f"x{i + 1}", sort)
                for i, sort in enumerate(decl.column_sorts)
            )
            from repro.logic.signature import PredicateSymbol

            predicate = PredicateSymbol(decl.name, decl.column_sorts)
            query_map[query.name] = QueryRealization(
                variables, fm.Atom(predicate, variables)
            )

        update_map: dict[str, str] = {}
        for update in signature.updates:
            schema.proc(update.name)  # raises if missing
            update_map[update.name] = update.name
        initial_name = signature.initials[0].name
        schema.proc(initial_name)
        return cls(query_map, update_map, sort_map, initial_name)

    def realization(self, query_name: str) -> QueryRealization:
        """The image K(q) of a query, by name."""
        try:
            return self.query_map[query_name]
        except KeyError:
            raise RefinementError(
                f"K does not cover query {query_name!r}"
            ) from None

    def proc_for(self, update_name: str) -> str:
        """The procedure implementing an update."""
        try:
            return self.update_map[update_name]
        except KeyError:
            raise RefinementError(
                f"K does not cover update {update_name!r}"
            ) from None


class InducedStructure:
    """The mapping N: the finitely generated L2 structure a schema
    universe induces (paper, Section 5.3).

    States of sort ``state`` are database states; queries are evaluated
    by their K-images; updates act by running their procedures.

    Args:
        signature: the L2 language.
        schema: the parsed T3 schema.
        rep_map: the mapping K.
        require_deterministic: reject schemas whose procedures are
            nondeterministic or can block (the induced update
            *functions* would be partial or multivalued).
    """

    def __init__(
        self,
        signature: AlgebraicSignature,
        schema: Schema,
        rep_map: RepresentationMap,
        require_deterministic: bool = True,
    ):
        self.signature = signature
        self.schema = schema
        self.rep_map = rep_map
        self._require_deterministic = require_deterministic
        self._domains = {
            rep_map.sort_map[sort]: tuple(signature.domain(sort))
            for sort in signature.parameter_sorts
        }
        if require_deterministic:
            for proc in schema.procs:
                if not is_deterministic(proc.body):
                    raise RefinementError(
                        f"procedure {proc.name!r} is not deterministic; "
                        "the induced update function would be "
                        "multivalued"
                    )
        self._trace_cache: dict[Term, DatabaseState] = {}

    @property
    def domains(self) -> dict[Sort, tuple[str, ...]]:
        """The L3 column domains induced by the L2 parameter domains."""
        return dict(self._domains)

    # ------------------------------------------------------------------
    # states
    # ------------------------------------------------------------------
    def initial(self) -> DatabaseState:
        """K(initiate): run the initial procedure on the empty state."""
        return self._step(
            self.rep_map.initial_proc, (), initial_state(self.schema)
        )

    def apply_update(
        self, update: str, params: tuple[str, ...], state: DatabaseState
    ) -> DatabaseState:
        """Run the procedure implementing ``update`` on ``state``."""
        return self._step(self.rep_map.proc_for(update), params, state)

    def _step(
        self, proc: str, params: tuple[str, ...], state: DatabaseState
    ) -> DatabaseState:
        results = run_proc(
            self.schema, proc, params, state, self._domains
        )
        if not results:
            raise ExecutionError(
                f"procedure {proc}({', '.join(params)}) blocks; the "
                "induced update function is partial"
            )
        if len(results) > 1 and self._require_deterministic:
            raise ExecutionError(
                f"procedure {proc}({', '.join(params)}) is "
                f"nondeterministic ({len(results)} successors)"
            )
        return next(iter(results))

    def state_of_trace(self, trace: Term) -> DatabaseState:
        """Realize a ground L2 trace as a database state (memoized)."""
        cached = self._trace_cache.get(trace)
        if cached is not None:
            return cached
        if not isinstance(trace, App):
            raise RefinementError(f"not a ground trace: {trace}")
        if self.signature.is_initial(trace.symbol):
            result = self.initial()
        elif self.signature.is_update(trace.symbol):
            inner = self.state_of_trace(trace.args[-1])
            params = tuple(
                self._param_value(arg) for arg in trace.args[:-1]
            )
            result = self.apply_update(trace.symbol.name, params, inner)
        else:
            raise RefinementError(f"not a trace constructor: {trace}")
        self._trace_cache[trace] = result
        return result

    @staticmethod
    def _param_value(term: Term) -> str:
        if isinstance(term, App) and term.symbol.is_constant:
            return term.symbol.name
        raise RefinementError(
            f"trace parameter {term} is not a parameter name"
        )

    def reachable_states(
        self, max_states: int = 100_000
    ) -> list[DatabaseState]:
        """BFS over database states from the initial state through all
        update instances."""
        start = self.initial()
        seen = {start}
        order = [start]
        frontier = deque([start])
        instances = list(self._update_instances())
        while frontier:
            state = frontier.popleft()
            for update, params in instances:
                successor = self.apply_update(update, params, state)
                if successor not in seen:
                    if len(seen) >= max_states:
                        raise RefinementError(
                            "state space exceeds max_states; raise the "
                            "bound or shrink the domains"
                        )
                    seen.add(successor)
                    order.append(successor)
                    frontier.append(successor)
        return order

    def _update_instances(self):
        for update in self.signature.updates:
            spaces = [
                self.signature.domain(sort)
                for sort in update.arg_sorts[:-1]
            ]
            for params in itertools.product(*spaces):
                yield update.name, params

    # ------------------------------------------------------------------
    # evaluation of L2 terms/conditions in the induced structure
    # ------------------------------------------------------------------
    def eval_query(
        self,
        query: str,
        params: tuple[str, ...],
        state: DatabaseState,
    ) -> Hashable:
        """Evaluate query ``q(params)`` at a database state via K(q).

        Boolean queries evaluate their wff directly; non-Boolean
        queries return the unique value of the realization's result
        variable that satisfies the wff.

        Raises:
            RefinementError: if a functional realization has zero or
                several satisfying result values at the state.
        """
        realization = self.rep_map.realization(query)
        valuation = {
            var: value
            for var, value in zip(realization.variables, params)
        }
        if realization.result_var is None:
            return satisfies(
                realization.formula, state, self._domains, valuation
            )
        result_var = realization.result_var
        candidates = [
            value
            for value in self._domains.get(result_var.sort, ())
            if satisfies(
                realization.formula,
                state,
                self._domains,
                {**valuation, result_var: value},
            )
        ]
        if len(candidates) != 1:
            raise RefinementError(
                f"K({query}) is not functional at state ({state}): "
                f"{len(candidates)} result value(s) for params {params}"
            )
        return candidates[0]

    def eval_term(
        self,
        term: Term,
        valuation: Mapping[Var, Hashable],
    ) -> Hashable:
        """Evaluate an L2 term (of parameter/Boolean/state sort) in the
        induced structure; state-sorted subterms evaluate to database
        states."""
        if isinstance(term, Var):
            try:
                return valuation[term]
            except KeyError:
                raise RefinementError(
                    f"unbound variable {term.name}"
                ) from None
        if not isinstance(term, App):
            raise RefinementError(f"unsupported term {term!r}")
        symbol = term.symbol
        sig = self.signature
        if symbol.name == "True" and symbol.result_sort == BOOLEAN:
            return True
        if symbol.name == "False" and symbol.result_sort == BOOLEAN:
            return False
        if sig.is_connective(symbol):
            values = [
                bool(self.eval_term(arg, valuation)) for arg in term.args
            ]
            return {
                "not": lambda: not values[0],
                "and": lambda: values[0] and values[1],
                "or": lambda: values[0] or values[1],
                "implies": lambda: (not values[0]) or values[1],
                "iff": lambda: values[0] == values[1],
            }[symbol.name]()
        if sig.is_equality_test(symbol):
            return self.eval_term(
                term.args[0], valuation
            ) == self.eval_term(term.args[1], valuation)
        interp = sig.interpretation(symbol.name)
        if interp is not None:
            return interp(
                *(self.eval_term(arg, valuation) for arg in term.args)
            )
        if sig.is_initial(symbol):
            return self.initial()
        if sig.is_update(symbol):
            inner = self.eval_term(term.args[-1], valuation)
            params = tuple(
                str(self.eval_term(arg, valuation))
                for arg in term.args[:-1]
            )
            return self.apply_update(symbol.name, params, inner)
        if sig.is_query(symbol):
            state = self.eval_term(term.args[-1], valuation)
            params = tuple(
                str(self.eval_term(arg, valuation))
                for arg in term.args[:-1]
            )
            return self.eval_query(symbol.name, params, state)
        if symbol.is_constant:
            return symbol.name  # a parameter name
        raise RefinementError(f"cannot evaluate {term} in N(U)")

    def holds(
        self,
        condition: fm.Formula,
        valuation: Mapping[Var, Hashable],
    ) -> bool:
        """Decide an equation condition in the induced structure."""
        valuation = dict(valuation)
        if isinstance(condition, fm.TrueF):
            return True
        if isinstance(condition, fm.FalseF):
            return False
        if isinstance(condition, fm.Equals):
            return self.eval_term(
                condition.lhs, valuation
            ) == self.eval_term(condition.rhs, valuation)
        if isinstance(condition, fm.Not):
            return not self.holds(condition.body, valuation)
        if isinstance(condition, fm.And):
            return self.holds(condition.lhs, valuation) and self.holds(
                condition.rhs, valuation
            )
        if isinstance(condition, fm.Or):
            return self.holds(condition.lhs, valuation) or self.holds(
                condition.rhs, valuation
            )
        if isinstance(condition, fm.Implies):
            return (
                not self.holds(condition.lhs, valuation)
            ) or self.holds(condition.rhs, valuation)
        if isinstance(condition, fm.Iff):
            return self.holds(condition.lhs, valuation) == self.holds(
                condition.rhs, valuation
            )
        if isinstance(condition, (fm.Forall, fm.Exists)):
            var = condition.var
            try:
                carrier = self.signature.domain(var.sort)
            except Exception:
                raise RefinementError(
                    f"condition quantifies over non-parameter sort "
                    f"{var.sort}"
                ) from None
            results = (
                self.holds(condition.body, {**valuation, var: value})
                for value in carrier
            )
            if isinstance(condition, fm.Forall):
                return all(results)
            return any(results)
        raise RefinementError(
            f"unsupported condition construct {condition!r}"
        )


@dataclass(frozen=True)
class EquationFailure:
    """A falsified instance of an A2 equation in N(U)."""

    equation: ConditionalEquation
    state: DatabaseState
    valuation: tuple[tuple[str, Hashable], ...]
    lhs_value: Hashable
    rhs_value: Hashable

    def __str__(self) -> str:
        binding = ", ".join(
            f"{name}={value}" for name, value in self.valuation
        )
        return (
            f"{self.equation.describe()} fails at [{binding}] on state "
            f"({self.state}): lhs={self.lhs_value}, rhs={self.rhs_value}"
        )


@dataclass(frozen=True)
class SecondToThirdReport:
    """Outcome of the Section 5.4 check: is N(U) a model of T2?

    Attributes:
        ok: True iff every equation held on every reachable state and
            parameter instantiation.
        states_checked: number of reachable database states examined.
        instances_checked: number of ground equation instances
            evaluated.
        failures: falsified instances (capped at 20).
    """

    ok: bool
    states_checked: int
    instances_checked: int
    failures: tuple[EquationFailure, ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        if self.ok:
            return (
                f"T3 correctly refines T2: all {self.instances_checked} "
                f"equation instances hold on {self.states_checked} "
                "reachable states"
            )
        lines = ["T3 does NOT refine T2:"]
        for failure in self.failures[:10]:
            lines.append(f"  {failure}")
        return "\n".join(lines)


#: The serial early-exit cap on recorded equation failures, replayed
#: by the parallel merger.
_FAILURE_CAP = 20


def _equation_frame(spec: AlgebraicSpec, equation: ConditionalEquation):
    """The (state variable, parameter variables, value spaces) of one
    equation — the serial loop's per-equation preamble."""
    variables = sorted(
        equation.lhs.free_vars()
        | (
            equation.condition.free_vars()
            if equation.condition is not None
            else frozenset()
        ),
        key=lambda v: v.name,
    )
    state_vars = [v for v in variables if v.sort == STATE]
    param_vars = [v for v in variables if v.sort != STATE]
    if len(state_vars) > 1:
        raise RefinementError(
            f"{equation.describe()}: more than one state variable"
        )
    spaces = [spec.signature.domain(var.sort) for var in param_vars]
    return state_vars, param_vars, spaces


def _check_pair(
    spec: AlgebraicSpec,
    induced: InducedStructure,
    state: DatabaseState,
    equation: ConditionalEquation,
    failure_budget: int,
):
    """Check one (equation, state) pair.

    Returns ``(instances evaluated, [(instance offset, failure), ...])``
    where the offset is the pair-local instance count at the failure —
    the value the merger needs to replay the serial early exit.  Stops
    once ``failure_budget`` failures are recorded.
    """
    state_vars, param_vars, spaces = _equation_frame(spec, equation)
    pair_instances = 0
    pair_failures: list[tuple[int, EquationFailure]] = []
    for values in itertools.product(*spaces):
        valuation: dict[Var, Hashable] = dict(zip(param_vars, values))
        if state_vars:
            valuation[state_vars[0]] = state
        if equation.condition is not None and not induced.holds(
            equation.condition, valuation
        ):
            continue
        pair_instances += 1
        lhs_value = induced.eval_term(equation.lhs, valuation)
        rhs_value = induced.eval_term(equation.rhs, valuation)
        if lhs_value != rhs_value:
            pair_failures.append(
                (
                    pair_instances,
                    EquationFailure(
                        equation,
                        state,
                        tuple(
                            (var.name, value)
                            for var, value in zip(param_vars, values)
                        ),
                        lhs_value,
                        rhs_value,
                    ),
                )
            )
            if len(pair_failures) >= failure_budget:
                break
    return pair_instances, pair_failures


def _pairs_chunk(context, index_range):
    """Worker chunk: check an index range of (equation, state) pairs.

    Each pair yields ``("ok", instances, failures)`` or — when the
    equation is malformed — ``("error", message)``, so the merger can
    re-raise at exactly the serial raise point.  The chunk stops once
    it holds :data:`_FAILURE_CAP` failures; the merge can never need
    more than the cap from a single chunk.
    """
    spec, induced, states = context
    num_states = len(states)
    records = []
    local_failures = 0
    items = 0
    for flat in index_range:
        if local_failures >= _FAILURE_CAP:
            break
        eq_index, state_index = divmod(flat, num_states)
        equation = spec.equations[eq_index]
        try:
            pair_instances, pair_failures = _check_pair(
                spec,
                induced,
                states[state_index],
                equation,
                _FAILURE_CAP - local_failures,
            )
        except RefinementError as exc:
            records.append(("error", str(exc)))
            break
        items += pair_instances
        local_failures += len(pair_failures)
        records.append(("ok", pair_instances, pair_failures))
    return records, {"items": items}


def check_refinement(
    spec: AlgebraicSpec,
    schema: Schema,
    rep_map: RepresentationMap | None = None,
    max_states: int = 100_000,
    workers: int = 1,
    stats: StatsSink | None = None,
) -> SecondToThirdReport:
    """Verify that T3 is a correct refinement of T2 under K.

    Every conditional equation of A2 is checked at every reachable
    database state (the value of the equation's state variable), for
    every instantiation of its parameter variables over the declared
    domains; both sides are evaluated in the induced structure N(U).

    Args:
        workers: check (equation, state) pairs on this many processes.
            The merge replays the serial pair order — including the
            early exit after twenty failures and its exact
            ``instances_checked`` count — so the report is identical
            for every worker count.
        stats: optional sink receiving one ``"second-third"`` record.
    """
    started = time.perf_counter()
    if rep_map is None:
        rep_map = RepresentationMap.homonym(spec.signature, schema)
    induced = InducedStructure(spec.signature, schema, rep_map)
    with _span("second-third.reachable", max_states=max_states) as rs:
        states = induced.reachable_states(max_states=max_states)
        rs.count("second_third.db_states", len(states))

    if workers <= 1:
        failures: list[EquationFailure] = []
        instances = 0
        report = None
        for equation in spec.equations:
            state_vars, param_vars, spaces = _equation_frame(
                spec, equation
            )
            for state in states:
                for values in itertools.product(*spaces):
                    valuation: dict[Var, Hashable] = dict(
                        zip(param_vars, values)
                    )
                    if state_vars:
                        valuation[state_vars[0]] = state
                    if (
                        equation.condition is not None
                        and not induced.holds(
                            equation.condition, valuation
                        )
                    ):
                        continue
                    instances += 1
                    lhs_value = induced.eval_term(
                        equation.lhs, valuation
                    )
                    rhs_value = induced.eval_term(
                        equation.rhs, valuation
                    )
                    if lhs_value != rhs_value:
                        failures.append(
                            EquationFailure(
                                equation,
                                state,
                                tuple(
                                    (var.name, value)
                                    for var, value in zip(
                                        param_vars, values
                                    )
                                ),
                                lhs_value,
                                rhs_value,
                            )
                        )
                        if len(failures) >= _FAILURE_CAP:
                            report = SecondToThirdReport(
                                False,
                                len(states),
                                instances,
                                tuple(failures),
                            )
                            break
                if report is not None:
                    break
            if report is not None:
                break
        if report is None:
            report = SecondToThirdReport(
                not failures, len(states), instances, tuple(failures)
            )
        if stats is not None:
            record = WorkerStats(
                worker=0,
                items=report.instances_checked,
                wall_time=time.perf_counter() - started,
            )
            stats.add(
                VerificationStats.merge(
                    "second-third",
                    1,
                    [record],
                    time.perf_counter() - started,
                )
            )
        return report

    total_pairs = len(spec.equations) * len(states)
    with _span(
        "second-third.pairs", workers=workers, pairs=total_pairs
    ):
        chunked, per_worker = run_chunked(
            _pairs_chunk,
            (spec, induced, states),
            chunk_ranges(total_pairs, workers),
            workers,
        )
    failures = []
    instances = 0
    report = None
    for record in itertools.chain.from_iterable(chunked):
        if record[0] == "error":
            raise RefinementError(record[1])
        _, pair_instances, pair_failures = record
        for offset, failure in pair_failures:
            failures.append(failure)
            if len(failures) >= _FAILURE_CAP:
                report = SecondToThirdReport(
                    False,
                    len(states),
                    instances + offset,
                    tuple(failures),
                )
                break
        if report is not None:
            break
        instances += pair_instances
    if report is None:
        report = SecondToThirdReport(
            not failures, len(states), instances, tuple(failures)
        )
    if stats is not None:
        stats.add(
            VerificationStats.merge(
                "second-third",
                workers,
                per_worker,
                time.perf_counter() - started,
            )
        )
    return report


def check_agreement(
    algebra: TraceAlgebra,
    schema: Schema,
    rep_map: RepresentationMap | None = None,
    depth: int = 3,
    max_traces: int = 2_000,
) -> SecondToThirdReport:
    """Cross-level agreement: for every trace, every simple observation
    computed by rewriting (level 2) equals the K-realized observation
    on the database state the procedures produce (level 3).

    A complementary, more direct check than equation validity: it
    compares the two levels' answers to every query.
    """
    if rep_map is None:
        rep_map = RepresentationMap.homonym(algebra.signature, schema)
    induced = InducedStructure(algebra.signature, schema, rep_map)
    failures: list[EquationFailure] = []
    instances = 0
    states = 0
    for trace in itertools.islice(algebra.traces(depth), max_traces):
        states += 1
        db_state = induced.state_of_trace(trace)
        for name, params in algebra.observations:
            instances += 1
            algebraic_value = algebra.query(name, *params, trace=trace)
            realized_value = induced.eval_query(name, params, db_state)
            if algebraic_value != realized_value:
                signature = algebra.signature
                query_symbol = signature.query(name)
                lhs = signature.apply_query(
                    name,
                    *(
                        signature.value(sort, value)
                        for sort, value in zip(
                            query_symbol.arg_sorts[:-1], params
                        )
                    ),
                    trace,
                )
                if query_symbol.result_sort == BOOLEAN:
                    rhs: Term = signature.boolean(bool(realized_value))
                else:
                    rhs = signature.value(
                        query_symbol.result_sort, str(realized_value)
                    )
                dummy = ConditionalEquation(
                    lhs, rhs, None, f"agreement:{name}"
                )
                failures.append(
                    EquationFailure(
                        dummy,
                        db_state,
                        (("trace", str(trace)),),
                        algebraic_value,
                        realized_value,
                    )
                )
                if len(failures) >= 20:
                    return SecondToThirdReport(
                        False, states, instances, tuple(failures)
                    )
    return SecondToThirdReport(
        not failures, states, instances, tuple(failures)
    )

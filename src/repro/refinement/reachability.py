"""Valid and reachable state sets: V and G of Section 4.4.

* ``V`` — the set of *valid* states: level-1 structures over the given
  carriers that satisfy all static constraints
  (:func:`enumerate_valid_structures` builds it exhaustively; its size
  is exponential in the carrier sizes, so it is intended for the small
  domains used in bounded verification).

* ``G`` — the set of *reachable* states: "the least set of states
  containing initiate and closed under all the other update functions"
  (:func:`reachable_structures` computes it from the observational
  state graph of a :class:`TraceAlgebra`).

Section 4.4 proves, for the running example, both ``G ⊆ V`` (every
reachable state is valid) and ``V ⊆ G`` (every valid state is
reachable); :func:`compare_valid_reachable` decides both inclusions
and reports witnesses for any failure.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Iterator

from repro.algebraic.algebra import StateGraph, TraceAlgebra
from repro.information.consistency import is_consistent_state
from repro.information.spec import InformationSpec
from repro.logic.sorts import Sort
from repro.logic.structures import Structure
from repro.logic.terms import Term
from repro.obs.tracer import span as _span
from repro.parallel.executor import run_chunked
from repro.parallel.partition import chunk_ranges
from repro.parallel.stats import (
    StatsSink,
    VerificationStats,
    WorkerStats,
    counter_delta,
    engine_counters,
)
from repro.refinement.interpretation import Interpretation

__all__ = [
    "enumerate_valid_structures",
    "reachable_structures",
    "InclusionReport",
    "compare_valid_reachable",
    "synthesize_trace",
]


def _subset_spaces(
    information: InformationSpec, carriers: dict[Sort, list[str]]
) -> list[list[frozenset]]:
    """One subset space (all possible extensions) per db predicate."""
    subset_spaces = []
    for predicate in information.db_predicates:
        domains = [carriers[sort] for sort in predicate.arg_sorts]
        rows = list(itertools.product(*domains))
        subset_spaces.append(list(_all_subsets(rows)))
    return subset_spaces


def _structure_from_extensions(
    information: InformationSpec,
    carriers: dict[Sort, list[str]],
    extensions: tuple[frozenset, ...],
) -> Structure:
    relations = {
        predicate.name: extension
        for predicate, extension in zip(
            information.db_predicates, extensions
        )
    }
    return Structure(information.signature, carriers, relations=relations)


def enumerate_all_structures(
    information: InformationSpec, carriers: dict[Sort, list[str]]
) -> Iterator[Structure]:
    """Yield every structure over the carriers (all combinations of
    db-predicate extensions).  Exponential; bounded-domain use only."""
    subset_spaces = _subset_spaces(information, carriers)
    for extensions in itertools.product(*subset_spaces):
        yield _structure_from_extensions(information, carriers, extensions)


def _all_subsets(rows: list[tuple]) -> Iterator[frozenset]:
    for mask in range(1 << len(rows)):
        yield frozenset(
            row for index, row in enumerate(rows) if mask >> index & 1
        )


def enumerate_valid_structures(
    information: InformationSpec, carriers: dict[Sort, list[str]]
) -> Iterator[Structure]:
    """Yield the set V: structures satisfying every static constraint."""
    for structure in enumerate_all_structures(information, carriers):
        if is_consistent_state(information, structure):
            yield structure


def _reachable_chunk(context, index_range):
    """Worker chunk: realize the witness traces of an index range of
    the state graph as level-1 structures (in state order)."""
    information, carriers, algebra, interpretation, traces = context
    before = engine_counters(algebra.engine)
    structures = [
        interpretation.structure_of_trace(
            information, carriers, algebra, traces[index]
        )
        for index in index_range
    ]
    after = engine_counters(algebra.engine)
    return structures, counter_delta(before, after, len(structures))


def _valid_chunk(context, index_range):
    """Worker chunk: filter an index range of the full structure
    enumeration down to the consistent (valid) ones, in order."""
    information, carriers = context
    subset_spaces = _subset_spaces(information, carriers)
    sliced = itertools.islice(
        itertools.product(*subset_spaces),
        index_range.start,
        index_range.stop,
    )
    structures = []
    for extensions in sliced:
        structure = _structure_from_extensions(
            information, carriers, extensions
        )
        if is_consistent_state(information, structure):
            structures.append(structure)
    return structures, {"items": len(index_range)}


def reachable_structures(
    information: InformationSpec,
    carriers: dict[Sort, list[str]],
    algebra: TraceAlgebra,
    interpretation: Interpretation,
    graph: StateGraph | None = None,
    workers: int = 1,
    stats: StatsSink | None = None,
) -> dict[Structure, Term]:
    """The set G as level-1 structures, each with a witness trace.

    Args:
        graph: a previously computed state graph; explored fresh when
            omitted.
        workers: realize witness traces on this many processes.  The
            graph's state order is replayed during the merge, so the
            result is identical for every worker count.
        stats: optional sink receiving one ``"reachable"`` record.
    """
    started = time.perf_counter()
    if graph is None:
        graph = algebra.explore(workers=workers, stats=stats)
    traces = list(graph.states.values())
    if workers <= 1:
        before = engine_counters(algebra.engine)
        structures = [
            interpretation.structure_of_trace(
                information, carriers, algebra, trace
            )
            for trace in traces
        ]
        per_worker = [
            WorkerStats(
                worker=0,
                wall_time=time.perf_counter() - started,
                **counter_delta(
                    before,
                    engine_counters(algebra.engine),
                    len(structures),
                ),
            )
        ]
    else:
        context = (information, carriers, algebra, interpretation, traces)
        chunked, per_worker = run_chunked(
            _reachable_chunk,
            context,
            chunk_ranges(len(traces), workers),
            workers,
        )
        structures = [s for chunk in chunked for s in chunk]
    out: dict[Structure, Term] = {}
    for structure, trace in zip(structures, traces):
        out.setdefault(structure, trace)
    if stats is not None:
        stats.add(
            VerificationStats.merge(
                "reachable",
                max(1, workers),
                per_worker,
                time.perf_counter() - started,
            )
        )
    return out


def synthesize_trace(
    information: InformationSpec,
    carriers: dict[Sort, list[str]],
    algebra: TraceAlgebra,
    interpretation: Interpretation,
    target: Structure,
    graph: StateGraph | None = None,
) -> Term | None:
    """Constructive Section 4.4c: a shortest update sequence (as a
    trace term) reaching ``target``, or ``None`` if it is unreachable.

    The paper proves V ⊆ G "by induction on the number of courses
    offered and the number of enrollments"; this function turns that
    existence proof into a witness generator.  The returned trace is a
    breadth-first witness, hence of minimal update count.
    """
    if graph is None:
        graph = algebra.explore()
    for snapshot, trace in graph.states.items():
        structure = interpretation.structure_of_trace(
            information, carriers, algebra, trace
        )
        if structure == target:
            return trace
    return None


@dataclass(frozen=True)
class InclusionReport:
    """Outcome of the G-vs-V comparison (Sections 4.4b and 4.4c).

    Attributes:
        reachable_subset_valid: G ⊆ V (static consistency).
        valid_subset_reachable: V ⊆ G (update repertoire completeness).
        valid_count: |V| over the given carriers.
        reachable_count: |G| (distinct level-1 structures reached).
        invalid_reachable: witnesses of G ⊄ V as (structure, trace).
        unreachable_valid: witnesses of V ⊄ G.
        truncated: True iff the exploration hit its state bound, in
            which case a False ``valid_subset_reachable`` may be an
            artifact.
    """

    reachable_subset_valid: bool
    valid_subset_reachable: bool
    valid_count: int
    reachable_count: int
    invalid_reachable: tuple[tuple[Structure, Term], ...] = field(
        default_factory=tuple
    )
    unreachable_valid: tuple[Structure, ...] = field(default_factory=tuple)
    truncated: bool = False

    @property
    def ok(self) -> bool:
        """True iff both inclusions hold (G = V)."""
        return self.reachable_subset_valid and self.valid_subset_reachable

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        lines = [
            f"valid states |V| = {self.valid_count}, reachable states "
            f"|G| = {self.reachable_count}"
            + (" (exploration truncated)" if self.truncated else "")
        ]
        lines.append(
            "G subseteq V: " + ("yes" if self.reachable_subset_valid else "NO")
        )
        lines.append(
            "V subseteq G: " + ("yes" if self.valid_subset_reachable else "NO")
        )
        for structure, trace in self.invalid_reachable[:5]:
            lines.append(f"  invalid but reachable via {trace}: {structure}")
        for structure in self.unreachable_valid[:5]:
            lines.append(f"  valid but unreachable: {structure}")
        return "\n".join(lines)


def _valid_structure_list(
    information: InformationSpec,
    carriers: dict[Sort, list[str]],
    workers: int,
    stats: StatsSink | None,
) -> list[Structure]:
    """The set V in enumeration order, chunked across workers.

    Chunks partition the extension product by index; concatenating
    the per-chunk survivors in chunk order reproduces the serial
    enumeration order exactly.
    """
    started = time.perf_counter()
    if workers <= 1:
        structures = list(enumerate_valid_structures(information, carriers))
        total = 1
        for space in _subset_spaces(information, carriers):
            total *= len(space)
        per_worker = [
            WorkerStats(
                worker=0,
                items=total,
                wall_time=time.perf_counter() - started,
            )
        ]
    else:
        total = 1
        for space in _subset_spaces(information, carriers):
            total *= len(space)
        chunked, per_worker = run_chunked(
            _valid_chunk,
            (information, carriers),
            chunk_ranges(total, workers),
            workers,
        )
        structures = [s for chunk in chunked for s in chunk]
    if stats is not None:
        stats.add(
            VerificationStats.merge(
                "valid-enumeration",
                max(1, workers),
                per_worker,
                time.perf_counter() - started,
            )
        )
    return structures


def compare_valid_reachable(
    information: InformationSpec,
    carriers: dict[Sort, list[str]],
    algebra: TraceAlgebra,
    interpretation: Interpretation,
    graph: StateGraph | None = None,
    workers: int = 1,
    stats: StatsSink | None = None,
) -> InclusionReport:
    """Decide both inclusions of Sections 4.4b and 4.4c exhaustively.

    Args:
        workers: fan the exploration, trace realization, and validity
            enumeration out over this many processes; the report is
            identical for every worker count.
        stats: optional sink receiving one record per phase.
    """
    if graph is None:
        graph = algebra.explore(workers=workers, stats=stats)
    with _span("inclusion", workers=workers) as obs_span:
        with _span("inclusion.reachable"):
            reachable = reachable_structures(
                information,
                carriers,
                algebra,
                interpretation,
                graph,
                workers=workers,
                stats=stats,
            )
        with _span("inclusion.valid-enumeration"):
            valid = set(
                _valid_structure_list(
                    information, carriers, workers, stats
                )
            )
        obs_span.count("inclusion.reachable_states", len(reachable))
        obs_span.count("inclusion.valid_states", len(valid))

        invalid_reachable = tuple(
            (structure, trace)
            for structure, trace in reachable.items()
            if structure not in valid
        )
        unreachable_valid = tuple(
            structure
            for structure in valid
            if structure not in reachable
        )
        return InclusionReport(
            reachable_subset_valid=not invalid_reachable,
            valid_subset_reachable=not unreachable_valid,
            valid_count=len(valid),
            reachable_count=len(reachable),
            invalid_reachable=invalid_reachable,
            unreachable_valid=unreachable_valid,
            truncated=graph.truncated,
        )

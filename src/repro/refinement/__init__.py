"""Refinement between specification levels (paper, Sections 4.3-4.4
and 5.3-5.4): interpretations I, representation maps K, the induced
structure mappings M and N, and the machine-checked correctness
conditions."""

from repro.refinement.first_second import (
    FirstToSecondReport,
    StaticConsistencyReport,
    TransitionConsistencyReport,
    check_refinement as check_first_second,
    check_static_consistency,
    check_transition_consistency,
    prove_static_consistency,
    translate_axiom,
)
from repro.refinement.interpretation import (
    Interpretation,
    PredicateInterpretation,
)
from repro.refinement.reachability import (
    InclusionReport,
    compare_valid_reachable,
    enumerate_valid_structures,
    reachable_structures,
    synthesize_trace,
)
from repro.refinement.second_third import (
    EquationFailure,
    InducedStructure,
    QueryRealization,
    RepresentationMap,
    SecondToThirdReport,
    check_agreement,
    check_refinement as check_second_third,
)

__all__ = [
    "Interpretation",
    "PredicateInterpretation",
    "check_first_second",
    "check_static_consistency",
    "prove_static_consistency",
    "check_transition_consistency",
    "translate_axiom",
    "FirstToSecondReport",
    "StaticConsistencyReport",
    "TransitionConsistencyReport",
    "InclusionReport",
    "compare_valid_reachable",
    "enumerate_valid_structures",
    "reachable_structures",
    "synthesize_trace",
    "RepresentationMap",
    "QueryRealization",
    "InducedStructure",
    "check_second_third",
    "check_agreement",
    "SecondToThirdReport",
    "EquationFailure",
]

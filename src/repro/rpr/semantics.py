"""Denotational semantics of RPR (paper, Section 5.1.2).

A *universe* U for the schema's language is the set of all structures
that differ only on the values of the scalar and relational program
variables — here represented concretely: a :class:`DatabaseState`
records exactly those values, and the universe is the (finite) set of
all database states over the given column domains.

The meaning function m assigns to each statement a binary relation on
U:

    m(x := t)     = {(A,B) / B = A except B(x) = A(t)}
    m(R := F)     = {(A,B) / B = A except B(R) = A(F)}
    m(P?)         = {(A,A) / P is true in A}
    m(p u q)      = m(p) ∪ m(q)
    m(p ; q)      = m(p) ∘ m(q)
    m(p*)         = (m(p))*          (reflexive-transitive closure)

and the meaning function k assigns to ``proc I(Y1,...,Ym) = S`` the
function taking argument values c1,...,cm to the binary relation
``{(A,B) / (A[c/Y], B) ∈ m(S)}``.

Implementation note: instead of materializing the full relations
m(S) ⊆ U×U (quadratic in the exponentially-sized universe), the
evaluator computes their *images* — ``run(S, A)`` returns
``{B / (A,B) ∈ m(S)}`` — which determine the relations completely and
agree with the denotational definitions pointwise (a property-tested
fact).  :func:`statement_relation` materializes the full relation over
an explicitly given universe when the set-theoretic object itself is
wanted.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

from repro.errors import ExecutionError
from repro.logic import formulas as fm
from repro.logic.sorts import Sort
from repro.logic.terms import Term, Var
from repro.rpr.ast import (
    Assign,
    Delete,
    IfThen,
    IfThenElse,
    Insert,
    RelAssign,
    RelationalTerm,
    ScalarRef,
    Schema,
    Seq,
    Skip,
    Star,
    Statement,
    Test,
    Union,
    ValueLiteral,
    While,
    desugar,
)

__all__ = [
    "DatabaseState",
    "Domains",
    "initial_state",
    "evaluate_term",
    "satisfies",
    "evaluate_relational_term",
    "run",
    "run_proc",
    "statement_relation",
    "proc_function",
    "all_states",
]

#: Column domains: finite carrier per sort.
Domains = Mapping[Sort, tuple[str, ...]]


@dataclass(frozen=True)
class DatabaseState:
    """One structure of the universe: the values of all relational and
    scalar program variables.

    Attributes:
        relations: sorted tuple of (relation name, extension) pairs.
        scalars: sorted tuple of (scalar name, value) pairs.
    """

    relations: tuple[tuple[str, frozenset[tuple[str, ...]]], ...]
    scalars: tuple[tuple[str, Hashable], ...] = ()

    @classmethod
    def make(
        cls,
        relations: Mapping[str, Iterable[tuple[str, ...]]],
        scalars: Mapping[str, Hashable] | None = None,
    ) -> "DatabaseState":
        """Build a state from mappings (normalizing the order)."""
        rel = tuple(
            sorted(
                (name, frozenset(tuple(row) for row in rows))
                for name, rows in relations.items()
            )
        )
        sca = tuple(sorted((scalars or {}).items()))
        return cls(rel, sca)

    def relation(self, name: str) -> frozenset[tuple[str, ...]]:
        """The extension of a relational program variable."""
        for rel_name, extension in self.relations:
            if rel_name == name:
                return extension
        raise ExecutionError(f"state has no relation {name!r}")

    def scalar(self, name: str) -> Hashable:
        """The value of a scalar program variable."""
        for scalar_name, value in self.scalars:
            if scalar_name == name:
                return value
        raise ExecutionError(f"state has no scalar {name!r}")

    def with_relation(
        self, name: str, extension: Iterable[tuple[str, ...]]
    ) -> "DatabaseState":
        """A copy with one relation replaced."""
        frozen = frozenset(tuple(row) for row in extension)
        found = False
        out = []
        for rel_name, old in self.relations:
            if rel_name == name:
                out.append((rel_name, frozen))
                found = True
            else:
                out.append((rel_name, old))
        if not found:
            raise ExecutionError(f"state has no relation {name!r}")
        return DatabaseState(tuple(out), self.scalars)

    def with_scalar(self, name: str, value: Hashable) -> "DatabaseState":
        """A copy with one scalar replaced."""
        found = False
        out = []
        for scalar_name, old in self.scalars:
            if scalar_name == name:
                out.append((scalar_name, value))
                found = True
            else:
                out.append((scalar_name, old))
        if not found:
            raise ExecutionError(f"state has no scalar {name!r}")
        return DatabaseState(self.relations, tuple(out))

    def __str__(self) -> str:
        parts = []
        for name, extension in self.relations:
            rows = ", ".join(
                "(" + ", ".join(row) + ")" for row in sorted(extension)
            )
            parts.append(f"{name} = {{{rows}}}")
        for name, value in self.scalars:
            parts.append(f"{name} = {value}")
        return "; ".join(parts)


def initial_state(
    schema: Schema, scalars: Mapping[str, Hashable] | None = None
) -> DatabaseState:
    """The state with every declared relation empty.

    Scalar variables must be given initial values if declared.
    """
    scalars = dict(scalars or {})
    for decl in schema.scalars:
        if decl.name not in scalars:
            raise ExecutionError(
                f"scalar {decl.name!r} needs an initial value"
            )
    return DatabaseState.make(
        {decl.name: frozenset() for decl in schema.relations}, scalars
    )


# ---------------------------------------------------------------------
# term and formula evaluation over a database state
# ---------------------------------------------------------------------
def evaluate_term(
    term: Term,
    state: DatabaseState,
    valuation: Mapping[Var, str] | None = None,
) -> Hashable:
    """Evaluate an RPR term: a variable (from the valuation), a scalar
    program variable (from the state) or a value literal."""
    valuation = valuation or {}
    if isinstance(term, Var):
        try:
            return valuation[term]
        except KeyError:
            raise ExecutionError(
                f"unbound variable {term.name} in RPR evaluation"
            ) from None
    if isinstance(term, ScalarRef):
        return state.scalar(term.name)
    if isinstance(term, ValueLiteral):
        return term.value
    raise ExecutionError(f"unsupported RPR term: {term}")


def satisfies(
    formula: fm.Formula,
    state: DatabaseState,
    domains: Domains,
    valuation: Mapping[Var, str] | None = None,
) -> bool:
    """Decide a wff over the schema's language at a database state.

    Atoms are relation memberships; quantifiers range over the column
    domains.
    """
    valuation = dict(valuation or {})
    if isinstance(formula, fm.TrueF):
        return True
    if isinstance(formula, fm.FalseF):
        return False
    if isinstance(formula, fm.Atom):
        args = tuple(
            evaluate_term(arg, state, valuation) for arg in formula.args
        )
        return args in state.relation(formula.predicate.name)
    if isinstance(formula, fm.Equals):
        return evaluate_term(formula.lhs, state, valuation) == evaluate_term(
            formula.rhs, state, valuation
        )
    if isinstance(formula, fm.Not):
        return not satisfies(formula.body, state, domains, valuation)
    if isinstance(formula, fm.And):
        return satisfies(
            formula.lhs, state, domains, valuation
        ) and satisfies(formula.rhs, state, domains, valuation)
    if isinstance(formula, fm.Or):
        return satisfies(
            formula.lhs, state, domains, valuation
        ) or satisfies(formula.rhs, state, domains, valuation)
    if isinstance(formula, fm.Implies):
        return (
            not satisfies(formula.lhs, state, domains, valuation)
        ) or satisfies(formula.rhs, state, domains, valuation)
    if isinstance(formula, fm.Iff):
        return satisfies(
            formula.lhs, state, domains, valuation
        ) == satisfies(formula.rhs, state, domains, valuation)
    if isinstance(formula, (fm.Forall, fm.Exists)):
        try:
            carrier = domains[formula.var.sort]
        except KeyError:
            raise ExecutionError(
                f"no domain for sort {formula.var.sort}"
            ) from None
        results = (
            satisfies(
                formula.body,
                state,
                domains,
                {**valuation, formula.var: value},
            )
            for value in carrier
        )
        if isinstance(formula, fm.Forall):
            return all(results)
        return any(results)
    raise ExecutionError(f"unsupported formula in RPR: {formula!r}")


def evaluate_relational_term(
    term: RelationalTerm,
    state: DatabaseState,
    domains: Domains,
    valuation: Mapping[Var, str] | None = None,
) -> frozenset[tuple[str, ...]]:
    """The relation A(F) denoted by ``{(x...) / P}`` at a state."""
    valuation = dict(valuation or {})
    spaces = []
    for var in term.variables:
        try:
            spaces.append(domains[var.sort])
        except KeyError:
            raise ExecutionError(
                f"no domain for sort {var.sort}"
            ) from None
    rows = set()
    for values in itertools.product(*spaces):
        inner = dict(valuation)
        inner.update(zip(term.variables, values))
        if satisfies(term.formula, state, domains, inner):
            rows.add(values)
    return frozenset(rows)


# ---------------------------------------------------------------------
# the meaning functions m and k
# ---------------------------------------------------------------------
def run(
    statement: Statement,
    state: DatabaseState,
    schema: Schema,
    domains: Domains,
    valuation: Mapping[Var, str] | None = None,
) -> frozenset[DatabaseState]:
    """The image of ``state`` under m(statement).

    Derived constructs are interpreted by their defining expansions;
    iteration is the least fixpoint, which exists and is reached in
    finitely many steps because the universe is finite.
    """
    valuation = dict(valuation or {})
    return _run(statement, state, schema, domains, valuation)


def _run(
    statement: Statement,
    state: DatabaseState,
    schema: Schema,
    domains: Domains,
    valuation: dict[Var, str],
) -> frozenset[DatabaseState]:
    if isinstance(statement, Assign):
        value = evaluate_term(statement.term, state, valuation)
        return frozenset({state.with_scalar(statement.scalar, value)})
    if isinstance(statement, RelAssign):
        extension = evaluate_relational_term(
            statement.term, state, domains, valuation
        )
        decl = schema.relation(statement.relation)
        if statement.term.sort != decl.column_sorts:
            raise ExecutionError(
                f"relational assignment to {statement.relation}: sort "
                f"mismatch"
            )
        return frozenset(
            {state.with_relation(statement.relation, extension)}
        )
    if isinstance(statement, Test):
        if satisfies(statement.formula, state, domains, valuation):
            return frozenset({state})
        return frozenset()
    if isinstance(statement, Skip):
        return frozenset({state})
    if isinstance(statement, Union):
        return _run(
            statement.left, state, schema, domains, valuation
        ) | _run(statement.right, state, schema, domains, valuation)
    if isinstance(statement, Seq):
        out: set[DatabaseState] = set()
        for middle in _run(
            statement.left, state, schema, domains, valuation
        ):
            out |= _run(statement.right, middle, schema, domains, valuation)
        return frozenset(out)
    if isinstance(statement, Star):
        reached: set[DatabaseState] = {state}
        frontier = [state]
        while frontier:
            current = frontier.pop()
            for successor in _run(
                statement.body, current, schema, domains, valuation
            ):
                if successor not in reached:
                    reached.add(successor)
                    frontier.append(successor)
        return frozenset(reached)
    if isinstance(
        statement, (IfThen, IfThenElse, While, Insert, Delete)
    ):
        return _run(
            desugar(statement, schema), state, schema, domains, valuation
        )
    raise TypeError(f"not a statement: {statement!r}")


def run_proc(
    schema: Schema,
    name: str,
    args: tuple[str, ...],
    state: DatabaseState,
    domains: Domains,
) -> frozenset[DatabaseState]:
    """The image of ``state`` under k(proc)(args) — definition (7) of
    Section 5.1.2: run the body with the parameters valuated at the
    argument values."""
    proc = schema.proc(name)
    if len(args) != len(proc.params):
        raise ExecutionError(
            f"proc {name} expects {len(proc.params)} argument(s), got "
            f"{len(args)}"
        )
    valuation = dict(zip(proc.params, args))
    return run(proc.body, state, schema, domains, valuation)


def all_states(
    schema: Schema,
    domains: Domains,
    scalar_values: Mapping[str, tuple[Hashable, ...]] | None = None,
) -> Iterator[DatabaseState]:
    """Enumerate the universe U: every combination of relation
    extensions (and scalar values, if declared).

    Exponential in the domain sizes; intended for the small universes
    of bounded verification and for materializing m(p) as an explicit
    relation.
    """
    scalar_values = dict(scalar_values or {})
    rel_spaces: list[list[frozenset[tuple[str, ...]]]] = []
    for decl in schema.relations:
        rows = list(
            itertools.product(
                *(domains[sort] for sort in decl.column_sorts)
            )
        )
        subsets = [
            frozenset(
                row for index, row in enumerate(rows) if mask >> index & 1
            )
            for mask in range(1 << len(rows))
        ]
        rel_spaces.append(subsets)
    scalar_names = [decl.name for decl in schema.scalars]
    scalar_spaces = [
        scalar_values.get(
            decl.name, tuple(domains.get(decl.sort, ()))
        )
        for decl in schema.scalars
    ]
    for extensions in itertools.product(*rel_spaces):
        relations = {
            decl.name: extension
            for decl, extension in zip(schema.relations, extensions)
        }
        if scalar_names:
            for values in itertools.product(*scalar_spaces):
                yield DatabaseState.make(
                    relations, dict(zip(scalar_names, values))
                )
        else:
            yield DatabaseState.make(relations)


def statement_relation(
    statement: Statement,
    schema: Schema,
    domains: Domains,
    universe: Iterable[DatabaseState] | None = None,
    valuation: Mapping[Var, str] | None = None,
) -> frozenset[tuple[DatabaseState, DatabaseState]]:
    """Materialize m(statement) as an explicit binary relation over the
    universe (all states by default)."""
    states = (
        list(universe)
        if universe is not None
        else list(all_states(schema, domains))
    )
    pairs = set()
    for state in states:
        for successor in run(statement, state, schema, domains, valuation):
            pairs.add((state, successor))
    return frozenset(pairs)


def proc_function(
    schema: Schema,
    name: str,
    domains: Domains,
):
    """k(d) as a Python callable: args -> (state -> set of states).

    If the proc body is deterministic, the returned images are
    singletons and the callable behaves as a function from U into U
    (the paper's remark at the end of Section 5.1.2).
    """

    def apply(*args: str):
        def on_state(state: DatabaseState) -> frozenset[DatabaseState]:
            return run_proc(schema, name, tuple(args), state, domains)

        return on_state

    return apply

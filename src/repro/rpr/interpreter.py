"""A convenience database engine on top of the RPR semantics.

:class:`Database` holds a current :class:`DatabaseState` and exposes
the schema's operations as callable updates and its relations/formulas
as queries — the shape of an actual DBMS session, which is what the
representation level "brings us close to" (paper, Section 2).
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.errors import ExecutionError
from repro.logic import formulas as fm
from repro.logic.sorts import Sort
from repro.rpr.ast import Schema, is_deterministic
from repro.rpr.semantics import (
    DatabaseState,
    Domains,
    initial_state,
    run_proc,
    satisfies,
)

__all__ = ["Database"]


class Database:
    """A mutable database session driven by an RPR schema.

    Args:
        schema: the parsed schema.
        domains: finite carrier per sort (keyed by :class:`Sort` or
            sort name).
        scalars: initial values for declared scalar variables.

    Example:
        >>> db = Database(schema, {"Students": ["s1"], "Courses": ["c1"]})
        >>> db.call("initiate")
        >>> db.call("offer", "c1")
        >>> db.holds_fact("OFFERED", "c1")
        True
    """

    def __init__(
        self,
        schema: Schema,
        domains: Mapping[Sort | str, list[str]],
        scalars: Mapping[str, Hashable] | None = None,
    ):
        self.schema = schema
        self._domains: dict[Sort, tuple[str, ...]] = {}
        for key, values in domains.items():
            sort = Sort(key) if isinstance(key, str) else key
            self._domains[sort] = tuple(values)
        self.state = initial_state(schema, scalars)
        self._history: list[tuple[str, tuple[str, ...]]] = []

    @property
    def domains(self) -> Domains:
        """The column domains of the session."""
        return dict(self._domains)

    @property
    def history(self) -> tuple[tuple[str, tuple[str, ...]], ...]:
        """The operations applied so far (the trace of Section 5.4)."""
        return tuple(self._history)

    def call(self, proc: str, *args: str) -> DatabaseState:
        """Invoke an operation, advancing the current state.

        Raises:
            ExecutionError: if the procedure blocks (no successor
                state) or is nondeterministic on the current state.
        """
        results = run_proc(
            self.schema, proc, tuple(args), self.state, self._domains
        )
        if not results:
            raise ExecutionError(
                f"{proc}({', '.join(args)}) blocks at the current state"
            )
        if len(results) > 1:
            raise ExecutionError(
                f"{proc}({', '.join(args)}) is nondeterministic at the "
                f"current state ({len(results)} successors); use "
                "possible_states() instead"
            )
        (self.state,) = results
        self._history.append((proc, tuple(args)))
        return self.state

    def possible_states(
        self, proc: str, *args: str
    ) -> frozenset[DatabaseState]:
        """All successor states of an operation, without advancing."""
        return run_proc(
            self.schema, proc, tuple(args), self.state, self._domains
        )

    def holds_fact(self, relation: str, *values: str) -> bool:
        """Membership query: is the tuple in the relation now?"""
        return tuple(values) in self.state.relation(relation)

    def rows(self, relation: str) -> frozenset[tuple[str, ...]]:
        """The current extension of a relation."""
        return self.state.relation(relation)

    def holds(self, formula: fm.Formula) -> bool:
        """Evaluate a closed wff at the current state."""
        return satisfies(formula, self.state, self._domains)

    def is_deterministic_schema(self) -> bool:
        """True iff every operation body is syntactically
        deterministic (paper, end of Section 5.1.2)."""
        return all(
            is_deterministic(proc.body) for proc in self.schema.procs
        )

    def reset(self, scalars: Mapping[str, Hashable] | None = None) -> None:
        """Return to the all-empty state and clear the history."""
        self.state = initial_state(self.schema, scalars)
        self._history.clear()

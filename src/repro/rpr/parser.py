"""Recursive-descent parser for RPR data base schemas.

Grammar (statement level; formulas use the same grammar as
:mod:`repro.logic.parser`):

.. code-block:: text

    schema    := 'schema' decl* proc* 'end-schema'
    decl      := RELNAME '(' SORT (',' SORT)* ')' ';'
               | 'var' ident ':' SORT ';'
    proc      := 'proc' ident '(' params? ')' '=' statement
    params    := ident (':' SORT)? (',' ident (':' SORT)?)*
    statement := seqlevel ('|' seqlevel)*            (union)
    seqlevel  := unit (';' unit)*                    (composition)
    unit      := '(' statement ')' '*'?              (grouping, iteration)
               | 'skip'
               | 'if' formula 'then' statement ('else' statement)?
               | 'while' formula 'do' statement
               | 'insert' RELNAME '(' terms ')'
               | 'delete' RELNAME '(' terms ')'
               | ident ':=' (term | relterm)         (assignment)
               | formula '?'                         (test)
    relterm   := '{' '}'
               | '{' '(' ident (',' ident)* ')' '/' formula '}'
               | '{' ident '/' formula '}'

Parameter sorts may be annotated (``proc enroll(s: Students, c:
Courses) = ...``) or, as in the paper's notation, left off — in which
case they are inferred from the parameters' occurrences as arguments
of declared relations in the body.
"""

from __future__ import annotations

from repro.errors import ParseError, SpecificationError
from repro.logic import formulas as fm
from repro.logic.signature import PredicateSymbol
from repro.logic.sorts import Sort
from repro.logic.terms import Term, Var
from repro.rpr.ast import (
    Assign,
    ConstDecl,
    Delete,
    IfThen,
    IfThenElse,
    Insert,
    ProcDecl,
    RelAssign,
    RelationalTerm,
    RelationDecl,
    ScalarDecl,
    ScalarRef,
    ValueLiteral,
    Schema,
    Seq,
    Skip,
    Star,
    Statement,
    Test,
    Union,
    While,
)
from repro.rpr.lexer import Token, tokenize

__all__ = ["parse_schema"]


class _SchemaParser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0
        self._relations: dict[str, RelationDecl] = {}
        self._scalars: dict[str, ScalarDecl] = {}
        self._consts: dict[str, ConstDecl] = {}
        self._sorts: dict[str, Sort] = {}
        self._predicates: dict[str, PredicateSymbol] = {}
        # Variable scope while parsing a proc body: name -> Var.
        self._scope: dict[str, Var] = {}

    # -- token plumbing -------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        self._pos += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._current
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise ParseError(
                f"expected {want!r}, found "
                f"{token.text or 'end of input'!r}",
                position=token.position,
            )
        return self._advance()

    def _peek_is(self, kind: str, text: str | None = None) -> bool:
        token = self._current
        return token.kind == kind and (text is None or token.text == text)

    # -- schema level ---------------------------------------------------
    def parse(self) -> Schema:
        self._expect("keyword", "schema")
        relations: list[RelationDecl] = []
        scalars: list[ScalarDecl] = []
        consts: list[ConstDecl] = []
        while True:
            if self._peek_is("keyword", "var"):
                scalars.append(self._scalar_decl())
            elif self._peek_is("keyword", "const"):
                consts.append(self._const_decl())
            elif self._peek_is("ident") and self._tokens[
                self._pos + 1
            ] and self._tokens[self._pos + 1].kind == "op" and self._tokens[
                self._pos + 1
            ].text == "(":
                relations.append(self._relation_decl())
            else:
                break
        procs: list[ProcDecl] = []
        while self._peek_is("keyword", "proc"):
            procs.append(self._proc_decl())
        self._expect("end-schema")
        if self._current.kind != "eof":
            raise ParseError(
                f"unexpected trailing input "
                f"{self._current.text!r} after end-schema",
                position=self._current.position,
            )
        return Schema(
            tuple(relations), tuple(procs), tuple(scalars), tuple(consts)
        )

    def _sort(self, name: str) -> Sort:
        if name not in self._sorts:
            self._sorts[name] = Sort(name)
        return self._sorts[name]

    def _relation_decl(self) -> RelationDecl:
        name = self._expect("ident").text
        if name in self._relations:
            raise ParseError(f"relation {name!r} redeclared")
        self._expect("op", "(")
        columns = [self._sort(self._expect("ident").text)]
        while self._peek_is("op", ","):
            self._advance()
            columns.append(self._sort(self._expect("ident").text))
        self._expect("op", ")")
        self._expect("op", ";")
        decl = RelationDecl(name, tuple(columns))
        self._relations[name] = decl
        self._predicates[name] = PredicateSymbol(name, tuple(columns))
        return decl

    def _scalar_decl(self) -> ScalarDecl:
        self._expect("keyword", "var")
        name = self._expect("ident").text
        self._expect("op", ":")
        sort = self._sort(self._expect("ident").text)
        self._expect("op", ";")
        decl = ScalarDecl(name, sort)
        self._scalars[name] = decl
        return decl

    def _const_decl(self) -> ConstDecl:
        self._expect("keyword", "const")
        name = self._expect("ident").text
        self._expect("op", ":")
        sort = self._sort(self._expect("ident").text)
        self._expect("op", ";")
        decl = ConstDecl(name, sort)
        self._consts[name] = decl
        return decl

    # -- procedures -----------------------------------------------------
    def _proc_decl(self) -> ProcDecl:
        self._expect("keyword", "proc")
        name = self._expect("ident").text
        self._expect("op", "(")
        raw_params: list[tuple[str, Sort | None]] = []
        if not self._peek_is("op", ")"):
            raw_params.append(self._param())
            while self._peek_is("op", ","):
                self._advance()
                raw_params.append(self._param())
        self._expect("op", ")")
        self._expect("op", "=")
        body_start = self._pos
        inferred = self._infer_param_sorts(raw_params, body_start)
        params = tuple(
            Var(param_name, inferred[param_name])
            for param_name, _ in raw_params
        )
        self._scope = {var.name: var for var in params}
        body = self._statement()
        self._scope = {}
        return ProcDecl(name, params, body)

    def _param(self) -> tuple[str, Sort | None]:
        name = self._expect("ident").text
        if self._peek_is("op", ":"):
            self._advance()
            return name, self._sort(self._expect("ident").text)
        return name, None

    def _infer_param_sorts(
        self,
        raw_params: list[tuple[str, Sort | None]],
        body_start: int,
    ) -> dict[str, Sort]:
        """Infer unannotated parameter sorts by scanning the body's
        token stream for relation applications ``R(a1, ..., an)``.
        """
        inferred: dict[str, Sort] = {
            name: sort for name, sort in raw_params if sort is not None
        }
        wanted = {name for name, sort in raw_params if sort is None}
        index = body_start
        # Scan the whole body (not just until every sort is found) so
        # conflicting uses are reported as such.
        while index < len(self._tokens) and wanted:
            token = self._tokens[index]
            if token.kind in ("end-schema", "eof"):
                break
            if token.kind == "keyword" and token.text == "proc":
                break
            if (
                token.kind == "ident"
                and token.text in self._relations
                and index + 1 < len(self._tokens)
                and self._tokens[index + 1].kind == "op"
                and self._tokens[index + 1].text == "("
            ):
                decl = self._relations[token.text]
                args, consumed = self._scan_args(index + 2)
                for column, arg in zip(decl.column_sorts, args):
                    if arg in wanted:
                        previous = inferred.get(arg)
                        if previous is not None and previous != column:
                            raise ParseError(
                                f"parameter {arg!r}: conflicting sort "
                                f"inference ({previous} vs {column})",
                                position=token.position,
                            )
                        inferred[arg] = column
                index = consumed
                continue
            if (
                token.kind == "ident"
                and token.text in self._scalars
                and index + 2 < len(self._tokens)
                and self._tokens[index + 1].kind == "op"
                and self._tokens[index + 1].text == ":="
                and self._tokens[index + 2].kind == "ident"
                and self._tokens[index + 2].text in wanted
            ):
                # Scalar assignment 'counter := x' sorts x as well.
                name = self._tokens[index + 2].text
                column = self._scalars[token.text].sort
                previous = inferred.get(name)
                if previous is not None and previous != column:
                    raise ParseError(
                        f"parameter {name!r}: conflicting sort "
                        f"inference ({previous} vs {column})",
                        position=token.position,
                    )
                inferred[name] = column
                index += 3
                continue
            index += 1
        missing = [name for name, _ in raw_params if name not in inferred]
        if missing:
            raise ParseError(
                f"cannot infer sort(s) of parameter(s) {missing}; "
                "annotate them (e.g. 'proc p(x: SortName) = ...')"
            )
        return inferred

    def _scan_args(self, index: int) -> tuple[list[str | None], int]:
        """Scan a parenthesized argument list starting right after the
        '('; returns top-level bare-identifier arguments (None for
        complex arguments) and the index just past the ')'."""
        args: list[str | None] = []
        current: list[Token] = []
        depth = 0
        while index < len(self._tokens):
            token = self._tokens[index]
            if token.kind == "op" and token.text == "(":
                depth += 1
                current.append(token)
            elif token.kind == "op" and token.text == ")":
                if depth == 0:
                    args.append(self._bare_ident(current))
                    return args, index + 1
                depth -= 1
                current.append(token)
            elif token.kind == "op" and token.text == "," and depth == 0:
                args.append(self._bare_ident(current))
                current = []
            elif token.kind == "eof":
                break
            else:
                current.append(token)
            index += 1
        raise ParseError("unterminated argument list", position=index)

    @staticmethod
    def _bare_ident(tokens: list[Token]) -> str | None:
        if len(tokens) == 1 and tokens[0].kind == "ident":
            return tokens[0].text
        return None

    # -- statements -----------------------------------------------------
    def _statement(self) -> Statement:
        left = self._seqlevel()
        while self._peek_is("op", "|"):
            self._advance()
            left = Union(left, self._seqlevel())
        return left

    def _seqlevel(self) -> Statement:
        left = self._unit()
        while self._peek_is("op", ";"):
            self._advance()
            left = Seq(left, self._unit())
        return left

    def _unit(self) -> Statement:
        if self._peek_is("op", "("):
            saved = self._pos
            self._advance()
            try:
                inner = self._statement()
                self._expect("op", ")")
            except ParseError:
                # Not a parenthesized statement: a parenthesized
                # formula test, e.g. "(P & Q)?".
                self._pos = saved
                return self._test()
            if self._peek_is("op", "*"):
                self._advance()
                return Star(inner)
            return inner
        if self._peek_is("keyword", "skip"):
            self._advance()
            return Skip()
        if self._peek_is("keyword", "if"):
            self._advance()
            condition = self._formula()
            self._expect("keyword", "then")
            then = self._unit_or_statementish()
            if self._peek_is("keyword", "else"):
                self._advance()
                orelse = self._unit_or_statementish()
                return IfThenElse(condition, then, orelse)
            return IfThen(condition, then)
        if self._peek_is("keyword", "while"):
            self._advance()
            condition = self._formula()
            self._expect("keyword", "do")
            return While(condition, self._unit_or_statementish())
        if self._peek_is("keyword", "insert") or self._peek_is(
            "keyword", "delete"
        ):
            keyword = self._advance().text
            relation = self._expect("ident").text
            if relation not in self._relations:
                raise ParseError(
                    f"{keyword} on undeclared relation {relation!r}"
                )
            self._expect("op", "(")
            args: list[Term] = [self._term()]
            while self._peek_is("op", ","):
                self._advance()
                args.append(self._term())
            self._expect("op", ")")
            node = Insert if keyword == "insert" else Delete
            decl = self._relations[relation]
            if len(args) != decl.arity:
                raise ParseError(
                    f"{keyword} {relation}: expected {decl.arity} "
                    f"argument(s), got {len(args)}"
                )
            for arg, sort in zip(args, decl.column_sorts):
                if arg.sort != sort:
                    raise ParseError(
                        f"{keyword} {relation}: argument {arg} has sort "
                        f"{arg.sort}, column needs {sort}"
                    )
            return node(relation, tuple(args))
        if self._peek_is("ident"):
            name = self._current.text
            next_token = self._tokens[self._pos + 1]
            if next_token.kind == "op" and next_token.text == ":=":
                return self._assignment()
        return self._test()

    def _unit_or_statementish(self) -> Statement:
        """The branch of an if/while: a single unit, or a parenthesized
        full statement (already handled by _unit)."""
        return self._unit()

    def _assignment(self) -> Statement:
        name = self._advance().text
        self._expect("op", ":=")
        if name in self._relations:
            return RelAssign(name, self._relational_term(name))
        if name in self._scalars:
            return Assign(name, self._term())
        raise ParseError(
            f"assignment to undeclared program variable {name!r}"
        )

    def _relational_term(self, relation: str) -> RelationalTerm:
        decl = self._relations[relation]
        self._expect("op", "{")
        if self._peek_is("op", "}"):
            self._advance()
            variables = tuple(
                Var(f"rx{i + 1}", sort)
                for i, sort in enumerate(decl.column_sorts)
            )
            return RelationalTerm(variables, fm.FALSE)
        names: list[str] = []
        if self._peek_is("op", "("):
            self._advance()
            names.append(self._expect("ident").text)
            while self._peek_is("op", ","):
                self._advance()
                names.append(self._expect("ident").text)
            self._expect("op", ")")
        else:
            names.append(self._expect("ident").text)
        if len(names) != decl.arity:
            raise ParseError(
                f"relational term for {relation}: expected {decl.arity} "
                f"tuple variable(s), got {len(names)}"
            )
        variables = tuple(
            Var(name, sort)
            for name, sort in zip(names, decl.column_sorts)
        )
        self._expect("op", "/")
        saved_scope = dict(self._scope)
        for var in variables:
            self._scope[var.name] = var
        formula = self._formula()
        self._scope = saved_scope
        self._expect("op", "}")
        return RelationalTerm(variables, formula)

    def _test(self) -> Statement:
        formula = self._formula()
        self._expect("op", "?")
        return Test(formula)

    # -- formulas (same precedence as repro.logic.parser) ---------------
    def _formula(self) -> fm.Formula:
        return self._iff()

    def _iff(self) -> fm.Formula:
        left = self._imp()
        while self._peek_is("op", "<->"):
            self._advance()
            left = fm.Iff(left, self._imp())
        return left

    def _imp(self) -> fm.Formula:
        left = self._or()
        if self._peek_is("op", "->"):
            self._advance()
            return fm.Implies(left, self._imp())
        return left

    def _or(self) -> fm.Formula:
        left = self._and()
        while self._peek_is("op", "|"):
            # At statement level '|' means union; inside a formula it
            # is disjunction.  Formula context always wins here because
            # _formula is only entered from formula positions.
            self._advance()
            left = fm.Or(left, self._and())
        return left

    def _and(self) -> fm.Formula:
        left = self._funary()
        while self._peek_is("op", "&"):
            self._advance()
            left = fm.And(left, self._funary())
        return left

    def _funary(self) -> fm.Formula:
        if self._peek_is("op", "~"):
            self._advance()
            return fm.Not(self._funary())
        if self._peek_is("keyword", "forall") or self._peek_is(
            "keyword", "exists"
        ):
            return self._quantified()
        return self._fprimary()

    def _quantified(self) -> fm.Formula:
        cls = (
            fm.Forall
            if self._advance().text == "forall"
            else fm.Exists
        )
        bindings: list[Var] = []
        while True:
            name = self._expect("ident").text
            self._expect("op", ":")
            sort = self._sort(self._expect("ident").text)
            bindings.append(Var(name, sort))
            if self._peek_is("op", ","):
                self._advance()
                continue
            break
        self._expect("op", ".")
        saved = dict(self._scope)
        for var in bindings:
            self._scope[var.name] = var
        body = self._formula()
        self._scope = saved
        result: fm.Formula = body
        for var in reversed(bindings):
            result = cls(var, result)
        return result

    def _fprimary(self) -> fm.Formula:
        if self._peek_is("op", "("):
            self._advance()
            inner = self._formula()
            self._expect("op", ")")
            return inner
        if self._peek_is("keyword", "true"):
            self._advance()
            return fm.TRUE
        if self._peek_is("keyword", "false"):
            self._advance()
            return fm.FALSE
        if self._peek_is("ident") and self._current.text in self._relations:
            return self._atom()
        lhs = self._term()
        if self._peek_is("op", "="):
            self._advance()
            return fm.Equals(lhs, self._term())
        if self._peek_is("op", "!="):
            self._advance()
            return fm.Not(fm.Equals(lhs, self._term()))
        raise ParseError(
            f"expected '=' or '!=' after term, found "
            f"{self._current.text or 'end of input'!r}",
            position=self._current.position,
        )

    def _atom(self) -> fm.Formula:
        name = self._advance().text
        predicate = self._predicates[name]
        self._expect("op", "(")
        args = [self._term()]
        while self._peek_is("op", ","):
            self._advance()
            args.append(self._term())
        self._expect("op", ")")
        return fm.Atom(predicate, tuple(args))

    def _term(self) -> Term:
        token = self._expect("ident")
        name = token.text
        if name in self._scope:
            return self._scope[name]
        if name in self._scalars:
            return ScalarRef(name, self._scalars[name].sort)
        if name in self._consts:
            return ValueLiteral(name, self._consts[name].sort)
        raise ParseError(
            f"unknown identifier {name!r} (not a parameter, bound "
            "variable, scalar program variable, or declared constant)",
            position=token.position,
        )


def parse_schema(source: str) -> Schema:
    """Parse an RPR data base schema from concrete syntax.

    Raises:
        ParseError: on a syntax error, an undeclared program variable
            (the context condition the W-grammar enforces), or a
            failed parameter-sort inference.
    """
    try:
        return _SchemaParser(tokenize(source)).parse()
    except SpecificationError as exc:
        raise ParseError(str(exc)) from exc

"""Abstract syntax of RPR — regular programs over relations.

Paper, Section 5.1.1.  A *data base schema* is::

    schema SCL ; OPL end-schema

where SCL declares relation names over column domains and OPL declares
operations ``proc I(Y1,...,Yn) = S``.  Statements are built from

1. scalar assignment ``x := t``,
2. relational assignment ``R := {(x1,...,xm) / P}``,
3. tests ``P?``,
4. union ``(p u q)``, composition ``(p ; q)`` and iteration ``p*``,

plus derived deterministic constructs (if-then, if-then-else, while,
insert, delete), which :func:`desugar` expands into the core.

Formulas inside statements are ordinary :mod:`repro.logic` formulas
over the schema's signature (relation names as predicates, column
domains as sorts); terms are variables (procedure parameters or
quantified variables), scalar program variables, or value literals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import SpecificationError
from repro.logic import formulas as fm
from repro.logic.sorts import Sort
from repro.logic.terms import Term, Var

__all__ = [
    "ValueLiteral",
    "ScalarRef",
    "RelationalTerm",
    "Statement",
    "Assign",
    "RelAssign",
    "Test",
    "Union",
    "Seq",
    "Star",
    "Skip",
    "IfThen",
    "IfThenElse",
    "While",
    "Insert",
    "Delete",
    "RelationDecl",
    "ScalarDecl",
    "ConstDecl",
    "ProcDecl",
    "Schema",
    "desugar",
    "is_deterministic",
]


@dataclass(frozen=True)
class ValueLiteral(Term):
    """A literal domain value used as a term (programmatic use; the
    concrete syntax of the paper's programs only mentions variables)."""

    value: str
    literal_sort: Sort

    @property
    def sort(self) -> Sort:
        """The sort of the term."""
        return self.literal_sort

    def free_vars(self) -> frozenset[Var]:
        """The set of variables occurring in the term."""
        return frozenset()

    def subterms(self) -> Iterator[Term]:
        """Yield the term itself and every subterm, pre-order."""
        yield self

    def depth(self) -> int:
        """Height of the term tree."""
        return 1

    def size(self) -> int:
        """Total number of nodes in the term tree."""
        return 1

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ScalarRef(Term):
    """A scalar program variable used as a term.

    Paper, Section 5.1.1: scalar program variables are "distinguished
    constants" of L whose value is part of the state.
    """

    name: str
    scalar_sort: Sort

    @property
    def sort(self) -> Sort:
        """The sort of the term."""
        return self.scalar_sort

    def free_vars(self) -> frozenset[Var]:
        """The set of variables occurring in the term."""
        return frozenset()

    def subterms(self) -> Iterator[Term]:
        """Yield the term itself and every subterm, pre-order."""
        yield self

    def depth(self) -> int:
        """Height of the term tree."""
        return 1

    def size(self) -> int:
        """Total number of nodes in the term tree."""
        return 1

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class RelationalTerm:
    """A relational term ``{(x1,...,xm) / P}`` of sort <s1,...,sm>.

    Attributes:
        variables: the tuple variables x1,...,xm.
        formula: the defining wff P (its free variables must be among
            the tuple variables plus any outer procedure parameters).
    """

    variables: tuple[Var, ...]
    formula: fm.Formula

    @property
    def sort(self) -> tuple[Sort, ...]:
        """The relational sort <s1,...,sm>."""
        return tuple(v.sort for v in self.variables)

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"{{({names}) / {self.formula}}}"


class Statement:
    """Abstract base class of RPR statements."""

    def substatements(self) -> Iterator["Statement"]:
        """Yield the statement and all nested statements, pre-order."""
        yield self


@dataclass(frozen=True)
class Assign(Statement):
    """Scalar assignment ``x := t``."""

    scalar: str
    term: Term

    def __str__(self) -> str:
        return f"{self.scalar} := {self.term}"


@dataclass(frozen=True)
class RelAssign(Statement):
    """Relational assignment ``R := {(x...) / P}``."""

    relation: str
    term: RelationalTerm

    def __str__(self) -> str:
        return f"{self.relation} := {self.term}"


@dataclass(frozen=True)
class Test(Statement):
    """Test ``P?``: proceeds iff the closed wff P holds."""

    # Not a pytest test class, despite the (paper-mandated) name.
    __test__ = False

    formula: fm.Formula

    def __str__(self) -> str:
        return f"{self.formula}?"


@dataclass(frozen=True)
class Union(Statement):
    """Nondeterministic choice ``(p u q)``."""

    left: Statement
    right: Statement

    def substatements(self) -> Iterator[Statement]:
        """Yield the statement and all nested statements, pre-order."""
        yield self
        yield from self.left.substatements()
        yield from self.right.substatements()

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True)
class Seq(Statement):
    """Sequential composition ``(p ; q)``."""

    left: Statement
    right: Statement

    def substatements(self) -> Iterator[Statement]:
        """Yield the statement and all nested statements, pre-order."""
        yield self
        yield from self.left.substatements()
        yield from self.right.substatements()

    def __str__(self) -> str:
        return f"({self.left} ; {self.right})"


@dataclass(frozen=True)
class Star(Statement):
    """Iteration ``p*``: zero or more repetitions of p."""

    body: Statement

    def substatements(self) -> Iterator[Statement]:
        """Yield the statement and all nested statements, pre-order."""
        yield self
        yield from self.body.substatements()

    def __str__(self) -> str:
        return f"({self.body})*"


@dataclass(frozen=True)
class Skip(Statement):
    """The no-op (``true?``)."""

    def __str__(self) -> str:
        return "skip"


# ---------------------------------------------------------------------
# derived constructs (paper: "We may also introduce some familiar
# constructs by definition such as if-then, if-then-else, while,
# insert and delete.")
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class IfThen(Statement):
    """``if P then p``  ==  ``(P?; p) u (~P)?``."""

    condition: fm.Formula
    then: Statement

    def substatements(self) -> Iterator[Statement]:
        """Yield the statement and all nested statements, pre-order."""
        yield self
        yield from self.then.substatements()

    def __str__(self) -> str:
        return f"if {self.condition} then {self.then}"


@dataclass(frozen=True)
class IfThenElse(Statement):
    """``if P then p else q``  ==  ``(P?; p) u ((~P)?; q)``."""

    condition: fm.Formula
    then: Statement
    orelse: Statement

    def substatements(self) -> Iterator[Statement]:
        """Yield the statement and all nested statements, pre-order."""
        yield self
        yield from self.then.substatements()
        yield from self.orelse.substatements()

    def __str__(self) -> str:
        return (
            f"if {self.condition} then {self.then} else {self.orelse}"
        )


@dataclass(frozen=True)
class While(Statement):
    """``while P do p``  ==  ``(P?; p)* ; (~P)?``."""

    condition: fm.Formula
    body: Statement

    def substatements(self) -> Iterator[Statement]:
        """Yield the statement and all nested statements, pre-order."""
        yield self
        yield from self.body.substatements()

    def __str__(self) -> str:
        return f"while {self.condition} do {self.body}"


@dataclass(frozen=True)
class Insert(Statement):
    """``insert R(t1,...,tn)``  ==
    ``R := {(x...) / R(x...) | (x... = t...)}``."""

    relation: str
    args: tuple[Term, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"insert {self.relation}({inner})"


@dataclass(frozen=True)
class Delete(Statement):
    """``delete R(t1,...,tn)``  ==
    ``R := {(x...) / R(x...) & ~(x... = t...)}``."""

    relation: str
    args: tuple[Term, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"delete {self.relation}({inner})"


# ---------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class RelationDecl:
    """A relation declaration ``R[A1,...,An]`` of the SCL part.

    Attributes:
        name: the relation name (a relational program variable).
        column_sorts: one sort per column (the paper's unary predicate
            symbols A1,...,An denote the column domains).
    """

    name: str
    column_sorts: tuple[Sort, ...]

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.column_sorts)

    def __str__(self) -> str:
        cols = ", ".join(s.name for s in self.column_sorts)
        return f"{self.name}({cols})"


@dataclass(frozen=True)
class ScalarDecl:
    """A scalar program variable declaration ``var x : A``."""

    name: str
    sort: Sort

    def __str__(self) -> str:
        return f"var {self.name}: {self.sort}"


@dataclass(frozen=True)
class ConstDecl:
    """A domain-constant declaration ``const c : A``.

    The constant denotes the value equal to its own name (the
    library-wide parameter-name convention), letting program text
    mention specific domain elements — e.g. the zero balance ``m0``.
    """

    name: str
    sort: Sort

    def __str__(self) -> str:
        return f"const {self.name}: {self.sort}"


@dataclass(frozen=True)
class ProcDecl:
    """An operation declaration ``proc I(Y1,...,Ym) = S``."""

    name: str
    params: tuple[Var, ...]
    body: Statement

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.params)
        return f"proc {self.name}({names}) = {self.body}"


@dataclass(frozen=True)
class Schema:
    """A data base schema: relation declarations plus operations."""

    relations: tuple[RelationDecl, ...]
    procs: tuple[ProcDecl, ...]
    scalars: tuple[ScalarDecl, ...] = field(default_factory=tuple)
    consts: tuple[ConstDecl, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [r.name for r in self.relations]
        if len(set(names)) != len(names):
            raise SpecificationError("duplicate relation declaration")
        proc_names = [p.name for p in self.procs]
        if len(set(proc_names)) != len(proc_names):
            raise SpecificationError("duplicate proc declaration")

    def relation(self, name: str) -> RelationDecl:
        """Look up a relation declaration by name."""
        for decl in self.relations:
            if decl.name == name:
                return decl
        raise SpecificationError(f"undeclared relation {name!r}")

    def proc(self, name: str) -> ProcDecl:
        """Look up a proc declaration by name."""
        for decl in self.procs:
            if decl.name == name:
                return decl
        raise SpecificationError(f"undeclared proc {name!r}")

    def scalar(self, name: str) -> ScalarDecl:
        """Look up a scalar declaration by name."""
        for decl in self.scalars:
            if decl.name == name:
                return decl
        raise SpecificationError(f"undeclared scalar {name!r}")

    @property
    def sorts(self) -> tuple[Sort, ...]:
        """Every column/scalar/constant sort mentioned by the schema."""
        seen: dict[str, Sort] = {}
        for decl in self.relations:
            for sort in decl.column_sorts:
                seen.setdefault(sort.name, sort)
        for scalar in self.scalars:
            seen.setdefault(scalar.sort.name, scalar.sort)
        for const in self.consts:
            seen.setdefault(const.sort.name, const.sort)
        return tuple(seen.values())

    def __str__(self) -> str:
        lines = ["schema"]
        for decl in self.relations:
            lines.append(f"  {decl};")
        for scalar in self.scalars:
            lines.append(f"  {scalar};")
        for const in self.consts:
            lines.append(f"  {const};")
        for proc in self.procs:
            lines.append(f"  {proc}")
        lines.append("end-schema")
        return "\n".join(lines)


# ---------------------------------------------------------------------
# desugaring into the core (the paper's defining equations)
# ---------------------------------------------------------------------
def desugar(statement: Statement, schema: Schema) -> Statement:
    """Expand derived constructs into core RPR.

    ``insert``/``delete`` need the schema to know the target relation's
    column sorts.  The result contains only Assign, RelAssign, Test,
    Union, Seq and Star.
    """
    if isinstance(statement, (Assign, RelAssign, Test)):
        return statement
    if isinstance(statement, Skip):
        return Test(fm.TRUE)
    if isinstance(statement, Union):
        return Union(
            desugar(statement.left, schema), desugar(statement.right, schema)
        )
    if isinstance(statement, Seq):
        return Seq(
            desugar(statement.left, schema), desugar(statement.right, schema)
        )
    if isinstance(statement, Star):
        return Star(desugar(statement.body, schema))
    if isinstance(statement, IfThen):
        return Union(
            Seq(Test(statement.condition), desugar(statement.then, schema)),
            Test(fm.Not(statement.condition)),
        )
    if isinstance(statement, IfThenElse):
        return Union(
            Seq(Test(statement.condition), desugar(statement.then, schema)),
            Seq(
                Test(fm.Not(statement.condition)),
                desugar(statement.orelse, schema),
            ),
        )
    if isinstance(statement, While):
        return Seq(
            Star(
                Seq(
                    Test(statement.condition),
                    desugar(statement.body, schema),
                )
            ),
            Test(fm.Not(statement.condition)),
        )
    if isinstance(statement, Insert):
        return RelAssign(
            statement.relation,
            _pointwise(schema, statement.relation, statement.args, insert=True),
        )
    if isinstance(statement, Delete):
        return RelAssign(
            statement.relation,
            _pointwise(
                schema, statement.relation, statement.args, insert=False
            ),
        )
    raise TypeError(f"not a statement: {statement!r}")


def _pointwise(
    schema: Schema,
    relation: str,
    args: tuple[Term, ...],
    insert: bool,
) -> RelationalTerm:
    """Build ``{x / R(x) | x = t}`` (insert) or ``{x / R(x) & x != t}``
    (delete)."""
    decl = schema.relation(relation)
    if len(args) != decl.arity:
        raise SpecificationError(
            f"{relation} has arity {decl.arity}, got {len(args)} args"
        )
    taken = {
        v.name for arg in args for v in arg.free_vars()
    }
    fresh: list[Var] = []
    counter = 1
    for sort in decl.column_sorts:
        name = f"rx{counter}"
        while name in taken:
            counter += 1
            name = f"rx{counter}"
        fresh.append(Var(name, sort))
        counter += 1
    from repro.logic.signature import PredicateSymbol

    predicate = PredicateSymbol(relation, decl.column_sorts)
    membership = fm.Atom(predicate, tuple(fresh))
    point = fm.conjunction(
        [
            fm.Equals(var, arg)
            for var, arg in zip(fresh, args)
        ]
    )
    if insert:
        body: fm.Formula = fm.Or(membership, point)
    else:
        body = fm.And(membership, fm.Not(point))
    return RelationalTerm(tuple(fresh), body)


def is_deterministic(statement: Statement) -> bool:
    """Syntactic determinism: the statement is built only from
    assignments and the derived deterministic constructs (paper:
    "Statements constructed using these statements and assignments are
    called deterministic")."""
    if isinstance(statement, (Assign, RelAssign, Skip, Insert, Delete)):
        return True
    if isinstance(statement, Test):
        # A bare test can block, but never branches.
        return True
    if isinstance(statement, Seq):
        return is_deterministic(statement.left) and is_deterministic(
            statement.right
        )
    if isinstance(statement, IfThen):
        return is_deterministic(statement.then)
    if isinstance(statement, IfThenElse):
        return is_deterministic(statement.then) and is_deterministic(
            statement.orelse
        )
    if isinstance(statement, While):
        return is_deterministic(statement.body)
    if isinstance(statement, (Union, Star)):
        return False
    raise TypeError(f"not a statement: {statement!r}")

"""Lexer for the RPR concrete syntax.

Tokens cover the schema skeleton (``schema`` ... ``end-schema``),
declarations, statements (``:=``, ``;``, ``|``, ``*``, ``?``,
relational terms ``{(x, y) / P}``) and the embedded formula language
(shared with :mod:`repro.logic.parser`'s grammar).  Comments run from
``--`` to end of line; the paper's ``/* ... */`` block comments are
also accepted.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "schema",
    "proc",
    "var",
    "const",
    "if",
    "then",
    "else",
    "while",
    "do",
    "insert",
    "delete",
    "skip",
    "forall",
    "exists",
    "true",
    "false",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*|/\*.*?\*/)
  | (?P<endschema>end-schema\b)
  | (?P<op>:=|<->|->|!=|[(){}=~&|,.:;*?/])
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    """One lexical token.

    Attributes:
        kind: ``'op'``, ``'ident'``, ``'keyword'``, ``'end-schema'``
            or ``'eof'``.
        text: the matched text.
        position: character offset in the source.
    """

    kind: str
    text: str
    position: int


def tokenize(source: str) -> list[Token]:
    """Split RPR source text into tokens.

    Raises:
        ParseError: on an unrecognized character.
    """
    tokens: list[Token] = []
    index = 0
    while index < len(source):
        matched = _TOKEN_RE.match(source, index)
        if matched is None:
            raise ParseError(
                f"unexpected character {source[index]!r} in RPR source",
                position=index,
            )
        group = matched.lastgroup
        if group == "ident":
            text = matched.group()
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, index))
        elif group == "op":
            tokens.append(Token("op", matched.group(), index))
        elif group == "endschema":
            tokens.append(Token("end-schema", matched.group(), index))
        index = matched.end()
    tokens.append(Token("eof", "", len(source)))
    return tokens

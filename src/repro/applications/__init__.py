"""Worked applications, each specified at all three levels.

* :mod:`repro.applications.courses` — the paper's running example
  (Sections 3.2, 4.2, 5.2), with the fifteen hand-written equations
  *and* the synthesized equivalent.
* :mod:`repro.applications.library` — library loans (unique-holder
  constraint, no silent loan transfer).
* :mod:`repro.applications.projects` — project staffing (capacity-two
  constraint, reassignment).
* :mod:`repro.applications.bank` — bank accounts (non-Boolean query,
  interpreted arithmetic, constants, auxiliary successor relation at
  the representation level).
"""

from repro.applications import bank, courses, library, projects

__all__ = ["courses", "library", "projects", "bank"]

"""The paper's running example: the courses/students registrar.

Sections 3.2, 4.2 and 5.2 develop one database application through all
three levels:

* **Information level** (Section 3.2): sorts ``student`` and
  ``course``; db-predicates ``offered(c)`` and ``takes(s, c)``; the
  static constraint "a student cannot take a course that is not being
  offered" and the transition constraint "the number of courses taken
  by a student cannot drop to zero".

* **Functions level** (Section 4.2): queries ``offered`` and ``takes``;
  updates ``initiate``, ``offer``, ``cancel``, ``enroll`` and
  ``transfer``; and fifteen Q-equations (:func:`courses_equations`
  reproduces them; equation 6 is rendered as the two conditional
  equations the paper derives from the biconditional).

* **Representation level** (Section 5.2): the RPR schema (see
  :func:`courses_schema_source`; note the paper's schema misprints
  ``OFFERED(Students)`` for ``OFFERED(Courses)``, corrected here).

Domain sizes are parameters of every factory so that experiments can
scale the example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebraic.description import (
    STATE_VAR,
    Effect,
    StructuredDescription,
    initial_equations,
    synthesize_equations,
)
from repro.algebraic.equations import ConditionalEquation
from repro.algebraic.signature import AlgebraicSignature
from repro.algebraic.spec import AlgebraicSpec
from repro.information.spec import InformationSpec
from repro.logic import formulas as fm
from repro.logic.parser import parse_formula
from repro.logic.signature import Signature
from repro.logic.sorts import Sort
from repro.logic.terms import App, Var

__all__ = [
    "STUDENT",
    "COURSE",
    "default_students",
    "default_courses",
    "courses_information",
    "courses_information_carriers",
    "courses_signature",
    "courses_equations",
    "courses_descriptions",
    "courses_algebraic",
    "courses_synthesized",
    "courses_schema_source",
]

#: Sort of students (shared between levels 1 and 2).
STUDENT = Sort("student")

#: Sort of courses (shared between levels 1 and 2).
COURSE = Sort("course")


def default_students(count: int = 2) -> list[str]:
    """Student names ``s1..s<count>``."""
    return [f"s{i}" for i in range(1, count + 1)]


def default_courses(count: int = 2) -> list[str]:
    """Course names ``c1..c<count>``."""
    return [f"c{i}" for i in range(1, count + 1)]


# ---------------------------------------------------------------------
# Information level (Section 3.2)
# ---------------------------------------------------------------------
def courses_information() -> InformationSpec:
    """The theory T1 = (L1, A1) of Section 3.2.

    Axiom (1): ``~exists s, c. takes(s, c) & ~offered(c)``
    Axiom (2): equivalently to the paper's negative form, the Section
    4.4d rendering ``forall s, c. [](takes(s, c) ->
    [](exists c'. takes(s, c')))``.
    """
    signature = Signature(sorts=[STUDENT, COURSE])
    signature.add_predicate("offered", [COURSE], db=True)
    signature.add_predicate("takes", [STUDENT, COURSE], db=True)
    static = parse_formula(
        "~exists s:student, c:course. takes(s, c) & ~offered(c)",
        signature,
    )
    transition = parse_formula(
        "forall s:student, c:course."
        " [](takes(s, c) -> [](exists c_other:course. takes(s, c_other)))",
        signature,
        allow_modal=True,
    )
    return InformationSpec(
        signature, (static, transition), name="courses registrar"
    )


def courses_information_carriers(
    students: list[str] | None = None, courses: list[str] | None = None
) -> dict[Sort, list[str]]:
    """Finite carriers for the information level's sorts."""
    return {
        STUDENT: students if students is not None else default_students(),
        COURSE: courses if courses is not None else default_courses(),
    }


# ---------------------------------------------------------------------
# Functions level (Section 4.2)
# ---------------------------------------------------------------------
def courses_signature(
    students: list[str] | None = None, courses: list[str] | None = None
) -> AlgebraicSignature:
    """The algebraic language L2 of Section 4.2.

    Queries: ``offered: <course, state, Boolean>`` and
    ``takes: <student, course, state, Boolean>``.
    Updates: ``initiate``, ``offer(c)``, ``cancel(c)``,
    ``enroll(s, c)``, ``transfer(s, c, c')``.
    """
    signature = AlgebraicSignature("courses")
    student = signature.add_parameter_sort("student")
    course = signature.add_parameter_sort("course")
    signature.add_parameter_values(
        student, students if students is not None else default_students()
    )
    signature.add_parameter_values(
        course, courses if courses is not None else default_courses()
    )
    signature.add_query("offered", [course])
    signature.add_query("takes", [student, course])
    signature.add_initial("initiate")
    signature.add_update("offer", [course])
    signature.add_update("cancel", [course])
    signature.add_update("enroll", [student, course])
    signature.add_update("transfer", [student, course, course])
    return signature


def courses_equations(
    signature: AlgebraicSignature,
) -> list[ConditionalEquation]:
    """The fifteen Q-equations of Section 4.2, verbatim.

    Equation numbering follows the paper; equation 6 (a biconditional)
    is split into the two conditional equations 6a/6b the paper itself
    derives.
    """
    student = signature.logic.sort("student")
    course = signature.logic.sort("course")
    s = Var("s", student)
    s2 = Var("s2", student)
    c = Var("c", course)
    c2 = Var("c2", course)
    c3 = Var("c3", course)
    u = STATE_VAR
    true = signature.true()
    false = signature.false()

    def offered(course_term, state_term):
        return signature.apply_query("offered", course_term, state_term)

    def takes(student_term, course_term, state_term):
        return signature.apply_query(
            "takes", student_term, course_term, state_term
        )

    initiate = signature.initial_term()
    offer = lambda ct, st: signature.apply_update("offer", ct, st)
    cancel = lambda ct, st: signature.apply_update("cancel", ct, st)
    enroll = lambda s_t, ct, st: signature.apply_update(
        "enroll", s_t, ct, st
    )
    transfer = lambda s_t, c_from, c_to, st: signature.apply_update(
        "transfer", s_t, c_from, c_to, st
    )

    def neq(left, right):
        return fm.Not(fm.Equals(left, right))

    someone_takes_c = fm.Exists(
        s2, fm.Equals(takes(s2, c, u), true)
    )

    return [
        # 1. offered(c, initiate) = False
        ConditionalEquation(offered(c, initiate), false, None, "eq1"),
        # 2. takes(s, c, initiate) = False
        ConditionalEquation(takes(s, c, initiate), false, None, "eq2"),
        # 3. offered(c, offer(c, U)) = True
        ConditionalEquation(offered(c, offer(c, u)), true, None, "eq3"),
        # 4. c != c' => offered(c, offer(c', U)) = offered(c, U)
        ConditionalEquation(
            offered(c, offer(c2, u)), offered(c, u), neq(c, c2), "eq4"
        ),
        # 5. takes(s, c, offer(c', U)) = takes(s, c, U)
        ConditionalEquation(
            takes(s, c, offer(c2, u)), takes(s, c, u), None, "eq5"
        ),
        # 6a. exists s'(takes(s', c, U) = True)
        #       => offered(c, cancel(c, U)) = True
        ConditionalEquation(
            offered(c, cancel(c, u)), true, someone_takes_c, "eq6a"
        ),
        # 6b. ~exists s'(takes(s', c, U) = True)
        #       => offered(c, cancel(c, U)) = False
        ConditionalEquation(
            offered(c, cancel(c, u)),
            false,
            fm.Not(someone_takes_c),
            "eq6b",
        ),
        # 7. c != c' => offered(c, cancel(c', U)) = offered(c, U)
        ConditionalEquation(
            offered(c, cancel(c2, u)), offered(c, u), neq(c, c2), "eq7"
        ),
        # 8. takes(s, c, cancel(c', U)) = takes(s, c, U)
        ConditionalEquation(
            takes(s, c, cancel(c2, u)), takes(s, c, u), None, "eq8"
        ),
        # 9. offered(c, enroll(s, c', U)) = offered(c, U)
        ConditionalEquation(
            offered(c, enroll(s, c2, u)), offered(c, u), None, "eq9"
        ),
        # 10. takes(s, c, enroll(s, c, U)) = offered(c, U)
        #     (the paper simplifies "offered(c,U) or takes(s,c,U)" via
        #     the static constraint takes => offered)
        ConditionalEquation(
            takes(s, c, enroll(s, c, u)), offered(c, u), None, "eq10"
        ),
        # 11. s != s' | c != c'
        #       => takes(s, c, enroll(s', c', U)) = takes(s, c, U)
        ConditionalEquation(
            takes(s, c, enroll(s2, c2, u)),
            takes(s, c, u),
            fm.Or(neq(s, s2), neq(c, c2)),
            "eq11",
        ),
        # 12. offered(c, transfer(s, c', c'', U)) = offered(c, U)
        ConditionalEquation(
            offered(c, transfer(s, c2, c3, u)),
            offered(c, u),
            None,
            "eq12",
        ),
        # 13. takes(s, c', transfer(s, c, c', U)) =
        #       (offered(c', U) & takes(s, c, U)) | takes(s, c', U)
        ConditionalEquation(
            takes(s, c2, transfer(s, c, c2, u)),
            signature.or_(
                signature.and_(offered(c2, u), takes(s, c, u)),
                takes(s, c2, u),
            ),
            None,
            "eq13",
        ),
        # 14. takes(s, c, transfer(s, c, c', U)) =
        #       (~offered(c', U) | takes(s, c', U)) & takes(s, c, U)
        ConditionalEquation(
            takes(s, c, transfer(s, c, c2, u)),
            signature.and_(
                signature.or_(
                    signature.not_(offered(c2, u)), takes(s, c2, u)
                ),
                takes(s, c, u),
            ),
            None,
            "eq14",
        ),
        # 15. s != s' | (c != c'' & c != c''')
        #       => takes(s, c, transfer(s', c'', c''', U)) = takes(s, c, U)
        ConditionalEquation(
            takes(s, c, transfer(s2, c2, c3, u)),
            takes(s, c, u),
            fm.Or(neq(s, s2), fm.And(neq(c, c2), neq(c, c3))),
            "eq15",
        ),
    ]


def courses_descriptions(
    signature: AlgebraicSignature,
) -> list[StructuredDescription]:
    """The structured descriptions of Section 4.2 for all four updates.

    The description of ``cancel`` is quoted in the paper; the other
    three are recovered from the procedures of Section 5.2 (whose
    if-conditions are exactly the preconditions).
    """
    student = signature.logic.sort("student")
    course = signature.logic.sort("course")
    s = Var("s", student)
    s2 = Var("s2", student)
    c = Var("c", course)
    c2 = Var("c2", course)
    u = STATE_VAR
    true = signature.true()

    def offered(course_term, state_term):
        return signature.apply_query("offered", course_term, state_term)

    def takes(student_term, course_term, state_term):
        return signature.apply_query(
            "takes", student_term, course_term, state_term
        )

    return [
        StructuredDescription(
            update="offer",
            params=(c,),
            precondition=None,
            effects=(Effect("offered", (c,), True),),
            doc="course c is offered at the new state",
        ),
        StructuredDescription(
            update="cancel",
            params=(c,),
            precondition=fm.Not(
                fm.Exists(s2, fm.Equals(takes(s2, c, u), true))
            ),
            effects=(Effect("offered", (c,), False),),
            doc=(
                "course c is cancelled, providing that no student is "
                "taking it"
            ),
        ),
        StructuredDescription(
            update="enroll",
            params=(s, c),
            precondition=fm.Equals(offered(c, u), true),
            effects=(Effect("takes", (s, c), True),),
            doc="student s enrolls in course c if it is offered",
        ),
        StructuredDescription(
            update="transfer",
            params=(s, c, c2),
            precondition=fm.And(
                fm.Equals(takes(s, c, u), true),
                fm.And(
                    fm.Not(fm.Equals(takes(s, c2, u), true)),
                    fm.Equals(offered(c2, u), true),
                ),
            ),
            effects=(
                Effect("takes", (s, c), False),
                Effect("takes", (s, c2), True),
            ),
            doc=(
                "student s moves from course c to course c' when "
                "taking c, not taking c', and c' is offered"
            ),
        ),
    ]


def courses_algebraic(
    students: list[str] | None = None, courses: list[str] | None = None
) -> AlgebraicSpec:
    """T2 = (L2, A2) with the paper's hand-written equations."""
    signature = courses_signature(students, courses)
    return AlgebraicSpec(
        signature,
        tuple(courses_equations(signature)),
        name="courses registrar (paper equations)",
    )


def courses_synthesized(
    students: list[str] | None = None, courses: list[str] | None = None
) -> AlgebraicSpec:
    """T2 with equations synthesized from the structured descriptions
    (the Section 4.2 methodology, mechanized)."""
    signature = courses_signature(students, courses)
    equations = initial_equations(signature) + synthesize_equations(
        signature, courses_descriptions(signature)
    )
    return AlgebraicSpec(
        signature,
        tuple(equations),
        name="courses registrar (synthesized equations)",
    )


def courses_schema_source() -> str:
    """The RPR schema of Section 5.2 as concrete syntax.

    The paper's text misprints the declaration of OFFERED as
    ``OFFERED(Students)``; it is corrected to ``OFFERED(Courses)``
    here, as required by every use in the procedures.
    """
    return """
schema
  OFFERED(Courses);
  TAKES(Students, Courses);

  proc initiate() =
    (TAKES := {} ; OFFERED := {})

  proc offer(c) =
    insert OFFERED(c)

  proc cancel(c) =
    if ~exists s: Students. TAKES(s, c)
    then delete OFFERED(c)

  proc enroll(s, c) =
    if OFFERED(c)
    then insert TAKES(s, c)

  proc transfer(s, c, c2) =
    if TAKES(s, c) & ~TAKES(s, c2) & OFFERED(c2)
    then (delete TAKES(s, c) ; insert TAKES(s, c2))
end-schema
"""

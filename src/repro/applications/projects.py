"""A third application: staffing projects.

Employees are assigned to projects; an employee works on at most two
projects at a time (a *capacity* static constraint, expressed with
equality since the logic has no counting), and — as in the paper's
registrar — once staffed, an employee never becomes idle (assignments
move via ``reassign``; there is no plain unassign).

Every valid state remains reachable (staff each employee directly from
``initiate``), so the Section 4.4c inclusion V = G holds — but many
valid *transitions* are not realized by the repertoire (an employee
can never drop back to idle), the situation the paper flags with "by
contrast not all valid transitions will be realized by our repertoire
of update functions".
"""

from __future__ import annotations

from repro.algebraic.description import (
    STATE_VAR,
    Effect,
    StructuredDescription,
    initial_equations,
    synthesize_equations,
)
from repro.algebraic.signature import AlgebraicSignature
from repro.algebraic.spec import AlgebraicSpec
from repro.core.framework import DesignFramework
from repro.information.spec import InformationSpec
from repro.logic import formulas as fm
from repro.logic.parser import parse_formula
from repro.logic.signature import Signature
from repro.logic.sorts import Sort
from repro.logic.terms import Var

__all__ = [
    "EMPLOYEE",
    "PROJECT",
    "projects_information",
    "projects_carriers",
    "projects_signature",
    "projects_descriptions",
    "projects_algebraic",
    "projects_schema_source",
    "projects_framework",
]

#: Sort of employees.
EMPLOYEE = Sort("employee")

#: Sort of projects.
PROJECT = Sort("project")


def _employees(count: int) -> list[str]:
    return [f"e{i}" for i in range(1, count + 1)]


def _projects(count: int) -> list[str]:
    return [f"p{i}" for i in range(1, count + 1)]


def projects_information() -> InformationSpec:
    """T1 for project staffing.

    Static constraints:
      (1) assignments only to active projects;
      (2) capacity: an employee holds at most two assignments.
    Transition constraint:
      (3) a staffed employee never becomes idle.
    """
    signature = Signature(sorts=[EMPLOYEE, PROJECT])
    signature.add_predicate("active", [PROJECT], db=True)
    signature.add_predicate("assigned", [EMPLOYEE, PROJECT], db=True)
    assigned_active = parse_formula(
        "forall e:employee, p:project. assigned(e, p) -> active(p)",
        signature,
    )
    capacity_two = parse_formula(
        "forall e:employee, p1:project, p2:project, p3:project."
        " assigned(e, p1) & assigned(e, p2) & assigned(e, p3)"
        " -> (p1 = p2 | p1 = p3 | p2 = p3)",
        signature,
    )
    never_idle = parse_formula(
        "forall e:employee."
        " []((exists p:project. assigned(e, p)) ->"
        " [](exists p:project. assigned(e, p)))",
        signature,
        allow_modal=True,
    )
    return InformationSpec(
        signature,
        (assigned_active, capacity_two, never_idle),
        name="project staffing",
    )


def projects_carriers(
    employees: int = 2, projects: int = 3
) -> dict[Sort, list[str]]:
    """Finite carriers (three projects by default, so the capacity-two
    constraint actually bites)."""
    return {EMPLOYEE: _employees(employees), PROJECT: _projects(projects)}


def projects_signature(
    employees: int = 2, projects: int = 3
) -> AlgebraicSignature:
    """L2 for project staffing."""
    signature = AlgebraicSignature("projects")
    employee = signature.add_parameter_sort("employee")
    project = signature.add_parameter_sort("project")
    signature.add_parameter_values(employee, _employees(employees))
    signature.add_parameter_values(project, _projects(projects))
    signature.add_query("active", [project])
    signature.add_query("assigned", [employee, project])
    signature.add_initial("initiate")
    signature.add_update("open_project", [project])
    signature.add_update("dissolve", [project])
    signature.add_update("assign", [employee, project])
    signature.add_update("reassign", [employee, project, project])
    return signature


def projects_descriptions(
    signature: AlgebraicSignature,
) -> list[StructuredDescription]:
    """Structured descriptions of the four staffing updates."""
    employee = signature.logic.sort("employee")
    project = signature.logic.sort("project")
    e = Var("e", employee)
    e2 = Var("e2", employee)
    p = Var("p", project)
    p2 = Var("p2", project)
    q1 = Var("q1", project)
    q2 = Var("q2", project)
    u = STATE_VAR
    true = signature.true()

    def active(project_term, state_term):
        return signature.apply_query("active", project_term, state_term)

    def assigned(employee_term, project_term, state_term):
        return signature.apply_query(
            "assigned", employee_term, project_term, state_term
        )

    nobody_on_p = fm.Not(
        fm.Exists(e2, fm.Equals(assigned(e2, p, u), true))
    )
    # "e holds fewer than two assignments" — no two distinct projects
    # are both assigned to e.
    under_capacity = fm.Not(
        fm.Exists(
            q1,
            fm.Exists(
                q2,
                fm.And(
                    fm.Not(fm.Equals(q1, q2)),
                    fm.And(
                        fm.Equals(assigned(e, q1, u), true),
                        fm.Equals(assigned(e, q2, u), true),
                    ),
                ),
            ),
        )
    )
    return [
        StructuredDescription(
            update="open_project",
            params=(p,),
            precondition=None,
            effects=(Effect("active", (p,), True),),
            doc="project p becomes active",
        ),
        StructuredDescription(
            update="dissolve",
            params=(p,),
            precondition=nobody_on_p,
            effects=(Effect("active", (p,), False),),
            doc="project p is dissolved if nobody is assigned to it",
        ),
        StructuredDescription(
            update="assign",
            params=(e, p),
            precondition=fm.And(
                fm.Equals(active(p, u), true),
                fm.Or(
                    fm.Equals(assigned(e, p, u), true), under_capacity
                ),
            ),
            effects=(Effect("assigned", (e, p), True),),
            doc=(
                "employee e joins active project p if already on it or "
                "under the two-project capacity"
            ),
        ),
        StructuredDescription(
            update="reassign",
            params=(e, p, p2),
            precondition=fm.And(
                fm.Equals(assigned(e, p, u), true),
                fm.And(
                    fm.Not(fm.Equals(assigned(e, p2, u), true)),
                    fm.Equals(active(p2, u), true),
                ),
            ),
            effects=(
                Effect("assigned", (e, p), False),
                Effect("assigned", (e, p2), True),
            ),
            doc="employee e moves from project p to active project p2",
        ),
    ]


def projects_algebraic(
    employees: int = 2, projects: int = 3
) -> AlgebraicSpec:
    """T2 for project staffing, synthesized from the descriptions."""
    signature = projects_signature(employees, projects)
    equations = initial_equations(signature) + synthesize_equations(
        signature, projects_descriptions(signature)
    )
    return AlgebraicSpec(
        signature, tuple(equations), name="project staffing"
    )


def projects_schema_source() -> str:
    """T3 for project staffing in RPR concrete syntax."""
    return """
schema
  ACTIVE(Projects);
  ASSIGNED(Employees, Projects);

  proc initiate() =
    (ACTIVE := {} ; ASSIGNED := {})

  proc open_project(p) =
    insert ACTIVE(p)

  proc dissolve(p) =
    if ~exists e: Employees. ASSIGNED(e, p)
    then delete ACTIVE(p)

  proc assign(e, p) =
    if ACTIVE(p) & (ASSIGNED(e, p) | ~exists q1: Projects, q2: Projects.
        q1 != q2 & ASSIGNED(e, q1) & ASSIGNED(e, q2))
    then insert ASSIGNED(e, p)

  proc reassign(e, p, p2) =
    if ASSIGNED(e, p) & ~ASSIGNED(e, p2) & ACTIVE(p2)
    then (delete ASSIGNED(e, p) ; insert ASSIGNED(e, p2))
end-schema
"""


def projects_framework(
    employees: int = 2, projects: int = 3
) -> DesignFramework:
    """The complete three-level staffing design, ready to verify."""
    return DesignFramework.from_sources(
        information=projects_information(),
        algebraic=projects_algebraic(employees, projects),
        schema_source=projects_schema_source(),
        carriers=projects_carriers(employees, projects),
        name="project staffing",
    )

"""A second application built with the paper's methodology: library
loans.

Books are acquired into and retired from a catalog; members check
books out and return them.  The design exercises the same three-level
pipeline as the courses registrar with different constraint shapes:

* static constraint with an *equality* consequence (at most one member
  holds a loan on a book);
* a transition constraint forbidding *silent loan transfer* (a loan
  may only end by return, never jump between members in one step).

All equations are synthesized from structured descriptions — this
application has no hand-written equation set, demonstrating the
Section 4.2 construction as the primary workflow.
"""

from __future__ import annotations

from repro.algebraic.description import (
    STATE_VAR,
    Effect,
    StructuredDescription,
    initial_equations,
    synthesize_equations,
)
from repro.algebraic.signature import AlgebraicSignature
from repro.algebraic.spec import AlgebraicSpec
from repro.core.framework import DesignFramework
from repro.information.spec import InformationSpec
from repro.logic import formulas as fm
from repro.logic.parser import parse_formula
from repro.logic.signature import Signature
from repro.logic.sorts import Sort
from repro.logic.terms import Var

__all__ = [
    "MEMBER",
    "BOOK",
    "library_information",
    "library_carriers",
    "library_signature",
    "library_descriptions",
    "library_algebraic",
    "library_schema_source",
    "library_framework",
]

#: Sort of library members.
MEMBER = Sort("member")

#: Sort of books.
BOOK = Sort("book")


def _members(count: int) -> list[str]:
    return [f"m{i}" for i in range(1, count + 1)]


def _books(count: int) -> list[str]:
    return [f"b{i}" for i in range(1, count + 1)]


def library_information() -> InformationSpec:
    """T1 for the library.

    Static constraints:
      (1) a loaned book is in the catalog;
      (2) a book is loaned to at most one member.
    Transition constraint:
      (3) a loan never transfers silently: if m holds b, then in every
          future state either m still holds b or nobody does.
    """
    signature = Signature(sorts=[MEMBER, BOOK])
    signature.add_predicate("catalog", [BOOK], db=True)
    signature.add_predicate("loaned", [MEMBER, BOOK], db=True)
    loaned_in_catalog = parse_formula(
        "forall m:member, b:book. loaned(m, b) -> catalog(b)", signature
    )
    unique_holder = parse_formula(
        "forall m:member, m2:member, b:book."
        " loaned(m, b) & loaned(m2, b) -> m = m2",
        signature,
    )
    no_silent_transfer = parse_formula(
        "forall m:member, b:book."
        " [](loaned(m, b) ->"
        " [](loaned(m, b) | ~exists m2:member. loaned(m2, b)))",
        signature,
        allow_modal=True,
    )
    return InformationSpec(
        signature,
        (loaned_in_catalog, unique_holder, no_silent_transfer),
        name="library loans",
    )


def library_carriers(
    members: int = 2, books: int = 2
) -> dict[Sort, list[str]]:
    """Finite carriers for the library's sorts."""
    return {MEMBER: _members(members), BOOK: _books(books)}


def library_signature(
    members: int = 2, books: int = 2
) -> AlgebraicSignature:
    """L2 for the library: queries ``catalog``/``loaned``; updates
    ``acquire``, ``retire``, ``checkout``, ``return_book``."""
    signature = AlgebraicSignature("library")
    member = signature.add_parameter_sort("member")
    book = signature.add_parameter_sort("book")
    signature.add_parameter_values(member, _members(members))
    signature.add_parameter_values(book, _books(books))
    signature.add_query("catalog", [book])
    signature.add_query("loaned", [member, book])
    signature.add_initial("initiate")
    signature.add_update("acquire", [book])
    signature.add_update("retire", [book])
    signature.add_update("checkout", [member, book])
    signature.add_update("return_book", [member, book])
    return signature


def library_descriptions(
    signature: AlgebraicSignature,
) -> list[StructuredDescription]:
    """Structured descriptions of the four library updates."""
    member = signature.logic.sort("member")
    book = signature.logic.sort("book")
    m = Var("m", member)
    m2 = Var("m2", member)
    b = Var("b", book)
    u = STATE_VAR
    true = signature.true()

    def catalog(book_term, state_term):
        return signature.apply_query("catalog", book_term, state_term)

    def loaned(member_term, book_term, state_term):
        return signature.apply_query(
            "loaned", member_term, book_term, state_term
        )

    nobody_holds_b = fm.Not(
        fm.Exists(m2, fm.Equals(loaned(m2, b, u), true))
    )
    return [
        StructuredDescription(
            update="acquire",
            params=(b,),
            precondition=None,
            effects=(Effect("catalog", (b,), True),),
            doc="book b enters the catalog",
        ),
        StructuredDescription(
            update="retire",
            params=(b,),
            precondition=nobody_holds_b,
            effects=(Effect("catalog", (b,), False),),
            doc="book b leaves the catalog if nobody holds it",
        ),
        StructuredDescription(
            update="checkout",
            params=(m, b),
            precondition=fm.And(
                fm.Equals(catalog(b, u), true), nobody_holds_b
            ),
            effects=(Effect("loaned", (m, b), True),),
            doc=(
                "member m borrows book b if it is catalogued and "
                "currently free"
            ),
        ),
        StructuredDescription(
            update="return_book",
            params=(m, b),
            precondition=fm.Equals(loaned(m, b, u), true),
            effects=(Effect("loaned", (m, b), False),),
            doc="member m returns book b",
        ),
    ]


def library_algebraic(members: int = 2, books: int = 2) -> AlgebraicSpec:
    """T2 for the library, synthesized from the descriptions."""
    signature = library_signature(members, books)
    equations = initial_equations(signature) + synthesize_equations(
        signature, library_descriptions(signature)
    )
    return AlgebraicSpec(
        signature, tuple(equations), name="library loans"
    )


def library_schema_source() -> str:
    """T3 for the library in RPR concrete syntax."""
    return """
schema
  CATALOG(Books);
  LOANED(Members, Books);

  proc initiate() =
    (CATALOG := {} ; LOANED := {})

  proc acquire(b) =
    insert CATALOG(b)

  proc retire(b) =
    if ~exists m: Members. LOANED(m, b)
    then delete CATALOG(b)

  proc checkout(m, b) =
    if CATALOG(b) & ~exists m2: Members. LOANED(m2, b)
    then insert LOANED(m, b)

  proc return_book(m, b) =
    if LOANED(m, b)
    then delete LOANED(m, b)
end-schema
"""


def library_framework(
    members: int = 2, books: int = 2
) -> DesignFramework:
    """The complete three-level library design, ready to verify."""
    return DesignFramework.from_sources(
        information=library_information(),
        algebraic=library_algebraic(members, books),
        schema_source=library_schema_source(),
        carriers=library_carriers(members, books),
        name="library loans",
    )

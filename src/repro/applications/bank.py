"""A fourth application: bank accounts with balances.

This design exercises the parts of the formalism the registrar does
not touch:

* a **non-Boolean query** — ``balance: <account, state, money>``
  returns a parameter-sort value, so sufficient completeness, the
  refinement map K and the induced structure N all handle values
  beyond True/False;
* **interpreted parameter functions** — ``inc``/``dec`` on the finite
  money domain (the paper allows parameter sorts "endowed with their
  own function symbols");
* **constants in axioms and programs** — the zero balance ``m0``
  appears in the L1 axioms, the L2 equations, and (via a ``const``
  declaration) the RPR procedures;
* an **auxiliary relation at the representation level** — arithmetic
  is a stored successor table ``NEXT`` at level 3, showing that the
  three levels may structure the same information differently while
  the refinement still holds.

Money is the finite chain ``m0 < m1 < ... < m<k>``; deposits and
withdrawals move one unit and are guarded so the chain's ends are
never crossed.
"""

from __future__ import annotations

from functools import partial

from repro.algebraic.description import (
    STATE_VAR,
    Effect,
    StructuredDescription,
    initial_equations,
    synthesize_equations,
)
from repro.algebraic.signature import AlgebraicSignature
from repro.algebraic.spec import AlgebraicSpec
from repro.core.framework import DesignFramework
from repro.information.spec import InformationSpec
from repro.logic import formulas as fm
from repro.logic.parser import parse_formula
from repro.logic.signature import PredicateSymbol, Signature
from repro.logic.sorts import Sort
from repro.logic.terms import App, Var
from repro.logic.sorts import STATE
from repro.refinement.interpretation import (
    Interpretation,
    PredicateInterpretation,
)
from repro.refinement.second_third import (
    QueryRealization,
    RepresentationMap,
)
from repro.rpr.parser import parse_schema

__all__ = [
    "ACCOUNT",
    "MONEY",
    "money_values",
    "bank_information",
    "bank_carriers",
    "bank_signature",
    "bank_descriptions",
    "bank_algebraic",
    "bank_schema_source",
    "bank_representation_map",
    "bank_framework",
]

#: Sort of accounts.
ACCOUNT = Sort("account")

#: Sort of money amounts (a finite chain m0..mK).
MONEY = Sort("money")


def money_values(levels: int = 4) -> list[str]:
    """The money chain ``m0 .. m<levels-1>``."""
    return [f"m{i}" for i in range(levels)]


def _accounts(count: int) -> list[str]:
    return [f"a{i}" for i in range(1, count + 1)]


def _inc(value: str) -> str:
    return f"m{int(value[1:]) + 1}"


def _dec(value: str) -> str:
    return f"m{int(value[1:]) - 1}"


# Module-level (not lambdas): interpreted functions are part of the
# signature, which travels to executor-backend workers by pickle.
def _inc_clamped(top: str, value: str) -> str:
    return value if value == top else _inc(value)


def _dec_clamped(value: str) -> str:
    return value if value == "m0" else _dec(value)


def bank_information(levels: int = 4) -> InformationSpec:
    """T1 for the bank.

    Static constraints:
      (1) every account has exactly one balance (totality and
          functionality of the ``balance`` relation);
      (2) a closed account's balance is zero.
    Transition constraint:
      (3) an account (re)opens with zero balance.
    """
    signature = Signature(sorts=[ACCOUNT, MONEY])
    signature.add_predicate("open", [ACCOUNT], db=True)
    signature.add_predicate("balance", [ACCOUNT, MONEY], db=True)
    signature.add_constant("m0", MONEY)
    total = parse_formula(
        "forall a:account. exists m:money. balance(a, m)", signature
    )
    functional = parse_formula(
        "forall a:account, m:money, m2:money."
        " balance(a, m) & balance(a, m2) -> m = m2",
        signature,
    )
    closed_zero = parse_formula(
        "forall a:account, m:money."
        " balance(a, m) & ~open(a) -> m = m0",
        signature,
    )
    reopen_zero = parse_formula(
        "forall a:account."
        " [](~open(a) -> [](~open(a) | balance(a, m0)))",
        signature,
        allow_modal=True,
    )
    return InformationSpec(
        signature,
        (total, functional, closed_zero, reopen_zero),
        name="bank accounts",
    )


def bank_carriers(
    accounts: int = 2, levels: int = 4
) -> dict[Sort, list[str]]:
    """Finite carriers for the bank's sorts."""
    return {ACCOUNT: _accounts(accounts), MONEY: money_values(levels)}


def bank_signature(
    accounts: int = 2, levels: int = 4
) -> AlgebraicSignature:
    """L2 for the bank: Boolean query ``open``; money-valued query
    ``balance``; unit-step interpreted operations ``inc``/``dec``."""
    signature = AlgebraicSignature("bank")
    account = signature.add_parameter_sort("account")
    money = signature.add_parameter_sort("money")
    signature.add_parameter_values(account, _accounts(accounts))
    signature.add_parameter_values(money, money_values(levels))
    top = money_values(levels)[-1]
    signature.add_parameter_function(
        "inc",
        [money],
        money,
        partial(_inc_clamped, top),
    )
    signature.add_parameter_function(
        "dec",
        [money],
        money,
        _dec_clamped,
    )
    signature.add_query("open", [account])
    signature.add_query("balance", [account], result_sort=money)
    signature.add_initial("initiate")
    signature.add_update("open_account", [account])
    signature.add_update("close_account", [account])
    signature.add_update("deposit", [account])
    signature.add_update("withdraw", [account])
    return signature


def bank_descriptions(
    signature: AlgebraicSignature,
) -> list[StructuredDescription]:
    """Structured descriptions of the four bank updates."""
    account = signature.logic.sort("account")
    money = signature.logic.sort("money")
    a = Var("a", account)
    u = STATE_VAR
    true = signature.true()
    zero = signature.value(money, "m0")
    top = signature.value(money, signature.domain(money)[-1])

    def open_q(account_term, state_term):
        return signature.apply_query("open", account_term, state_term)

    def balance(account_term, state_term):
        return signature.apply_query(
            "balance", account_term, state_term
        )

    def inc(term):
        return App(signature.logic.function("inc"), (term,))

    def dec(term):
        return App(signature.logic.function("dec"), (term,))

    is_open = fm.Equals(open_q(a, u), true)
    return [
        StructuredDescription(
            update="open_account",
            params=(a,),
            precondition=fm.Not(is_open),
            effects=(
                Effect("open", (a,), True),
                Effect("balance", (a,), zero),
            ),
            doc="account a opens with a zero balance",
        ),
        StructuredDescription(
            update="close_account",
            params=(a,),
            precondition=fm.And(
                is_open, fm.Equals(balance(a, u), zero)
            ),
            effects=(Effect("open", (a,), False),),
            doc="account a closes once its balance is zero",
        ),
        StructuredDescription(
            update="deposit",
            params=(a,),
            precondition=fm.And(
                is_open, fm.Not(fm.Equals(balance(a, u), top))
            ),
            effects=(Effect("balance", (a,), inc(balance(a, u))),),
            doc="one unit is deposited into open account a",
        ),
        StructuredDescription(
            update="withdraw",
            params=(a,),
            precondition=fm.And(
                is_open, fm.Not(fm.Equals(balance(a, u), zero))
            ),
            effects=(Effect("balance", (a,), dec(balance(a, u))),),
            doc="one unit is withdrawn from open account a",
        ),
    ]


def bank_algebraic(accounts: int = 2, levels: int = 4) -> AlgebraicSpec:
    """T2 for the bank, synthesized from the descriptions."""
    signature = bank_signature(accounts, levels)
    money = signature.logic.sort("money")
    equations = initial_equations(
        signature, defaults={"balance": signature.value(money, "m0")}
    ) + synthesize_equations(signature, bank_descriptions(signature))
    return AlgebraicSpec(signature, tuple(equations), name="bank accounts")


def bank_schema_source(levels: int = 4) -> str:
    """T3 for the bank in RPR concrete syntax.

    Arithmetic lives in the stored successor table ``NEXT``; balances
    are rows of the functional relation ``BALANCE``.
    """
    consts = "\n".join(
        f"  const {value}: Money;" for value in money_values(levels)
    )
    next_inserts = " ; ".join(
        f"insert NEXT({low}, {high})"
        for low, high in zip(money_values(levels), money_values(levels)[1:])
    )
    return f"""
schema
  OPEN(Accounts);
  BALANCE(Accounts, Money);
  NEXT(Money, Money);
{consts}

  proc initiate() =
    (OPEN := {{}} ;
     BALANCE := {{(a, m) / m = m0}} ;
     NEXT := {{}} ;
     {next_inserts})

  proc open_account(a) =
    if ~OPEN(a)
    then insert OPEN(a)

  proc close_account(a) =
    if OPEN(a) & BALANCE(a, m0)
    then delete OPEN(a)

  proc deposit(a) =
    if OPEN(a) & ~BALANCE(a, m{levels - 1})
    then BALANCE := {{(x, m) / (x != a & BALANCE(x, m))
                   | (x = a & exists m2: Money. BALANCE(x, m2) & NEXT(m2, m))}}

  proc withdraw(a) =
    if OPEN(a) & ~BALANCE(a, m0)
    then BALANCE := {{(x, m) / (x != a & BALANCE(x, m))
                   | (x = a & exists m2: Money. BALANCE(x, m2) & NEXT(m, m2))}}
end-schema
"""


def bank_interpretation(signature: AlgebraicSignature) -> Interpretation:
    """The explicit interpretation I for the bank.

    The binary db-predicate ``balance(a, m)`` is realized by the unary
    money-valued query through an equality test::

        I(balance) = eq_money(balance(x1, sigma), x2)

    (I(open) is the homonym query term, as usual.)
    """
    account = signature.logic.sort("account")
    money = signature.logic.sort("money")
    sigma = Var("sigma", STATE)
    x1 = Var("x1", account)
    x2 = Var("x2", money)
    open_term = signature.apply_query("open", x1, sigma)
    balance_term = signature.eq(
        signature.apply_query("balance", x1, sigma), x2
    )
    return Interpretation(
        {
            "open": PredicateInterpretation((x1,), sigma, open_term),
            "balance": PredicateInterpretation(
                (x1, x2), sigma, balance_term
            ),
        }
    )


def bank_representation_map(
    signature: AlgebraicSignature, schema
) -> RepresentationMap:
    """The explicit mapping K for the bank (the homonym default cannot
    realize the non-Boolean ``balance`` query).

    * K(open) = ``OPEN(x1)``;
    * K(balance) = ``BALANCE(x1, r)`` with result variable ``r``;
    * updates map to homonym procedures.
    """
    accounts_sort = Sort("Accounts")
    money_sort = Sort("Money")
    open_pred = PredicateSymbol("OPEN", (accounts_sort,))
    balance_pred = PredicateSymbol(
        "BALANCE", (accounts_sort, money_sort)
    )
    x1 = Var("x1", accounts_sort)
    r = Var("r", money_sort)
    query_map = {
        "open": QueryRealization((x1,), fm.Atom(open_pred, (x1,))),
        "balance": QueryRealization(
            (x1,), fm.Atom(balance_pred, (x1, r)), result_var=r
        ),
    }
    update_map = {
        update.name: update.name for update in signature.updates
    }
    sort_map = {
        signature.logic.sort("account"): accounts_sort,
        signature.logic.sort("money"): money_sort,
    }
    return RepresentationMap(query_map, update_map, sort_map, "initiate")


def bank_framework(accounts: int = 2, levels: int = 4) -> DesignFramework:
    """The complete three-level bank design, ready to verify."""
    algebraic = bank_algebraic(accounts, levels)
    source = bank_schema_source(levels)
    schema = parse_schema(source)
    return DesignFramework(
        information=bank_information(levels),
        algebraic=algebraic,
        schema=schema,
        carriers=bank_carriers(accounts, levels),
        schema_source=source,
        interpretation=bank_interpretation(algebraic.signature),
        representation=bank_representation_map(
            algebraic.signature, schema
        ),
        name="bank accounts",
    )
